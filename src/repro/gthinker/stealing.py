"""Master-coordinated big-task stealing (paper Section 5, reforged).

Because only big tasks bottleneck a job, stealing moves big tasks
exclusively. A master periodically collects each machine's number of
pending big tasks (global queue plus its spill list), computes the
average, and plans transfers that pull every machine toward it. Per the
paper's throttling rule, a machine gives or takes at most one batch of
C tasks per period, so the network is never flooded by task thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StealMove:
    """Move `count` big tasks from machine `src` to machine `dst`."""

    src: int
    dst: int
    count: int


def plan_steals(pending_big: list[int], batch_size: int) -> list[StealMove]:
    """Compute one period's stealing plan from per-machine pending counts.

    Donors are machines above the average, recipients below it; each
    machine participates in at most one move of ≤ `batch_size` tasks
    per period (the paper's at-most-one-task-file rule).
    """
    n = len(pending_big)
    if n <= 1 or batch_size < 1:
        return []
    avg = sum(pending_big) / n
    donors = sorted(
        (m for m in range(n) if pending_big[m] > avg),
        key=lambda m: pending_big[m],
        reverse=True,
    )
    recipients = sorted(
        (m for m in range(n) if pending_big[m] < avg),
        key=lambda m: pending_big[m],
    )
    moves: list[StealMove] = []
    di, ri = 0, 0
    while di < len(donors) and ri < len(recipients):
        donor = donors[di]
        recipient = recipients[ri]
        surplus = int(pending_big[donor] - avg)
        deficit = int(avg - pending_big[recipient] + 0.999)
        count = min(surplus, deficit, batch_size)
        if count <= 0:
            break
        moves.append(StealMove(src=donor, dst=recipient, count=count))
        di += 1
        ri += 1
    return moves
