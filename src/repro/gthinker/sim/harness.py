"""The deterministic simulation harness: one seed, one cluster run.

:func:`run_sim` builds the *shipping* coordination code — a
:class:`~repro.gthinker.cluster.reactor.MasterReactor` and N
:class:`~repro.gthinker.cluster.reactor.WorkerReactor`s — over an
in-memory :class:`~.net.SimNet`, and drives the whole job single-
threaded on a virtual clock under a seeded :class:`~.plan.FaultPlan`:
message delay/jitter/reorder/duplication, connection tears, link
partitions, worker crashes and restarts, wedged workers, stragglers.

Checked continuously (after every delivered network frame):

* ``WorkLedger.check_invariants()`` — lease conservation can never be
  violated, not even transiently.

Checked at quiescence:

* **oracle equality** — the run's maximal family and raw candidate
  set equal a serial reference run of the same graph and parameters
  (candidate-set equality *is* dedup exactness: the folder's frozenset
  dedup must make at-least-once re-mining invisible);
* **metrics/trace consistency** — the fault and steal counters agree
  with their trace-event counts per docs/OBSERVABILITY.md
  (``worker_died``/``task_retried``/``task_quarantined`` sizes,
  ``steal_planned``/``steal_sent``/``steal_received``);
* **no poisoned work** — plans are bounded well below
  ``max_attempts``, so any quarantine is a coordination bug.

Everything is deterministic: virtual time only, a single
``random.Random(seed)`` per concern, no sockets, no threads, no
sleeps. The same seed reproduces the same :attr:`SimNet.log`
byte-for-byte, which is what makes a failing seed a *replayable*
coordination bug rather than an anecdote.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any

from ...core.options import DEFAULT_OPTIONS, ResultSink
from ...graph.adjacency import Graph
from ..app_quasiclique import QuasiCliqueApp
from ..cluster.protocol import Hello, VertexReply, VertexRequest, Welcome
from ..cluster.reactor import MasterReactor, WorkerReactor
from ..config import EngineConfig
from ..engine import mine_parallel
from ..obs.spans import parse_detail
from ..runtime import ChannelClosed
from ..tracing import Tracer
from .net import SimChannel, SimNet
from .plan import FaultPlan, generate_plan

__all__ = ["SimFailure", "SimReport", "fuzz", "run_sim"]

#: Virtual seconds per abstract mining op (one quantum ≈ tau_time ops).
_OPS_SECONDS = 0.002
#: Master housekeeping cadence (virtual seconds).
_MASTER_TICK = 0.05
#: Virtual Goodbye-collection grace after shutdown begins.
_GOODBYE_GRACE = 5.0
#: Hard bounds: a run that exceeds these did not quiesce.
_MAX_VIRTUAL_TIME = 120.0
_MAX_EVENTS = 200_000

#: Sim parameters (small graphs: the oracle is brute-force-checkable
#: and one fuzz sweep covers hundreds of schedules in seconds).
_GAMMA = 0.75
_MIN_SIZE = 3
_GRAPH_POOL = 5


class SimFailure(AssertionError):
    """An invariant or oracle violation inside a simulated run."""


@dataclass
class SimReport:
    """Outcome of one simulated run."""

    seed: int
    ok: bool
    failure: str | None
    events: int
    virtual_time: float
    num_workers: int
    plan: FaultPlan
    log: list[str]
    tracer: Tracer
    metrics: Any = None
    result: Any = None
    #: Stale StealGrants the master re-pended (see MasterReactor).
    stale_steal_grants: int = 0
    #: Per-worker resident adjacency entries at quiescence (partition
    #: table + remote cache + pins) — the distributed vertex store's
    #: memory-bound evidence. Keyed by sim worker index; only workers
    #: that completed the Welcome handshake appear.
    resident: dict[int, int] | None = None


def _sim_graph(gseed: int) -> Graph:
    """One small Erdős–Rényi graph from the deterministic pool."""
    rng = random.Random(1000 + gseed)
    n = 8 + (gseed % 4)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < 0.5
    ]
    return Graph.from_edges(edges, vertices=range(n))


_oracle_cache: dict[tuple, Any] = {}


def _oracle(gseed: int, config: EngineConfig):
    """Serial reference run (cached across a fuzz sweep)."""
    key = (gseed, config.tau_split, config.tau_time, config.decompose)
    if key not in _oracle_cache:
        serial = replace(
            config,
            backend="serial",
            num_machines=1,
            threads_per_machine=1,
            num_procs=0,
            cluster_chunk_size=0,
        )
        _oracle_cache[key] = mine_parallel(
            _sim_graph(gseed), _GAMMA, _MIN_SIZE, serial
        )
    return _oracle_cache[key]


def _sim_config(rng: random.Random, num_workers: int) -> EngineConfig:
    """The job config of one fuzz run (a few knobs vary per seed)."""
    return EngineConfig(
        backend="cluster",
        num_procs=num_workers,
        decompose="timed",
        tau_time=10,
        time_unit="ops",
        # tau_split=0 makes every task big: steal traffic is guaranteed,
        # so a third of the fuzz space hammers the grant/forward path.
        tau_split=rng.choice([3, 3, 0]),
        queue_capacity=4,
        batch_size=2,
        heartbeat_period=0.25,
        heartbeat_timeout=2.0,
        lease_slack=5.0,
        retry_backoff=0.1,
        lease_window=2,
        max_attempts=10,
        steal_period_seconds=0.5,
        cluster_chunk_size=rng.choice([0, 1, 2]),
        # A tiny cache forces evictions and leans on the pin/refcount
        # overlay (a capacity below one task's pull count must still
        # make progress); the default-sized cache covers the hit path.
        cache_capacity=rng.choice([2, 4, 1 << 16]),
    )


class _SimWorker:
    """Driver-side state of one simulated worker process."""

    def __init__(self, index: int, reactor: WorkerReactor,
                 endpoint: SimChannel, speed: float):
        self.index = index
        self.reactor = reactor
        self.endpoint = endpoint
        self.speed = speed
        self.dead = False
        self.mine_scheduled = False


def run_sim(
    seed: int,
    *,
    plan: FaultPlan | None = None,
    num_workers: int | None = None,
    config: EngineConfig | None = None,
    graph_seed: int | None = None,
) -> SimReport:
    """Simulate one full cluster job under seed-derived faults.

    The keyword overrides exist for pinned regression scenarios: a
    hand-written plan with an explicit worker count and config replays
    one documented failure class instead of a random draw.
    """
    rng = random.Random(seed)
    gseed = graph_seed if graph_seed is not None else rng.randrange(_GRAPH_POOL)
    n_workers = num_workers or rng.choice([2, 2, 3])
    cfg = config or _sim_config(rng, n_workers)
    fault_plan = plan or generate_plan(rng.randrange(2**31), n_workers)
    graph = _sim_graph(gseed)
    oracle = _oracle(gseed, cfg)

    net = SimNet(
        seed=rng.randrange(2**31),
        dup_exempt=lambda msg: isinstance(msg, (Hello, Welcome)),
        fetch_frames=lambda msg: isinstance(msg, (VertexRequest, VertexReply)),
    )
    tracer = Tracer()
    app = QuasiCliqueApp(
        gamma=_GAMMA, min_size=_MIN_SIZE, sink=ResultSink(),
        options=DEFAULT_OPTIONS,
    )
    master = MasterReactor(
        graph, app, cfg, tracer=tracer, num_workers=n_workers
    )
    master.start_work(0.0)

    workers: list[_SimWorker] = []
    state = {"failure": None, "shutdown": False, "grace_over": False}

    def fail(message: str) -> None:
        if state["failure"] is None:
            state["failure"] = message

    # -- worker driving ----------------------------------------------------

    def worker_dies(worker: _SimWorker) -> None:
        if worker.dead:
            return
        worker.dead = True
        try:
            worker.reactor.cleanup()
        except Exception:
            pass
        worker.endpoint.close()

    def kick_mine(worker: _SimWorker) -> None:
        if worker.mine_scheduled or worker.dead:
            return
        worker.mine_scheduled = True
        net.call_at(net.now + 1e-4, f"w{worker.index}-mine",
                    lambda: mine(worker))

    def mine(worker: _SimWorker) -> None:
        worker.mine_scheduled = False
        if worker.dead or worker.endpoint.wedged:
            return
        try:
            cost = worker.reactor.mine_step(net.now)
        except ChannelClosed:
            worker_dies(worker)
            return
        if cost is not None:
            duration = max(cost, 1.0) * _OPS_SECONDS * worker.speed
            worker.mine_scheduled = True
            net.call_at(net.now + duration, f"w{worker.index}-mine",
                        lambda: mine(worker))

    def worker_tick(worker: _SimWorker) -> None:
        if worker.dead:
            return
        if not worker.endpoint.wedged:
            try:
                worker.reactor.on_tick(net.now)
            except ChannelClosed:
                worker_dies(worker)
                return
            kick_mine(worker)
        net.call_at(net.now + cfg.heartbeat_period,
                    f"w{worker.index}-tick", lambda: worker_tick(worker))

    def worker_handler(worker: _SimWorker, channel: SimChannel) -> None:
        msg = channel.recv()
        if worker.dead:
            return
        try:
            action = worker.reactor.on_message(msg, net.now)
        except ChannelClosed:
            worker_dies(worker)
            return
        if action == "stop":
            try:
                worker.reactor.finish(net.now)
            except ChannelClosed:
                worker_dies(worker)
                return
            worker.reactor.cleanup()
            worker.dead = True
        elif action == "lost":
            worker.reactor.cleanup()
            worker.dead = True
        else:
            kick_mine(worker)

    def master_handler(channel: SimChannel) -> None:
        msg = channel.recv()
        master.on_message(channel, msg, net.now)
        master.ledger.check_invariants()

    def spawn_worker(index: int) -> None:
        faults = fault_plan.link_for(index)
        windows = tuple(
            (p.start, p.end)
            for p in fault_plan.partitions
            if index in p.workers
        )
        m_end, w_end = net.link(f"link-w{index}", faults, windows)
        m_end.handler = master_handler
        # graph=None: simulated workers run the real distributed vertex
        # store — partition table in the Welcome, remote pulls through
        # VertexRequest/VertexReply — never a full local graph copy.
        reactor = WorkerReactor(
            w_end, None,
            pid=index, host=f"sim-{index}",
            clock=lambda: net.now,
        )
        worker = _SimWorker(index, reactor, w_end, fault_plan.faults_for(index).speed)
        w_end.handler = lambda ch, w=worker: worker_handler(w, ch)
        workers.append(worker)
        try:
            reactor.hello()
        except ChannelClosed:
            worker_dies(worker)
            return
        net.call_at(net.now + cfg.heartbeat_period,
                    f"w{index}-tick", lambda: worker_tick(worker))
        wf = fault_plan.faults_for(index)
        if wf.crash_at is not None:
            net.call_at(wf.crash_at, f"w{index}-crash",
                        lambda: worker_dies(worker))
            if wf.restart_at is not None:
                replacement = len(workers) + n_workers + index
                net.call_at(wf.restart_at, f"w{index}-restart",
                            lambda r=replacement: spawn_worker(r))
        if wf.wedge_at is not None:
            net.call_at(wf.wedge_at, f"w{index}-wedge",
                        lambda: net.wedge(w_end))
            if wf.unwedge_at is not None:
                net.call_at(wf.unwedge_at, f"w{index}-unwedge",
                            lambda: net.unwedge(w_end))

    for i in range(n_workers):
        net.call_at(i * 0.01, f"w{i}-spawn", lambda i=i: spawn_worker(i))

    def master_tick() -> None:
        if state["failure"] is not None:
            return
        if not state["shutdown"]:
            master.on_tick(net.now)
        net.call_at(net.now + _MASTER_TICK, "master-tick", master_tick)

    net.call_at(0.0, "master-tick", master_tick)

    # -- the run loop ------------------------------------------------------

    result = None
    try:
        while True:
            if state["failure"] is not None:
                break
            if state["shutdown"]:
                if not master.awaiting_goodbye():
                    break
                if state["grace_over"]:
                    master.abandon_stragglers()
                    break
            if net.now > _MAX_VIRTUAL_TIME or net.events_fired > _MAX_EVENTS:
                fail(
                    f"no quiescence: t={net.now:.3f} events={net.events_fired} "
                    f"pending={len(master._pending)} leased={len(master.ledger)}"
                )
                break
            if not net.step():
                fail("event heap drained before quiescence")
                break
            if not state["shutdown"] and master.done:
                state["shutdown"] = True
                master.begin_shutdown(net.now)
                net.call_at(net.now + _GOODBYE_GRACE, "goodbye-grace",
                            lambda: state.__setitem__("grace_over", True))
    except (AssertionError, RuntimeError) as exc:
        fail(f"{type(exc).__name__}: {exc}")

    # -- quiescence checks -------------------------------------------------

    resident: dict[int, int] = {}
    if state["failure"] is None:
        try:
            master.ledger.check_invariants()
            result = master.finalize(net.now)
            _check_oracle(result, oracle)
            _check_consistency(master, tracer)
            resident = _check_memory_bounded(workers, graph, n_workers)
        except AssertionError as exc:
            fail(f"quiescence check failed: {exc}")

    for worker in workers:
        if not worker.dead:
            worker.reactor.cleanup()

    return SimReport(
        seed=seed,
        ok=state["failure"] is None,
        failure=state["failure"],
        events=net.events_fired,
        virtual_time=net.now,
        num_workers=n_workers,
        plan=fault_plan,
        log=net.log,
        tracer=tracer,
        metrics=master.metrics,
        result=result,
        stale_steal_grants=master.stale_steal_grants,
        resident=resident,
    )


def _check_oracle(result: Any, oracle: Any) -> None:
    assert result.maximal == oracle.maximal, (
        f"maximal family diverged from the serial oracle: "
        f"missing={sorted(map(sorted, oracle.maximal - result.maximal))} "
        f"extra={sorted(map(sorted, result.maximal - oracle.maximal))}"
    )
    assert result.candidates == oracle.candidates, (
        f"candidate set diverged (dedup exactness): "
        f"missing={sorted(map(sorted, oracle.candidates - result.candidates))} "
        f"extra={sorted(map(sorted, result.candidates - oracle.candidates))}"
    )


def _check_memory_bounded(
    workers: list[_SimWorker], graph: Graph, n_workers: int
) -> dict[int, int]:
    """The distributed vertex store never reassembles the full graph.

    With more than one worker, each worker's partition table must be a
    strict subset of the vertex set, and its remote cache must respect
    its capacity bound. (The sim graphs are tiny, so table + cache can
    legitimately *reach* |V| — the strict resident < |V| bound is
    asserted on a larger graph by the cluster integration tests.)
    """
    resident: dict[int, int] = {}
    for worker in workers:
        reactor = worker.reactor
        access = getattr(reactor, "access", None)
        if access is None or reactor.machine is None:
            continue
        resident[worker.index] = access.resident_entries()
        if n_workers > 1:
            assert len(reactor.machine.table) < graph.num_vertices, (
                f"worker {worker.index} holds the full graph: table has "
                f"{len(reactor.machine.table)} of {graph.num_vertices} vertices"
            )
        assert len(access.cache) <= access.cache.capacity, (
            f"worker {worker.index} cache over capacity: "
            f"{len(access.cache)} > {access.cache.capacity}"
        )
    return resident


def _traced_size(tracer: Tracer, kind: str) -> int:
    """Sum of the ``size=`` payloads of one fault-event kind."""
    total = 0
    for event in tracer.events(kind=kind):
        total += int(parse_detail(event.detail).get("size", 1))
    return total


def _check_consistency(master: MasterReactor, tracer: Tracer) -> None:
    """Metrics ↔ trace agreement per docs/OBSERVABILITY.md."""
    m = master.metrics
    counts = tracer.counts()
    assert m.workers_died == counts.get("worker_died", 0), (
        f"workers_died={m.workers_died} != "
        f"worker_died events={counts.get('worker_died', 0)}"
    )
    assert m.tasks_retried == _traced_size(tracer, "task_retried"), (
        f"tasks_retried={m.tasks_retried} != "
        f"traced sizes={_traced_size(tracer, 'task_retried')}"
    )
    assert m.tasks_quarantined == 0 and not master.quarantined, (
        f"work quarantined under a bounded plan: "
        f"{m.tasks_quarantined} tasks, {len(master.quarantined)} units"
    )
    assert m.steals_planned == counts.get("steal_planned", 0), (
        f"steals_planned={m.steals_planned} != "
        f"steal_planned events={counts.get('steal_planned', 0)}"
    )
    assert m.steals_sent == counts.get("steal_sent", 0), (
        f"steals_sent={m.steals_sent} != "
        f"steal_sent events={counts.get('steal_sent', 0)}"
    )
    assert m.steals_received == counts.get("steal_received", 0), (
        f"steals_received={m.steals_received} != "
        f"steal_received events={counts.get('steal_received', 0)}"
    )
    assert m.steals_received <= m.steals_sent, (
        f"more steals received ({m.steals_received}) than sent "
        f"({m.steals_sent})"
    )


def fuzz(seeds: int, base: int = 0) -> tuple[int, list[SimReport]]:
    """Sweep `seeds` consecutive seeds; returns (passed, failures)."""
    passed = 0
    failures: list[SimReport] = []
    for i in range(seeds):
        report = run_sim(base + i)
        if report.ok:
            passed += 1
        else:
            failures.append(report)
    return passed, failures
