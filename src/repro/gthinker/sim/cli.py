"""``repro sim-fuzz``: sweep the deterministic simulator over seeds.

One process, no sockets, virtual time only. Each seed is a complete
cluster job under a randomly drawn :class:`~.plan.FaultPlan`; a failing
seed prints a one-line replay command and dumps its virtual-time trace
as JSONL, which ``repro trace-report`` reads unchanged.

Usage::

    repro sim-fuzz --seeds 200            # sweep seeds 0..199
    repro sim-fuzz --seeds 200 --base 1700000000
    repro sim-fuzz --replay 1234          # re-run one seed, verbosely
    repro sim-fuzz --replay 1234 --trace fail.jsonl --log fail.log
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import SimReport, run_sim

__all__ = ["sim_fuzz_cli"]


def _dump_failure(report: SimReport, trace_path: str | None,
                  log_path: str | None) -> None:
    if trace_path:
        written = report.tracer.dump_jsonl(trace_path)
        print(f"  trace: {written} events -> {trace_path} "
              f"(inspect with: repro trace-report {trace_path})")
    if log_path:
        with open(log_path, "w") as fh:
            fh.write("\n".join(report.log) + "\n")
        print(f"  event log: {len(report.log)} lines -> {log_path}")


def sim_fuzz_cli(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sim-fuzz",
        description=(
            "Deterministic simulation fuzzing of the cluster control "
            "plane: virtual time, seeded faults, serial-oracle checking."
        ),
    )
    parser.add_argument("--seeds", type=int, default=100,
                        help="number of consecutive seeds to sweep")
    parser.add_argument("--base", type=int, default=0,
                        help="first seed of the sweep (rotate in CI)")
    parser.add_argument("--replay", type=int, default=None, metavar="SEED",
                        help="re-run one seed and report it in detail")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="JSONL trace dump path for failures/replays")
    parser.add_argument("--log", default=None, metavar="FILE",
                        help="virtual-time event log path for failures/replays")
    args = parser.parse_args(argv)

    if args.replay is not None:
        report = run_sim(args.replay)
        status = "PASS" if report.ok else "FAIL"
        print(f"seed {report.seed}: {status} — {report.events} events, "
              f"virtual t={report.virtual_time:.3f}s, "
              f"{report.num_workers} workers")
        if not report.ok:
            print(f"  failure: {report.failure}")
        _dump_failure(report, args.trace, args.log)
        return 0 if report.ok else 1

    started = time.perf_counter()
    failures: list[SimReport] = []
    for i in range(args.seeds):
        seed = args.base + i
        report = run_sim(seed)
        if not report.ok:
            failures.append(report)
            print(f"seed {seed}: FAIL — {report.failure}", file=sys.stderr)
            print(f"  replay: repro sim-fuzz --replay {seed} "
                  f"--trace seed{seed}.jsonl --log seed{seed}.log",
                  file=sys.stderr)
            _dump_failure(
                report,
                args.trace or f"sim-fail-{seed}.jsonl",
                args.log or f"sim-fail-{seed}.log",
            )
    elapsed = time.perf_counter() - started
    print(f"sim-fuzz: {args.seeds - len(failures)}/{args.seeds} seeds passed "
          f"(base {args.base}) in {elapsed:.1f}s")
    return 1 if failures else 0
