"""Deterministic simulation testing (DST) of the cluster control plane.

The *shipping* coordination code — :class:`~repro.gthinker.cluster.
reactor.MasterReactor` and :class:`~repro.gthinker.cluster.reactor.
WorkerReactor` — runs here over an in-memory :class:`~.net.SimNet` on a
virtual clock, under seeded :class:`~.plan.FaultPlan`s: delay, jitter,
reordering, duplication, connection tears, partitions, crashes,
restarts, wedges, stragglers. One seed reproduces one schedule
byte-for-byte; ``repro sim-fuzz`` sweeps thousands of schedules per
minute and every failure ships with its replay command.

See docs/TESTING.md for the taxonomy and the replay workflow.
"""

from .harness import SimFailure, SimReport, fuzz, run_sim
from .net import SimChannel, SimLink, SimNet
from .plan import (
    FaultPlan,
    LinkFaults,
    PartitionWindow,
    WorkerFaults,
    generate_plan,
)

__all__ = [
    "FaultPlan",
    "LinkFaults",
    "PartitionWindow",
    "SimChannel",
    "SimFailure",
    "SimLink",
    "SimNet",
    "SimReport",
    "WorkerFaults",
    "fuzz",
    "generate_plan",
    "run_sim",
]
