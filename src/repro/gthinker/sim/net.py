"""SimNet: a deterministic in-memory network on a virtual clock.

One seeded RNG, one event heap, zero threads. :class:`SimChannel`
implements the :class:`repro.gthinker.runtime.Channel` protocol, so the
cluster reactors run over it unchanged; :class:`SimNet` owns virtual
time and decides — per frame, from the link's :class:`~.plan.
LinkFaults` — when (and whether, and how often) each frame arrives.

Semantics (see :mod:`.plan` for the rationale):

* **delivery** — each frame is scheduled at ``now + latency +
  U(0, jitter)``; unless the link enables ``reorder``, arrival times
  are clamped per direction so delivery order matches send order
  (TCP's in-order guarantee).
* **partitions** — a frame sent while the link is inside a partition
  window stalls until the window heals, then delivers (the retransmit
  model: TCP loses no data to a transient partition, only time).
* **drop** — a dropped frame *tears the link*: both endpoints get EOF
  after their already-scheduled frames. TCP never silently drops one
  frame mid-stream; a reset is the only honest spelling.
* **duplicate** — the frame is delivered a second time a little later
  (exempt frames — the handshake — are controlled by ``dup_exempt``).
* **close** — closing an endpoint schedules EOF (``None``) to its
  peer, exactly like a closed socket; sends on a closed or torn
  channel raise :class:`~repro.gthinker.runtime.ChannelClosed`.
* **wedge** — a wedged endpoint stops consuming: frames queue up
  (like an unread socket buffer) and are replayed in order on
  unwedge.

Every action appends one line to :attr:`SimNet.log`. The log is pure
virtual-time data — no wall clock, no object ids — so identical seed +
plan + driver behaviour reproduces it byte-for-byte; the fuzz CLI
leans on that for replay debugging, and a mismatch is itself a
determinism failure.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable

from ..runtime import ChannelClosed
from .plan import LinkFaults

__all__ = ["SimChannel", "SimLink", "SimNet"]


class SimChannel:
    """One endpoint of a simulated link (implements runtime.Channel)."""

    def __init__(self, net: "SimNet", link: "SimLink", name: str):
        self._net = net
        self.link = link
        self.name = name
        self._inbox: list[Any] = []
        self._closed = False
        #: Set once EOF (None) has been delivered: the reader thread of
        #: the real transport would have exited, so later frames are
        #: dead-dropped rather than delivered.
        self.eof_delivered = False
        #: Frames held while the endpoint is wedged, in arrival order.
        self.stalled: list[Any] = []
        self.wedged = False
        #: Delivery callback: ``handler(channel)`` is invoked after a
        #: frame lands in the inbox; it normally calls :meth:`recv`.
        self.handler: Callable[["SimChannel"], None] | None = None

    @property
    def peer_endpoint(self) -> "SimChannel":
        a, b = self.link.endpoints
        return b if self is a else a

    @property
    def peer(self) -> str:
        return self.peer_endpoint.name

    # -- Channel protocol --------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message: Any) -> None:
        self._net.transmit(self, message)

    def recv(self) -> Any:
        """Pop the next delivered frame (virtual recv never blocks)."""
        if self._inbox:
            msg = self._inbox.pop(0)
            if msg is None:
                self.close()
            return msg
        if self._closed:
            raise ChannelClosed("channel already closed")
        raise RuntimeError(
            f"recv on {self.name} with nothing delivered: a virtual-time "
            f"recv cannot block; drive deliveries through SimNet.step()"
        )

    def poll(self) -> bool:
        return bool(self._inbox)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._net.on_close(self)


class SimLink:
    """One bidirectional master↔worker connection."""

    def __init__(self, name: str, faults: LinkFaults,
                 partitions: tuple[tuple[float, float], ...] = ()):
        self.name = name
        self.faults = faults
        #: (start, end) windows during which frames stall (both ways).
        self.partitions = partitions
        self.cut = False
        self.endpoints: tuple[SimChannel, SimChannel] = ()  # set by SimNet
        #: Per-direction latest scheduled arrival, for the FIFO clamp.
        self.last_arrival: dict[str, float] = {}


class SimNet:
    """The virtual-time event loop and fault-injecting transport."""

    def __init__(
        self,
        seed: int,
        dup_exempt: Callable[[Any], bool] | None = None,
        fetch_frames: Callable[[Any], bool] | None = None,
    ):
        self.rng = random.Random(seed)
        self.now = 0.0
        self.events_fired = 0
        #: The deterministic run journal (one line per action).
        self.log: list[str] = []
        self._dup_exempt = dup_exempt or (lambda _msg: False)
        #: Frames the link's fetch_* fault knobs apply to (the vertex
        #: fetch traffic; see plan.LinkFaults).
        self._fetch_frames = fetch_frames or (lambda _msg: False)
        self._heap: list[tuple[float, int, tuple]] = []
        self._seq = itertools.count()

    # -- topology ----------------------------------------------------------

    def link(
        self,
        name: str,
        faults: LinkFaults | None = None,
        partitions: tuple[tuple[float, float], ...] = (),
    ) -> tuple[SimChannel, SimChannel]:
        """Create one connection; returns its (a, b) endpoints."""
        link = SimLink(name, faults or LinkFaults(), partitions)
        a = SimChannel(self, link, f"{name}.a")
        b = SimChannel(self, link, f"{name}.b")
        link.endpoints = (a, b)
        return a, b

    # -- scheduling --------------------------------------------------------

    def _push(self, at: float, entry: tuple) -> None:
        heapq.heappush(self._heap, (at, next(self._seq), entry))

    def call_at(self, at: float, label: str, fn: Callable[[], None]) -> None:
        """Schedule a timer: `fn` runs at virtual time `at`."""
        self._push(max(at, self.now), ("timer", label, fn))

    def pending(self) -> int:
        return len(self._heap)

    # -- transport ---------------------------------------------------------

    def _arrival(self, src: SimChannel, base_delay: float) -> float:
        """Earliest-arrival time for a frame sent now on src's link."""
        link, faults = src.link, src.link.faults
        at = self.now + base_delay
        if faults.jitter:
            at += self.rng.uniform(0.0, faults.jitter)
        for start, end in link.partitions:
            if start <= self.now < end:
                at = max(at, end + faults.latency)
        if not faults.reorder:
            direction = src.name
            at = max(at, link.last_arrival.get(direction, 0.0))
            link.last_arrival[direction] = at
        return at

    def transmit(self, src: SimChannel, message: Any) -> None:
        if src.closed:
            raise ChannelClosed("channel already closed")
        link = src.link
        dst = src.peer_endpoint
        if link.cut or dst.closed:
            raise ChannelClosed(f"peer gone on {link.name}")
        faults = link.faults
        fetch = self._fetch_frames(message)
        drop_rate = faults.drop_rate + (faults.fetch_drop_rate if fetch else 0.0)
        if drop_rate and self.rng.random() < drop_rate:
            # A dropped frame is a torn connection: EOF both ways, after
            # whatever was already in flight (FIFO clamp applies).
            link.cut = True
            self.log.append(
                f"{self.now:.6f} tear {link.name} "
                f"(dropped {_frame_name(message)} from {src.name})"
            )
            self._push(self._arrival(src, faults.latency), ("deliver", dst, None, "eof"))
            self._push(self._arrival(dst, faults.latency), ("deliver", src, None, "eof"))
            return
        latency = faults.latency + (faults.fetch_latency if fetch else 0.0)
        at = self._arrival(src, latency)
        self._push(at, ("deliver", dst, message, ""))
        dup_rate = faults.dup_rate + (faults.fetch_dup_rate if fetch else 0.0)
        if (
            dup_rate
            and message is not None
            and not self._dup_exempt(message)
            and self.rng.random() < dup_rate
        ):
            self._push(
                self._arrival(src, 2 * latency),
                ("deliver", dst, message, "dup"),
            )

    def on_close(self, endpoint: SimChannel) -> None:
        """Endpoint closed: its peer sees EOF, like a closed socket."""
        peer = endpoint.peer_endpoint
        if peer.closed or endpoint.link.cut:
            return
        faults = endpoint.link.faults
        self._push(
            self._arrival(endpoint, faults.latency),
            ("deliver", peer, None, "eof"),
        )

    # -- wedging -----------------------------------------------------------

    def wedge(self, endpoint: SimChannel) -> None:
        endpoint.wedged = True
        self.log.append(f"{self.now:.6f} wedge {endpoint.name}")

    def unwedge(self, endpoint: SimChannel) -> None:
        if not endpoint.wedged:
            return
        endpoint.wedged = False
        self.log.append(
            f"{self.now:.6f} unwedge {endpoint.name} "
            f"(replaying {len(endpoint.stalled)})"
        )
        stalled, endpoint.stalled = endpoint.stalled, []
        for i, msg in enumerate(stalled):
            # Replay in order, just after now (an unfrozen process reads
            # its whole socket buffer at once).
            self._push(self.now + (i + 1) * 1e-6, ("deliver", endpoint, msg, "replay"))

    # -- the event loop ----------------------------------------------------

    def step(self) -> bool:
        """Fire the next event; False when the heap is empty."""
        if not self._heap:
            return False
        at, _seq, entry = heapq.heappop(self._heap)
        self.now = max(self.now, at)
        self.events_fired += 1
        kind = entry[0]
        if kind == "timer":
            _, label, fn = entry
            self.log.append(f"{self.now:.6f} timer {label}")
            fn()
            return True
        _, dst, msg, note = entry
        tag = f" {note}" if note else ""
        if dst.closed or dst.eof_delivered:
            self.log.append(
                f"{self.now:.6f} dead_drop {dst.name} {_frame_name(msg)}{tag}"
            )
            return True
        if dst.wedged:
            dst.stalled.append(msg)
            self.log.append(
                f"{self.now:.6f} stall {dst.name} {_frame_name(msg)}{tag}"
            )
            return True
        if msg is None:
            dst.eof_delivered = True
        dst._inbox.append(msg)
        self.log.append(
            f"{self.now:.6f} deliver {dst.name} {_frame_name(msg)}{tag}"
        )
        if dst.handler is not None:
            dst.handler(dst)
        return True


def _frame_name(msg: Any) -> str:
    return "EOF" if msg is None else type(msg).__name__
