"""Fault plans: the adversarial schedule of one simulated cluster run.

A :class:`FaultPlan` describes everything hostile the virtual network
and the virtual workers will do during a run — message latency and
jitter, per-link reordering, connection-tearing frame drops, frame
duplication, master↔worker partitions, worker crashes (with optional
restart as a fresh worker), wedged workers, and straggler speed
factors. Plans are plain data: a pinned plan in a regression test
reads as documentation of the scenario it exercises.

:func:`generate_plan` draws a random plan from one integer seed. It is
deliberately biased toward the coordination code's scar tissue —
crashes land mid-job (while leases and steal requests are in flight),
partitions overlap the steal period, wedges outlast the heartbeat
timeout — and it always leaves **worker 0 fault-free** so every job
can finish: a plan that kills the whole pool would make the master's
"all workers died" error a correct outcome, which is not an
interesting seed.

Fault semantics (implemented by :class:`~.net.SimNet`):

* ``drop_rate`` tears the link like a TCP reset — both endpoints see
  EOF after their in-flight frames. Silent per-frame loss is
  deliberately **not** modelled: the real transport is TCP, which
  never silently drops an acknowledged frame mid-connection, and a
  silently vanished ``StealGrant`` would lose mined tasks in a way no
  real schedule can.
* ``reorder`` lifts the per-link FIFO guarantee — strictly harsher
  than TCP. The reactors tolerate it (pre-``Welcome`` parking,
  stale-ack drops), so it stays in the fuzz space as an adversarial
  overapproximation.
* ``dup_rate`` re-delivers a frame a second time, except the
  ``Hello``/``Welcome`` handshake (a duplicated registration would
  model two distinct workers, not a retransmit).
* a partition stalls frames in both directions until it heals (TCP
  retransmit model); the master's heartbeat timeout decides whether
  the stall reads as a death.
* a crash closes the worker's endpoint without a ``Goodbye``; a
  restart joins a brand-new worker (fresh ``Hello``, new worker id).
* a wedge freezes the worker — no ticks, no mining, no reads — until
  it unwedges (if ever); deliveries buffer like an unread socket.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "FaultPlan",
    "LinkFaults",
    "PartitionWindow",
    "WorkerFaults",
    "generate_plan",
]


@dataclass(frozen=True)
class LinkFaults:
    """Per-link delivery behaviour (one master↔worker connection)."""

    latency: float = 0.002
    jitter: float = 0.0  # uniform extra delay in [0, jitter) per frame
    reorder: bool = False  # lift the per-link FIFO clamp
    drop_rate: float = 0.0  # per-frame chance the connection tears (EOF)
    dup_rate: float = 0.0  # per-frame chance of a second delivery
    #: Extra faults applied only to vertex-fetch frames (VertexRequest/
    #: VertexReply — see SimNet's ``fetch_frames`` predicate), additive
    #: with the per-frame rates above. Fetch traffic is the chattiest
    #: message class, so it gets its own knobs: slow fetches exercise
    #: parked-task scheduling, duplicated fetches exercise the
    #: stateless-re-serve/drop-by-request-id discipline, and a dropped
    #: fetch tears the link like any other drop (silent loss would
    #: strand a parked task with no retransmit to save it).
    fetch_latency: float = 0.0
    fetch_dup_rate: float = 0.0
    fetch_drop_rate: float = 0.0


@dataclass(frozen=True)
class PartitionWindow:
    """Frames on the targeted workers' links stall during [start, end)."""

    start: float
    end: float
    workers: tuple[int, ...]


@dataclass(frozen=True)
class WorkerFaults:
    """One worker's scripted misbehaviour on the virtual clock."""

    worker: int
    crash_at: float | None = None
    restart_at: float | None = None  # rejoins as a brand-new worker
    wedge_at: float | None = None
    unwedge_at: float | None = None
    #: Straggler factor: virtual duration multiplier per mining quantum.
    speed: float = 1.0


@dataclass(frozen=True)
class FaultPlan:
    """The full adversarial schedule of one simulated run."""

    links: dict[int, LinkFaults] = field(default_factory=dict)
    default_link: LinkFaults = field(default_factory=LinkFaults)
    partitions: tuple[PartitionWindow, ...] = ()
    workers: tuple[WorkerFaults, ...] = ()

    def link_for(self, worker_index: int) -> LinkFaults:
        return self.links.get(worker_index, self.default_link)

    def faults_for(self, worker_index: int) -> WorkerFaults:
        for wf in self.workers:
            if wf.worker == worker_index:
                return wf
        return WorkerFaults(worker=worker_index)


def generate_plan(seed: int, num_workers: int) -> FaultPlan:
    """Draw one adversarial plan; worker 0 stays fault-free.

    The index space covers restarts too: a worker crashed with
    ``restart_at`` rejoins under index ``num_workers + k``, and those
    indices inherit :attr:`FaultPlan.default_link`.
    """
    rng = random.Random(seed)
    links: dict[int, LinkFaults] = {
        0: LinkFaults(latency=0.002, jitter=0.001)
    }
    worker_faults: list[WorkerFaults] = []
    partitions: list[PartitionWindow] = []

    for w in range(1, num_workers):
        links[w] = LinkFaults(
            latency=rng.choice([0.001, 0.002, 0.005, 0.02]),
            jitter=rng.choice([0.0, 0.001, 0.01]),
            reorder=rng.random() < 0.25,
            drop_rate=rng.choice([0.0, 0.0, 0.0, 0.002, 0.01]),
            dup_rate=rng.choice([0.0, 0.0, 0.05, 0.15]),
            fetch_latency=rng.choice([0.0, 0.0, 0.005, 0.02]),
            fetch_dup_rate=rng.choice([0.0, 0.0, 0.1]),
            fetch_drop_rate=rng.choice([0.0, 0.0, 0.0, 0.005]),
        )
        roll = rng.random()
        crash_at = restart_at = wedge_at = unwedge_at = None
        if roll < 0.35:
            # Crash mid-job, while leases/steals are plausibly in flight.
            crash_at = rng.uniform(0.2, 3.0)
            if rng.random() < 0.5:
                restart_at = crash_at + rng.uniform(0.2, 1.5)
        elif roll < 0.55:
            # Wedge past the heartbeat timeout about half the time.
            wedge_at = rng.uniform(0.2, 2.5)
            if rng.random() < 0.5:
                unwedge_at = wedge_at + rng.uniform(0.5, 4.0)
        speed = rng.choice([1.0, 1.0, 1.0, 2.0, 5.0])
        worker_faults.append(
            WorkerFaults(
                worker=w,
                crash_at=crash_at,
                restart_at=restart_at,
                wedge_at=wedge_at,
                unwedge_at=unwedge_at,
                speed=speed,
            )
        )

    if num_workers > 1 and rng.random() < 0.4:
        # One partition window over a non-zero worker, sized to overlap
        # steal planning and possibly the heartbeat timeout.
        target = rng.randrange(1, num_workers)
        start = rng.uniform(0.1, 2.0)
        partitions.append(
            PartitionWindow(
                start=start,
                end=start + rng.uniform(0.1, 2.5),
                workers=(target,),
            )
        )

    return FaultPlan(
        links=links,
        default_link=LinkFaults(latency=0.002, jitter=0.001),
        partitions=tuple(partitions),
        workers=tuple(worker_faults),
    )
