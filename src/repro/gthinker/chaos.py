"""Fault-injection hooks for the fault-tolerant process backend.

Chaos testing the supervisor in :mod:`repro.gthinker.engine_mp` needs
faults that are (a) *deterministic* — seeded test schedules must replay
— and (b) *picklable/importable* — under the ``spawn`` start method a
worker process re-imports everything it is handed, so the injection
spec and the misbehaving test applications must live in an importable
module, not in a test file.

Three fault flavours cover the failure modes the supervisor handles:

* :class:`FaultInjection` — the engine-level hook: a chosen worker
  SIGKILLs itself mid-run (hard death: queues are not flushed, exactly
  like an OOM-kill or machine loss);
* :class:`KillOnRootApp` — a poison *task*: whichever worker mines the
  poisoned root dies, so retries keep failing until the batch is
  quarantined;
* :class:`WedgeOnRootApp` — a wedged worker: mining the poisoned root
  blocks far past any lease, exercising lease-expiry reclaim;
* :class:`ErrorOnRootApp` — an application bug: ``compute`` raises, the
  worker reports the traceback and exits (the soft-failure path).

Every app here spawns one trivial iteration-3 task per vertex and emits
the singleton ``{v}`` for healthy roots, so expected results are
obvious: all vertices except the poisoned one.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

from ..core.options import MiningStats, ResultSink
from .task import ComputeOutcome, Task

__all__ = [
    "ErrorOnRootApp",
    "FaultInjection",
    "KillOnRootApp",
    "SleepyBigTaskApp",
    "WedgeOnRootApp",
    "die_hard",
]


def die_hard() -> None:
    """Kill the calling process without any cleanup (no queue flush,
    no atexit) — the closest a test can get to an OOM-kill."""
    if hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(1)  # Windows fallback; also unclean


@dataclass(frozen=True)
class FaultInjection:
    """Chaos schedule: worker `worker_id` SIGKILLs itself mid-run.

    The worker's *first* incarnation dies the moment it receives a batch
    after having completed `after_batches` of them (``after_batches=0``
    → it dies holding its very first batch). Respawned incarnations
    ignore the injection, modeling a transient fault — an OOM-kill, a
    preempted container — rather than a permanently broken host. If the
    job is too small for the worker ever to receive a batch, the fault
    simply never fires; chaos tests must hold either way.
    """

    worker_id: int
    after_batches: int = 0

    def for_incarnation(
        self, worker_id: int, generation: int
    ) -> "FaultInjection | None":
        """The injection to arm for one worker incarnation, if any.

        Only the targeted slot's *first* incarnation (generation 0) is
        armed; respawned incarnations must run clean or the supervisor's
        recovery could never converge. Drivers call this instead of
        re-encoding the gating rule.
        """
        if worker_id == self.worker_id and generation == 0:
            return self
        return None


class _SingletonRootApp:
    """Shared base: one finished task per vertex, emitting ``{root}``."""

    def __init__(self, poison_root: int):
        self.poison_root = poison_root
        self.sink = ResultSink()
        self.stats = MiningStats()

    def spawn(self, vertex, adjacency, task_id):
        return Task(task_id=task_id, root=vertex, iteration=3, s=[vertex], ext=[])

    def compute(self, task, frontier, ctx):
        if task.root == self.poison_root:
            self._trip(task)
        self.sink.emit([task.root])
        self.stats.candidates_emitted += 1
        return ComputeOutcome(finished=True, cost_ops=1)

    def _trip(self, task):  # pragma: no cover - overridden
        raise NotImplementedError


class KillOnRootApp(_SingletonRootApp):
    """SIGKILLs its worker when it mines `poison_root` — every time, so
    the poisoned batch fails all the way to quarantine."""

    def _trip(self, task):
        die_hard()


class WedgeOnRootApp(_SingletonRootApp):
    """Blocks on `poison_root` far past any lease deadline.

    The sleep stands in for a runaway task; the parent must declare the
    lease expired, terminate this worker, and move on.
    """

    def __init__(self, poison_root: int, wedge_seconds: float = 60.0):
        super().__init__(poison_root)
        self.wedge_seconds = wedge_seconds

    def _trip(self, task):
        import time

        time.sleep(self.wedge_seconds)


class ErrorOnRootApp(_SingletonRootApp):
    """Raises on `poison_root`: the worker ships the traceback to the
    parent and exits — the application-bug flavour of a poisoned task."""

    def _trip(self, task):
        raise ValueError(f"injected fault mining root {task.root}")


class SleepyBigTaskApp:
    """Uniform slow tasks that are all *big*: stealing's donor pool.

    Every spawned task carries a non-empty ``ext``, so with
    ``tau_split=0`` each one routes to Q_global, and every compute
    sleeps `sleep_seconds` of real wall time. Funnel the whole spawn
    range to one worker (``cluster_chunk_size`` ≥ |V|) and its
    heartbeats show a mountain of pending big tasks while its peers
    report zero — exactly the asymmetry the master's stealing planner
    exists to flatten. Used by the steal-observability tests; results
    stay trivially checkable (the singleton ``{v}`` per vertex).
    """

    def __init__(self, sleep_seconds: float = 0.01):
        self.sleep_seconds = sleep_seconds
        self.sink = ResultSink()
        self.stats = MiningStats()

    def spawn(self, vertex, adjacency, task_id):
        return Task(
            task_id=task_id, root=vertex, iteration=3, s=[vertex], ext=[vertex]
        )

    def compute(self, task, frontier, ctx):
        import time

        time.sleep(self.sleep_seconds)
        self.sink.emit([task.root])
        self.stats.candidates_emitted += 1
        return ComputeOutcome(finished=True, cost_ops=1)
