"""Job-level aggregators (the G-thinker aggregator facility).

G-thinker applications share job-wide state beyond the result file: the
max-clique app keeps a global incumbent, counting apps keep a running
sum. These small thread-safe reducers model that facility so new
applications compose from parts instead of hand-rolling locks.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from typing import Generic, TypeVar

T = TypeVar("T")


class Aggregator(Generic[T]):
    """Thread-safe reduce cell: value ← combine(value, update)."""

    def __init__(self, initial: T, combine: Callable[[T, T], T]):
        self._value = initial
        self._combine = combine
        self._lock = threading.Lock()

    def update(self, item: T) -> T:
        """Fold `item` in; returns the new value."""
        with self._lock:
            self._value = self._combine(self._value, item)
            return self._value

    def get(self) -> T:
        with self._lock:
            return self._value


class SumAggregator(Aggregator[int]):
    """Count/sum reducer (triangle counting, message totals, …)."""

    def __init__(self, initial: int = 0):
        super().__init__(initial, lambda a, b: a + b)

    def add(self, amount: int = 1) -> int:
        return self.update(amount)


class MaxSetAggregator:
    """Keep the largest set seen (the max-clique incumbent pattern)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._best: frozenset[int] = frozenset()

    @property
    def size(self) -> int:
        return len(self._best)

    def offer(self, candidate: Iterable[int]) -> bool:
        """Install `candidate` if strictly larger; returns True if installed."""
        fs = frozenset(candidate)
        with self._lock:
            if len(fs) > len(self._best):
                self._best = fs
                return True
            return False

    def best(self) -> set[int]:
        with self._lock:
            return set(self._best)
