"""The reforged G-thinker engine (paper Section 5, Figure 8).

An in-process reproduction of the distributed runtime: M machines each
with T mining threads, a hash-partitioned vertex table, a remote vertex
cache, per-thread local task queues, a shared per-machine global
big-task queue, disk spilling (L_small / L_big), and master-coordinated
big-task stealing across machines.

All scheduling *policy* — routing, pick priority, local-queue refill
order, spawn batching with big-task early stop, steal planning — lives
in :mod:`repro.gthinker.scheduler` and is shared verbatim with the
simulated cluster. This module is only the *executor*: the serial fast
path and the real-thread driver, plus job lifecycle (active-task
accounting, worker failure propagation, metrics collection).

Pull resolution is synchronous in-process (the data-serving module's
latency collapses to zero) but ownership, caching, and message counts
are preserved, so the *scheduling* behaviour — what the paper's reforge
is about — is faithful.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..core.options import ResultSink, ThreadSafeResultSink
from ..core.postprocess import postprocess_results
from ..graph.adjacency import Graph
from .app_protocol import GThinkerApp
from .app_quasiclique import QuasiCliqueApp
from .config import EngineConfig
from .metrics import EngineMetrics, WorkerTiming
from .scheduler import (
    MachineState,
    SchedulerCore,
    ThreadSlot,
    build_machines,
    collect_machine_metrics,
)
from .task import Task
from .tracing import NullTracer, Tracer


@dataclass
class MiningRunResult:
    """Engine output: maximal results, raw candidates, run metrics."""

    maximal: set[frozenset[int]]
    candidates: set[frozenset[int]]
    metrics: EngineMetrics

    def __len__(self) -> int:
        return len(self.maximal)


class GThinkerEngine:
    """Run one mining job over the reforged runtime with real threads."""

    def __init__(
        self,
        graph: Graph,
        app: GThinkerApp,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
    ):
        self.graph = graph
        self.app = app
        self.config = config
        self.machines = build_machines(graph, config)
        self._active = 0
        self._active_lock = threading.Lock()
        self._peak_active = 0
        self._done = threading.Event()
        self.metrics = EngineMetrics()
        self._metrics_lock = threading.Lock()
        self._worker_error: BaseException | None = None
        self.core = SchedulerCore(
            app, config, self.machines, tracer,
            metrics=self.metrics,
            metrics_lock=self._metrics_lock,
            task_queued=self._task_born,
        )
        self.tracer = self.core.tracer

    # -- job-lifetime accounting -------------------------------------------

    def _task_born(self, task: Task) -> None:
        with self._active_lock:
            self._active += 1
            self._peak_active = max(self._peak_active, self._active)

    def _task_finished(self) -> None:
        with self._active_lock:
            self._active -= 1

    def _maybe_finish(self) -> None:
        if self.core.all_spawned():
            with self._active_lock:
                if self._active == 0:
                    self._done.set()

    # -- scheduler delegation (kept for white-box tests / callers) ---------

    def add_task(self, task: Task, machine: MachineState, slot: ThreadSlot) -> None:
        """Queue a task under the shared routing policy."""
        self.core.route(task, machine, slot)

    def _spawn_batch(self, machine: MachineState, slot: ThreadSlot) -> None:
        self.core.spawn_batch(machine, slot)

    def _apply_steals(self) -> None:
        self.core.apply_steals()

    # -- one scheduling step -----------------------------------------------

    def _step(self, machine: MachineState, slot: ThreadSlot, metrics: EngineMetrics) -> bool:
        """One scheduling step; True iff any work was performed."""
        task = self.core.pick(machine, slot)
        if task is None:
            return False
        result = self.core.run_quantum(task, machine, metrics.record_task, slot=slot)
        # Children first: the active counter must never dip to zero while
        # a finishing parent still has unrouted offspring.
        for child in result.children:
            self.core.route(child, machine, slot)
        if result.resumed is not None:
            self.core.buffer_ready(result.resumed, machine, slot)
        if result.finished:
            self._task_finished()
            self._maybe_finish()
        return True

    def _stealing_loop(self) -> None:
        while not self._done.wait(self.config.steal_period_seconds):
            self.core.apply_steals()

    # -- drivers -----------------------------------------------------------

    def run(self) -> MiningRunResult:
        """Execute the job; serial fast path when only one thread exists.

        `config.backend` can pin the driver: 'serial' and 'threaded'
        force one of the two in-process drivers; 'auto' keeps the
        historical rule (serial at 1×1). The 'process' and 'simulated'
        backends are different executors — use
        :func:`repro.gthinker.engine_mp.mine_multiprocess` /
        :func:`repro.gthinker.simulation.simulate_cluster` (or the
        dispatching front-end :func:`mine_parallel`).
        """
        backend = self.config.backend
        if backend in ("process", "simulated"):
            raise ValueError(
                f"GThinkerEngine only drives in-process threads; for "
                f"backend={backend!r} use "
                f"{'MultiprocessEngine' if backend == 'process' else 'SimulatedClusterEngine'}"
            )
        if backend == "serial" and self.config.total_threads != 1:
            raise ValueError(
                "backend='serial' drives a single machine×thread; lower "
                "num_machines/threads_per_machine to 1 or use 'threaded'"
            )
        start = time.perf_counter()
        if backend == "serial" or (backend == "auto" and self.config.total_threads == 1):
            self._run_serial()
        else:
            self._run_threaded()
        if self._worker_error is not None:
            for m in self.machines:
                m.cleanup()
            raise RuntimeError("a mining thread failed") from self._worker_error
        self.metrics.wall_seconds = time.perf_counter() - start
        self._collect_metrics()
        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        for m in self.machines:
            m.cleanup()
        return MiningRunResult(maximal=maximal, candidates=candidates, metrics=self.metrics)

    def _timing_key(self, machine: MachineState, slot: ThreadSlot) -> int:
        """Global thread index: the key of EngineMetrics.timing rows."""
        return machine.machine_id * self.config.threads_per_machine + slot.slot_id

    def _run_serial(self) -> None:
        machine = self.machines[0]
        slot = machine.threads[0]
        local = EngineMetrics()
        timing = WorkerTiming()
        t_start = time.perf_counter()
        while True:
            t0 = time.perf_counter()
            worked = self._step(machine, slot, local)
            dt = time.perf_counter() - t0
            if worked:
                timing.mine_seconds += dt
            else:
                timing.idle_seconds += dt
                self._maybe_finish()
                if self._done.is_set():
                    break
        timing.wall_seconds = time.perf_counter() - t_start
        local.timing[self._timing_key(machine, slot)] = timing
        with self._metrics_lock:
            self.metrics.merge(local)

    def _run_threaded(self) -> None:
        def worker(machine: MachineState, slot: ThreadSlot) -> None:
            local = EngineMetrics()
            timing = WorkerTiming()
            idle_spins = 0
            t_start = time.perf_counter()
            try:
                while not self._done.is_set():
                    t0 = time.perf_counter()
                    worked = self._step(machine, slot, local)
                    dt = time.perf_counter() - t0
                    if worked:
                        timing.mine_seconds += dt
                        idle_spins = 0
                        continue
                    timing.idle_seconds += dt
                    idle_spins += 1
                    self._maybe_finish()
                    t0 = time.perf_counter()
                    time.sleep(min(0.002, 0.0001 * idle_spins))
                    timing.idle_seconds += time.perf_counter() - t0
            except BaseException as exc:  # noqa: BLE001 - repropagated in run()
                # A dead worker with queued work would hang the job on
                # the active counter; record the failure and stop the
                # whole job so run() can re-raise it loudly.
                with self._metrics_lock:
                    if self._worker_error is None:
                        self._worker_error = exc
                self._done.set()
            finally:
                timing.wall_seconds = time.perf_counter() - t_start
                local.timing[self._timing_key(machine, slot)] = timing
                with self._metrics_lock:
                    self.metrics.merge(local)

        threads: list[threading.Thread] = []
        for machine in self.machines:
            for slot in machine.threads:
                t = threading.Thread(target=worker, args=(machine, slot), daemon=True)
                threads.append(t)
        stealer = None
        if self.config.use_stealing and self.config.num_machines > 1:
            stealer = threading.Thread(target=self._stealing_loop, daemon=True)
            stealer.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if stealer is not None:
            stealer.join()

    def _collect_metrics(self) -> None:
        collect_machine_metrics(self.metrics, self.machines)
        self.metrics.peak_pending_tasks = self._peak_active
        self.metrics.mining_stats.merge(self.app.stats)


def mine_parallel(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig | None = None,
    options=None,
    tracer: Tracer | NullTracer | None = None,
) -> MiningRunResult:
    """Convenience front-end: mine `graph` on the reforged engine.

    Dispatches on ``config.backend``: the in-process drivers run here;
    ``backend='process'`` delegates to
    :func:`repro.gthinker.engine_mp.mine_multiprocess` so one call site
    can select any executor from configuration alone.
    """
    from ..core.options import DEFAULT_OPTIONS

    config = config or EngineConfig()
    if config.backend == "process":
        from .engine_mp import mine_multiprocess

        return mine_multiprocess(
            graph, gamma, min_size, config, options=options, tracer=tracer
        )
    if config.backend == "cluster":
        from .cluster import mine_cluster

        return mine_cluster(
            graph, gamma, min_size, config, options=options, tracer=tracer
        )
    sink: ResultSink = ThreadSafeResultSink() if config.total_threads > 1 else ResultSink()
    app = QuasiCliqueApp(
        gamma=gamma,
        min_size=min_size,
        sink=sink,
        options=options or DEFAULT_OPTIONS,
    )
    return GThinkerEngine(graph, app, config, tracer=tracer).run()
