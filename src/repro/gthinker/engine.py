"""The reforged G-thinker engine (paper Section 5, Figure 8).

An in-process reproduction of the distributed runtime: M machines each
with T mining threads, a hash-partitioned vertex table, a remote vertex
cache, per-thread local task queues, a shared per-machine global
big-task queue, disk spilling (L_small / L_big), and master-coordinated
big-task stealing across machines.

Scheduling policy (the reforge):

1. *push* — keep data-ready tasks flowing: a thread first takes a big
   task from B_global, else a task from its B_local, and runs one
   compute iteration; continuing tasks have their pulls resolved and
   re-enter the ready buffers.
2. *pop*  — else it pops from the machine's Q_global (try-lock; refill
   a batch from L_big when low), else from its own Q_local (refill from
   L_small, then drain B_local, then spawn new tasks from the local
   vertex table — stopping as soon as a spawned task is big).

Pull resolution is synchronous in-process (the data-serving module's
latency collapses to zero) but ownership, caching, and message counts
are preserved, so the *scheduling* behaviour — what the paper's reforge
is about — is faithful.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..core.options import ResultSink, ThreadSafeResultSink
from ..core.postprocess import postprocess_results
from ..graph.adjacency import Graph
from .app_quasiclique import ComputeContext, QuasiCliqueApp
from .config import EngineConfig
from .metrics import EngineMetrics, TaskRecord
from .spill import SpillableQueue, SpillFileList
from .stealing import plan_steals
from .task import Task
from .tracing import NullTracer, Tracer
from .vertex_store import DataService, LocalVertexTable, RemoteVertexCache


@dataclass
class MiningRunResult:
    """Engine output: maximal results, raw candidates, run metrics."""

    maximal: set[frozenset[int]]
    candidates: set[frozenset[int]]
    metrics: EngineMetrics

    def __len__(self) -> int:
        return len(self.maximal)


class ThreadSlot:
    """Per-mining-thread state: its local queue and ready buffer."""

    def __init__(self, config: EngineConfig, lsmall: SpillFileList):
        self.qlocal = SpillableQueue(config.queue_capacity, config.batch_size, lsmall)
        self.blocal: deque[Task] = deque()


class MachineState:
    """One simulated machine: vertex table slice, queues, spawn cursor."""

    def __init__(
        self,
        machine_id: int,
        tables: list[LocalVertexTable],
        config: EngineConfig,
    ):
        self.machine_id = machine_id
        self.config = config
        self.table = tables[machine_id]
        self.cache = RemoteVertexCache(config.cache_capacity)
        self.data = DataService(
            machine_id, tables, self.cache,
            partitioner=getattr(tables[machine_id], "partitioner", None),
        )
        self.lsmall = SpillFileList(config.spill_dir, f"m{machine_id}-small")
        self.lbig = SpillFileList(config.spill_dir, f"m{machine_id}-big")
        self.qglobal = SpillableQueue(config.queue_capacity, config.batch_size, self.lbig)
        self.bglobal: deque[Task] = deque()
        self.bglobal_lock = threading.Lock()
        self.threads = [
            ThreadSlot(config, self.lsmall) for _ in range(config.threads_per_machine)
        ]
        self.spawn_order = self.table.vertices_sorted()
        self.spawn_pos = 0
        self.spawn_lock = threading.Lock()

    def spawn_exhausted(self) -> bool:
        with self.spawn_lock:
            return self.spawn_pos >= len(self.spawn_order)

    def next_spawn_vertices(self, count: int) -> list[int]:
        with self.spawn_lock:
            chunk = self.spawn_order[self.spawn_pos : self.spawn_pos + count]
            self.spawn_pos += len(chunk)
            return chunk

    def pop_bglobal(self) -> Task | None:
        with self.bglobal_lock:
            return self.bglobal.popleft() if self.bglobal else None

    def push_bglobal(self, task: Task) -> None:
        with self.bglobal_lock:
            self.bglobal.append(task)

    def pending_big(self) -> int:
        with self.bglobal_lock:
            ready = len(self.bglobal)
        return ready + self.qglobal.pending_estimate()

    def cleanup(self) -> None:
        self.lsmall.cleanup()
        self.lbig.cleanup()


class GThinkerEngine:
    """Run one quasi-clique mining job over the reforged runtime."""

    def __init__(
        self,
        graph: Graph,
        app: QuasiCliqueApp,
        config: EngineConfig,
        tracer: "Tracer | NullTracer | None" = None,
    ):
        self.graph = graph
        self.app = app
        self.config = config
        # `is not None`, not truthiness: an empty Tracer is falsy (len 0).
        self.tracer = tracer if tracer is not None else NullTracer()
        from .partition import make_partitioner

        partitioner = (
            None
            if config.partition == "hash"
            else make_partitioner(config.partition, graph, config.num_machines)
        )
        tables = LocalVertexTable.partition(
            graph, config.num_machines, partitioner=partitioner
        )
        self.machines = [MachineState(m, tables, config) for m in range(config.num_machines)]
        self._task_ids = itertools.count()
        self._task_id_lock = threading.Lock()
        self._active = 0
        self._active_lock = threading.Lock()
        self._peak_active = 0
        self._done = threading.Event()
        self.metrics = EngineMetrics()
        self._metrics_lock = threading.Lock()
        self._worker_error: BaseException | None = None

    # -- shared counters ---------------------------------------------------

    def _next_task_id(self) -> int:
        with self._task_id_lock:
            return next(self._task_ids)

    def _task_born(self) -> None:
        with self._active_lock:
            self._active += 1
            self._peak_active = max(self._peak_active, self._active)

    def _task_finished(self) -> None:
        with self._active_lock:
            self._active -= 1

    def _all_spawned(self) -> bool:
        return all(m.spawn_exhausted() for m in self.machines)

    def _maybe_finish(self) -> None:
        if self._all_spawned():
            with self._active_lock:
                if self._active == 0:
                    self._done.set()

    # -- task routing --------------------------------------------------------

    def add_task(self, task: Task, machine: MachineState, slot: ThreadSlot) -> None:
        """Queue a task: big → machine's global queue, small → the thread's."""
        self._task_born()
        if self.config.use_global_queue and task.is_big(self.config.tau_split):
            machine.qglobal.push(task)
            self.tracer.emit("route_global", task.task_id, machine.machine_id)
        else:
            slot.qlocal.push(task)
            self.tracer.emit("route_local", task.task_id, machine.machine_id)

    # -- one scheduling step ---------------------------------------------------

    def _execute(
        self, task: Task, machine: MachineState, slot: ThreadSlot, metrics: EngineMetrics
    ) -> None:
        """Run compute iterations until the task finishes or re-enters a buffer."""

        def record(rec: TaskRecord) -> None:
            metrics.record_task(rec)

        ctx = ComputeContext(config=self.config, next_task_id=self._next_task_id, record=record)
        while True:
            if task.pulls:
                frontier = machine.data.resolve(task.pulls)
                task.pulls = []
            else:
                frontier = {}
            self.tracer.emit("execute", task.task_id, machine.machine_id)
            outcome = self.app.compute(task, frontier, ctx)
            if outcome.new_tasks:
                self.tracer.emit(
                    "decompose", task.task_id, machine.machine_id,
                    detail=f"children={len(outcome.new_tasks)}",
                )
            for new_task in outcome.new_tasks:
                self.add_task(new_task, machine, slot)
            if outcome.finished:
                self.tracer.emit("finish", task.task_id, machine.machine_id)
                self._task_finished()
                self._maybe_finish()
                return
            if task.pulls:
                # Suspend-for-data point: resolve next round through the
                # ready buffers to preserve big-task priority.
                if self.config.use_global_queue and task.is_big(self.config.tau_split):
                    machine.push_bglobal(task)
                    self.tracer.emit("ready_global", task.task_id, machine.machine_id)
                else:
                    slot.blocal.append(task)
                    self.tracer.emit("ready_local", task.task_id, machine.machine_id)
                return
            # No pulls pending (e.g. iteration 2 → 3): continue inline,
            # mirroring G-thinker scheduling the next iteration right away.

    def _refill_qlocal(self, machine: MachineState, slot: ThreadSlot) -> None:
        """Refill priority: L_small, then B_local, then spawn new tasks."""
        if slot.qlocal.refill_from_spill():
            return
        if slot.blocal:
            while slot.blocal and len(slot.qlocal) < self.config.batch_size:
                slot.qlocal.push(slot.blocal.popleft())
            return
        self._spawn_batch(machine, slot)

    def _spawn_batch(self, machine: MachineState, slot: ThreadSlot) -> None:
        """Spawn up to one batch of tasks; stop early once one is big.

        Vertices are taken from the cursor one at a time so the early
        stop (the paper's guard against flooding the global queue with
        big tasks) never skips a vertex.
        """
        spawned = 0
        while spawned < self.config.batch_size:
            vertices = machine.next_spawn_vertices(1)
            if not vertices:
                return
            v = vertices[0]
            adjacency = machine.table.get(v)
            assert adjacency is not None
            task = self.app.spawn(v, adjacency, self._next_task_id())
            if task is None:
                continue
            with self._metrics_lock:
                self.metrics.tasks_spawned += 1
            self.tracer.emit("spawn", task.task_id, machine.machine_id, detail=f"root={v}")
            self.add_task(task, machine, slot)
            spawned += 1
            if self.config.use_global_queue and task.is_big(self.config.tau_split):
                return

    def _step(self, machine: MachineState, slot: ThreadSlot, metrics: EngineMetrics) -> bool:
        """One scheduling step; True iff any work was performed."""
        # Phase 1 (push): data-ready tasks, big ones first.
        task = machine.pop_bglobal() if self.config.use_global_queue else None
        if task is None and slot.blocal:
            task = slot.blocal.popleft()
        if task is not None:
            self._execute(task, machine, slot, metrics)
            return True
        # Phase 2 (pop): global queue first (try-lock), then local.
        if self.config.use_global_queue:
            if machine.qglobal.needs_refill():
                machine.qglobal.refill_from_spill()
            acquired, task = machine.qglobal.try_pop()
            if not acquired:
                task = None
            elif task is not None:
                self.tracer.emit("pop_global", task.task_id, machine.machine_id)
        if task is None:
            if slot.qlocal.needs_refill():
                self._refill_qlocal(machine, slot)
            task = slot.qlocal.pop()
            if task is not None:
                self.tracer.emit("pop_local", task.task_id, machine.machine_id)
        if task is None:
            return False
        self._execute(task, machine, slot, metrics)
        return True

    # -- stealing ------------------------------------------------------------

    def _apply_steals(self) -> None:
        counts = [m.pending_big() for m in self.machines]
        moves = plan_steals(counts, self.config.batch_size)
        for move in moves:
            batch = self.machines[move.src].qglobal.pop_batch(move.count)
            if not batch:
                continue
            self.machines[move.dst].qglobal.push_batch(batch)
            for stolen in batch:
                self.tracer.emit(
                    "steal", stolen.task_id, move.dst,
                    detail=f"from=m{move.src}",
                )
            with self._metrics_lock:
                self.metrics.steals += 1
                self.metrics.stolen_tasks += len(batch)

    def _stealing_loop(self) -> None:
        while not self._done.wait(self.config.steal_period_seconds):
            self._apply_steals()

    # -- drivers ----------------------------------------------------------------

    def run(self) -> MiningRunResult:
        """Execute the job; serial fast path when only one thread exists."""
        start = time.perf_counter()
        if self.config.total_threads == 1:
            self._run_serial()
        else:
            self._run_threaded()
        if self._worker_error is not None:
            for m in self.machines:
                m.cleanup()
            raise RuntimeError("a mining thread failed") from self._worker_error
        self.metrics.wall_seconds = time.perf_counter() - start
        self._collect_metrics()
        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        for m in self.machines:
            m.cleanup()
        return MiningRunResult(maximal=maximal, candidates=candidates, metrics=self.metrics)

    def _run_serial(self) -> None:
        machine = self.machines[0]
        slot = machine.threads[0]
        local = EngineMetrics()
        while True:
            if not self._step(machine, slot, local):
                self._maybe_finish()
                if self._done.is_set():
                    break
        with self._metrics_lock:
            self.metrics.merge(local)

    def _run_threaded(self) -> None:
        def worker(machine: MachineState, slot: ThreadSlot) -> None:
            local = EngineMetrics()
            idle_spins = 0
            try:
                while not self._done.is_set():
                    if self._step(machine, slot, local):
                        idle_spins = 0
                        continue
                    idle_spins += 1
                    self._maybe_finish()
                    time.sleep(min(0.002, 0.0001 * idle_spins))
            except BaseException as exc:  # noqa: BLE001 - repropagated in run()
                # A dead worker with queued work would hang the job on
                # the active counter; record the failure and stop the
                # whole job so run() can re-raise it loudly.
                with self._metrics_lock:
                    if self._worker_error is None:
                        self._worker_error = exc
                self._done.set()
            finally:
                with self._metrics_lock:
                    self.metrics.merge(local)

        threads: list[threading.Thread] = []
        for machine in self.machines:
            for slot in machine.threads:
                t = threading.Thread(target=worker, args=(machine, slot), daemon=True)
                threads.append(t)
        stealer = None
        if self.config.use_stealing and self.config.num_machines > 1:
            stealer = threading.Thread(target=self._stealing_loop, daemon=True)
            stealer.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if stealer is not None:
            stealer.join()

    def _collect_metrics(self) -> None:
        m = self.metrics
        for machine in self.machines:
            m.remote_messages += machine.data.remote_messages
            m.cache_hits += machine.cache.hits
            m.cache_misses += machine.cache.misses
            for spill in (machine.lsmall, machine.lbig):
                m.spill_batches += spill.batches_spilled
                m.spill_bytes += spill.bytes_written
                m.spill_bytes_peak = max(m.spill_bytes_peak, spill.bytes_peak)
        m.peak_pending_tasks = self._peak_active
        m.mining_stats.merge(self.app.stats)


def mine_parallel(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig | None = None,
    options=None,
) -> MiningRunResult:
    """Convenience front-end: mine `graph` on the reforged engine."""
    from ..core.options import DEFAULT_OPTIONS

    config = config or EngineConfig()
    sink: ResultSink = ThreadSafeResultSink() if config.total_threads > 1 else ResultSink()
    app = QuasiCliqueApp(
        gamma=gamma,
        min_size=min_size,
        sink=sink,
        options=options or DEFAULT_OPTIONS,
    )
    return GThinkerEngine(graph, app, config).run()
