"""Steppable reactors: the cluster's coordination logic, transport-free.

The distributed control flow of the cluster runtime lives here as two
*reactors* — pure state machines advanced by explicit ``on_message`` /
``on_tick`` / ``mine_step`` transitions over :class:`~repro.gthinker.
runtime.Channel` objects. Neither class owns a socket, a thread, a
queue, or a wall clock: every transition receives ``now`` from its
driver, and the only timers a reactor keeps are deadlines derived from
those ``now`` values.

Two drivers advance the same reactors:

* the real TCP runtime (:class:`~.master.ClusterMaster` /
  :class:`~.worker.ClusterWorker`) — accept/reader threads feed
  ``on_message`` from framed sockets and a run loop supplies
  ``time.monotonic()`` ticks;
* the deterministic simulation (:mod:`repro.gthinker.sim`) — a
  single-threaded event heap feeds the same transitions on a virtual
  clock, so every schedule the simulator explores is a schedule the
  shipping coordination code could really execute.

That the simulated code *is* the shipping code — not a model of it —
is the point of the split: a seed that breaks the simulation replays a
real coordination bug.

Failure semantics are channel-mediated exactly as before the split: a
send to a gone peer raises :class:`~repro.gthinker.runtime.
ChannelClosed` (the master reactor absorbs it into
:meth:`MasterReactor.fail_worker`; the worker reactor lets it
propagate — a worker that cannot reach its master is dead by
definition), and a received ``None`` means the peer's era is over.
"""

from __future__ import annotations

import itertools
import pickle
import warnings
from dataclasses import dataclass, replace
from typing import Any, Callable

from ..app_protocol import ensure_app
from ..config import EngineConfig
from ..engine import MiningRunResult
from ..metrics import EngineMetrics, WorkerTiming
from ..obs.progress import ProgressSnapshot, progress_detail
from ..obs.spans import emit_span
from ..partition import make_partitioner
from ..runtime import (
    Channel,
    ChannelClosed,
    ResultFolder,
    RetryPolicy,
    WorkLedger,
    WorkerRegistry,
    WorkerSlot,
    reclaim_lease,
)
from ..scheduler import (
    MachineState,
    SchedulerCore,
    build_machines,
    collect_machine_metrics,
)
from ..stealing import plan_steals
from ..task import Task
from ..tracing import NullTracer, Tracer
from ..vertex_store import LocalVertexTable, RemoteGraphAccess, RemoteVertexCache
from .protocol import (
    Goodbye,
    Heartbeat,
    Hello,
    ProgressReport,
    ResultBatch,
    Shutdown,
    SpawnRange,
    StatusReply,
    StatusRequest,
    StealGrant,
    StealRequest,
    TaskBatch,
    VertexReply,
    VertexRequest,
    Welcome,
)

__all__ = ["MasterReactor", "WorkerReactor", "_ClusterSlot", "_WorkUnit"]

#: Auto chunking target: about this many spawn-range units per worker.
_UNITS_PER_WORKER = 8
#: Send a ProgressReport every this many heartbeats (worker side).
_PROGRESS_EVERY = 4


@dataclass
class _WorkUnit:
    """One leasable unit: a spawn-vertex chunk or an encoded-task batch.

    Dispatch counting lives in the master's :class:`WorkLedger` (keyed
    by ``work_id``, sized by ``size``), not on the unit itself.
    """

    work_id: int
    kind: str  # 'range' | 'batch'
    payload: tuple  # vertices (range) or Task.encode() blobs (batch)
    origin: str = "spawn"  # 'spawn' | 'remainder' | 'steal'
    #: Partition whose worker owns this unit's vertices (range units
    #: only). Dispatch *prefers* the home worker — its spawns read the
    #: local vertex table instead of fetching — but any worker may take
    #: the unit when the home worker is busy or dead.
    home: int | None = None

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class _ClusterSlot(WorkerSlot):
    """Master-side worker slot plus the cluster-only wiring fields."""

    hello: Hello | None = None
    stealing_from: bool = False  # a StealRequest is outstanding


class MasterReactor:
    """Coordinator state machine of one distributed mining job.

    Owns the three global decisions (the work ledger, big-task steal
    coordination, failure recovery) plus result folding — everything
    the old ``ClusterMaster`` decided, minus its sockets and threads.
    The driver is responsible for (a) feeding every received message to
    :meth:`on_message`, (b) calling :meth:`on_tick` often enough that
    heartbeat timeouts, retry backoffs, and steal periods fire (any
    cadence at or below ``config.heartbeat_period`` is safe), and
    (c) running the shutdown handshake once :attr:`done` turns true.
    """

    def __init__(
        self,
        graph: Any,
        app: Any,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
        num_workers: int | None = None,
        on_progress: Callable[[ProgressSnapshot], None] | None = None,
    ):
        self.graph = graph
        self.app = ensure_app(app)
        self.config = config
        self.tracer = tracer if tracer is not None else NullTracer()
        self.on_progress = on_progress
        self.num_workers = num_workers or config.resolved_num_procs
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        try:
            self._app_blob = pickle.dumps(app, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"the cluster backend ships the app to every worker, but "
                f"{type(app).__name__} is not picklable: {exc}. Keep engine "
                f"apps free of locks, open files, and lambdas."
            ) from exc
        #: Per-partition Welcome payloads ({vertex: adjacency} pickles),
        #: built lazily per partition and cached for rejoining workers.
        self._partition_blobs: dict[int, bytes] = {}
        self._parts: list[list[int]] | None = None
        self.metrics = EngineMetrics()
        self.progress: dict[int, ProgressReport] = {}
        self.quarantined: list[_WorkUnit] = []
        # -- the shared coordination control plane -------------------------
        self.ledger: WorkLedger[_WorkUnit] = WorkLedger(
            config.max_attempts,
            key=lambda unit: unit.work_id,
            size=lambda unit: unit.size,
            lease_window=config.lease_window,
        )
        self.registry = WorkerRegistry(metrics=self.metrics, tracer=self.tracer)
        self._retries: RetryPolicy[_WorkUnit] = RetryPolicy(config.retry_backoff)
        self._folder = ResultFolder(
            self.app.sink, self.ledger, metrics=self.metrics, tracer=self.tracer
        )
        self._pending: list[_WorkUnit] = []
        self._work_ids = itertools.count()
        self._steal_ids = itertools.count()
        self._pending_steals: dict[int, tuple[int, int, int]] = {}
        #: Stale StealGrants absorbed (voided request ids: the donor died
        #: between planning and the grant's arrival, or a duplicated
        #: grant frame). Their payload is re-pended — the blobs may be
        #: the only copy of their tasks — and this counter keeps the
        #: decision observable to tests and the simulator.
        self.stale_steal_grants = 0
        self._by_channel: dict[Channel, _ClusterSlot] = {}
        # -- timers (all derived from driver-supplied `now` values) --------
        self._run_start = 0.0
        self._next_steal: float | None = None
        self._last_progress: float | None = None
        self._registered_any = False
        self.shutdown_started = False

    # -- lifecycle ---------------------------------------------------------

    def start_work(self, now: float) -> None:
        """Anchor the run clock and cut the spawn range into work units."""
        self._run_start = now
        self._next_steal = now + self.config.steal_period_seconds
        self._last_progress = now
        self._build_work()

    @property
    def done(self) -> bool:
        """True once no unit is pending, leased, or awaiting retry — and
        no steal request is outstanding.

        The steal clause is load-bearing: a granted batch physically
        leaves the donor's queues before the grant reaches the master,
        so the donor can drain and ack every lease while the stolen
        tasks exist only inside an in-flight ``StealGrant``. Declaring
        the job finished in that window would orphan them. An
        outstanding request always resolves: the donor either answers
        it (grant arrives, entry cleared) or dies (entry voided by
        :meth:`fail_worker`, tasks covered by its reclaimed leases).
        """
        return not (
            self._pending or self.ledger or self._retries
            or self._pending_steals
        )

    # -- the work ledger ---------------------------------------------------

    def _build_work(self) -> None:
        """Cut the spawn-vertex range into leasable chunks.

        The job's partition strategy decides which worker *should* own
        which vertices; chunks of the per-worker parts are interleaved
        so that with fewer live workers than expected the load still
        spreads.
        """
        parts = self._partitioned()
        n_vertices = sum(len(p) for p in parts)
        chunk = self.config.cluster_chunk_size or max(
            1, -(-n_vertices // (self.num_workers * _UNITS_PER_WORKER))
        )
        chunked = [
            [(pid, part[i: i + chunk]) for i in range(0, len(part), chunk)]
            for pid, part in enumerate(parts)
        ]
        for round_ in itertools.zip_longest(*chunked):
            for item in round_:
                if item and item[1]:
                    pid, vertices = item
                    self._pending.append(
                        _WorkUnit(
                            work_id=next(self._work_ids),
                            kind="range",
                            payload=tuple(vertices),
                            home=pid,
                        )
                    )

    def _partitioned(self) -> list[list[int]]:
        """The job's per-partition vertex lists (computed once; both the
        work units and the Welcome vertex tables cut along them)."""
        if self._parts is None:
            self._parts = make_partitioner(
                self.config.partition, self.graph, self.num_workers
            ).parts()
        return self._parts

    def _partition_blob(self, partition_id: int) -> bytes:
        blob = self._partition_blobs.get(partition_id)
        if blob is None:
            graph = self.graph
            entries = {
                v: tuple(graph.neighbors(v))
                for v in self._partitioned()[partition_id]
            }
            blob = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
            self._partition_blobs[partition_id] = blob
        return blob

    def _alive(self) -> list[_ClusterSlot]:
        return self.registry.alive()  # type: ignore[return-value]

    def _pump(self, now: float) -> None:
        """Lease pending units to workers with open window slots."""
        while self._pending:
            targets = sorted(
                (w for w in self._alive() if self.ledger.has_window(w.worker_id)),
                key=lambda w: (self.ledger.open_count(w.worker_id), w.worker_id),
            )
            if not targets:
                return
            progressed = False
            for worker in targets:
                if not self._pending:
                    return
                # A send failure inside _lease fails that worker and
                # re-pends its units, so re-check before each grant: the
                # sorted snapshot may hold a worker that just died.
                if not worker.alive or not self.ledger.has_window(
                    worker.worker_id
                ):
                    continue
                self._lease(self._take_pending(worker), worker, now)
                progressed = True
            if not progressed:
                return

    def _take_pending(self, worker: _ClusterSlot) -> _WorkUnit:
        """Pop the best pending unit for `worker`: a unit homed on its
        partition first (spawns hit the local vertex table), else the
        oldest unit — locality is a preference, never a stall."""
        home = worker.worker_id % self.num_workers
        for i, unit in enumerate(self._pending):
            if unit.home == home:
                return self._pending.pop(i)
        return self._pending.pop(0)

    def _lease(
        self,
        unit: _WorkUnit,
        worker: _ClusterSlot,
        now: float,
        enforce_window: bool = True,
    ) -> None:
        self.ledger.grant(
            unit.work_id, worker.worker_id, [unit], now,
            self.config.lease_timeout(unit.size),
            enforce_window=enforce_window,
        )
        if unit.kind == "range":
            msg: Any = SpawnRange(work_id=unit.work_id, vertices=unit.payload)
        else:
            msg = TaskBatch(
                work_id=unit.work_id, tasks=unit.payload, origin=unit.origin
            )
        self._send(worker, msg, now)

    def _send(self, worker: _ClusterSlot, message: Any, now: float) -> None:
        try:
            worker.channel.send(message)
        except ChannelClosed:
            self.fail_worker(worker, "send failed (connection lost)", now)

    # -- failure recovery --------------------------------------------------

    def fail_worker(self, worker: _ClusterSlot, reason: str, now: float) -> None:
        if not self.registry.fail(worker, reason):
            return  # already dead
        # Steal requests this worker was *donating* for are void: the
        # grant will never arrive (its channel is gone), and the granted
        # tasks — if any left its queues — are covered by the leases
        # reclaimed below. Requests where it was only the *recipient*
        # stay outstanding: the donor is alive and its grant is coming;
        # dropping that grant would lose tasks that exist nowhere else,
        # since the donor already evicted them and will ack its leases.
        self._pending_steals = {
            rid: (src, dst, n)
            for rid, (src, dst, n) in self._pending_steals.items()
            if src != worker.worker_id
        }
        for lease in self.ledger.leases_for(worker.worker_id):
            reclaim_lease(
                self.ledger, lease, self._retries, now,
                metrics=self.metrics, tracer=self.tracer,
                on_quarantine=self._on_quarantine,
            )

    def _on_quarantine(self, unit: _WorkUnit, attempts: int) -> None:
        self.quarantined.append(unit)

    def _check_heartbeats(self, now: float) -> None:
        for worker, reason in self.registry.stale(
            now, self.config.heartbeat_timeout
        ):
            self.fail_worker(worker, reason, now)

    def check_liveness(self, now: float) -> None:
        """Declare the job lost once the full expected complement has
        registered and then died; with stragglers still connecting, a
        late joiner may yet rescue the work."""
        self._registered_any = self._registered_any or (
            len(self.registry) >= self.num_workers
        )
        if self._registered_any and not self._alive() and not self.done:
            raise RuntimeError(
                f"all cluster workers died with work outstanding "
                f"({len(self._pending)} pending, "
                f"{len(self.ledger)} leased, "
                f"{len(self.quarantined)} quarantined)"
            )

    # -- stealing ----------------------------------------------------------

    def _plan_steals(self, now: float) -> None:
        alive = sorted(self._alive(), key=lambda w: w.worker_id)
        if len(alive) < 2 or not self.config.use_stealing:
            return
        counts = [w.pending_big for w in alive]
        for move in plan_steals(counts, self.config.batch_size):
            donor, recipient = alive[move.src], alive[move.dst]
            if donor.stealing_from:
                continue  # one outstanding request per donor
            self.metrics.steals_planned += 1
            self.tracer.emit(
                "steal_planned", -1, donor.worker_id,
                detail=f"dst=m{recipient.worker_id} count={move.count}",
            )
            request_id = next(self._steal_ids)
            self._pending_steals[request_id] = (
                donor.worker_id, recipient.worker_id, move.count
            )
            donor.stealing_from = True
            self._send(
                donor, StealRequest(request_id=request_id, count=move.count), now
            )

    def _handle_steal_grant(
        self, worker: _ClusterSlot, msg: StealGrant, now: float
    ) -> None:
        entry = self._pending_steals.pop(msg.request_id, None)
        worker.stealing_from = False
        if entry is None:
            # Voided (the donor died) or duplicated (frame-level, or the
            # donor answered a retransmitted request twice). The blobs
            # may still be the only copy of their tasks: the donor could
            # have acked the evicted units complete — releasing their
            # leases — before the grant landed, so dropping here loses
            # candidates. Re-pend instead; if another copy is mined too,
            # the folder's dedup makes the duplicate invisible.
            self.stale_steal_grants += 1
            if msg.tasks:
                self._pending.insert(0, _WorkUnit(
                    work_id=next(self._work_ids),
                    kind="batch",
                    payload=tuple(msg.tasks),
                    origin="stale-steal",
                ))
                self._pump(now)
            return
        _src, dst, _count = entry
        if not msg.tasks:
            return
        self.metrics.steals += 1
        self.metrics.stolen_tasks += len(msg.tasks)
        self.metrics.steals_sent += len(msg.tasks)
        if self.tracer.enabled:
            for blob in msg.tasks:
                self.tracer.emit(
                    "steal_sent", Task.decode(blob).task_id, worker.worker_id,
                    detail=f"dst=m{dst}",
                )
        unit = _WorkUnit(
            work_id=next(self._work_ids),
            kind="batch",
            payload=tuple(msg.tasks),
            origin="steal",
        )
        recipient = self.registry.get(dst)
        if recipient is not None and recipient.alive:
            # A stolen batch must land on its planned recipient even if
            # that briefly over-commits the window — that is what the
            # ledger's enforce_window escape hatch exists for.
            self._lease(unit, recipient, now, enforce_window=False)  # type: ignore[arg-type]
            self.metrics.steals_received += len(msg.tasks)
            if self.tracer.enabled:
                for blob in msg.tasks:
                    self.tracer.emit(
                        "steal_received", Task.decode(blob).task_id, dst,
                        detail=f"from=m{worker.worker_id}",
                    )
                    self.tracer.emit(
                        "steal", Task.decode(blob).task_id, dst,
                        detail=f"from=m{worker.worker_id}",
                    )
        else:
            # Recipient died while the grant was in flight: the batch is
            # ordinary pending work now.
            self._pending.insert(0, unit)
            self._pump(now)

    # -- live progress -----------------------------------------------------

    def status_snapshot(self, now: float) -> ProgressSnapshot:
        """One live-progress snapshot of the job, as the master sees it.

        ``tasks_pending``/``tasks_leased`` count master-side work units
        (spawn-range chunks and task batches); ``tasks_done`` is executed
        tasks as reported by worker ProgressReports.
        """
        return ProgressSnapshot(
            wall_seconds=now - self._run_start,
            tasks_pending=len(self._pending),
            tasks_leased=self.ledger.leased_task_count(),
            tasks_done=sum(p.tasks_executed for p in self.progress.values()),
            candidates=len(self.app.sink),
            workers_alive=len(self._alive()),
            workers_died=self.metrics.workers_died,
        )

    def progress_interval(self) -> float:
        """Seconds between progress emissions; 0 disables them."""
        if self.config.progress_interval:
            return self.config.progress_interval
        if self.on_progress is not None or self.tracer.enabled:
            return 1.0
        return 0.0

    def _emit_progress(self, now: float) -> None:
        snapshot = self.status_snapshot(now)
        self.tracer.emit("progress", -1, detail=progress_detail(snapshot))
        if self.on_progress is not None:
            self.on_progress(snapshot)

    def _reply_status(self, channel: Channel, now: float) -> None:
        s = self.status_snapshot(now)
        try:
            channel.send(
                StatusReply(
                    wall_seconds=s.wall_seconds,
                    tasks_pending=s.tasks_pending,
                    tasks_leased=s.tasks_leased,
                    tasks_done=s.tasks_done,
                    candidates=s.candidates,
                    workers_alive=s.workers_alive,
                    workers_died=s.workers_died,
                )
            )
        except ChannelClosed:
            channel.close()  # observer gone before the reply; no worker to fail

    # -- message handling --------------------------------------------------

    def on_message(self, channel: Channel, msg: Any, now: float) -> None:
        """Apply one received message (``None`` = the peer disconnected)."""
        worker = self._by_channel.get(channel)
        if msg is None:
            if worker is not None:
                self.fail_worker(worker, "connection closed", now)
            else:
                channel.close()
            return
        if isinstance(msg, Hello):
            self._register(channel, msg, now)
            return
        if isinstance(msg, StatusRequest):
            # Served for any connected peer — observers query progress
            # without registering as a worker.
            self._reply_status(channel, now)
            return
        if worker is None:
            warnings.warn(
                f"message {type(msg).__name__} from unregistered peer "
                f"{getattr(channel, 'peer', channel)}; dropping",
                RuntimeWarning,
            )
            return
        self.registry.heartbeat(worker, now)
        if isinstance(msg, Heartbeat):
            worker.pending_big = msg.pending_big
            worker.active = msg.active
        elif isinstance(msg, ProgressReport):
            self.progress[worker.worker_id] = msg
        elif isinstance(msg, ResultBatch):
            self._handle_results(worker, msg, now)
        elif isinstance(msg, VertexRequest):
            self._serve_vertices(worker, msg, now)
        elif isinstance(msg, StealGrant):
            self._handle_steal_grant(worker, msg, now)
        elif isinstance(msg, Goodbye):
            self._handle_goodbye(worker, msg)

    def _register(self, channel: Channel, hello: Hello, now: float) -> None:
        worker = self.registry.add(
            _ClusterSlot(
                worker_id=self.registry.new_id(),
                channel=channel,
                hello=hello,
                last_seen=now,
            )
        )
        self._by_channel[channel] = worker  # type: ignore[assignment]
        # Partition ids wrap, so a worker rejoining after a death (fresh
        # worker_id) inherits a partition that already exists — the
        # store never grows past num_workers partitions.
        partition_id = worker.worker_id % self.num_workers
        table_blob = None
        if hello.needs_graph:
            table_blob = self._partition_blob(partition_id)
        self._send(
            worker,  # type: ignore[arg-type]
            Welcome(
                worker_id=worker.worker_id,
                config=self.config,
                app_blob=self._app_blob,
                table_blob=table_blob,
                partition_id=partition_id,
                num_partitions=self.num_workers,
                partition_strategy=self.config.partition,
                trace=self.tracer.enabled,
            ),
            now,
        )
        self._pump(now)

    def _serve_vertices(
        self, worker: _ClusterSlot, msg: VertexRequest, now: float
    ) -> None:
        """Answer a worker's remote-adjacency fetch from the full graph.

        Stateless: a duplicated request frame is simply re-served (the
        worker drops the duplicate reply by request_id), and a vertex
        absent from the graph resolves to an empty adjacency tuple.
        """
        graph = self.graph
        entries = tuple(
            (v, tuple(graph.neighbors(v)) if graph.has_vertex(v) else ())
            for v in msg.vertices
        )
        self.tracer.emit(
            "vertex_served", -1, worker.worker_id,
            detail=f"request={msg.request_id} size={len(entries)}",
        )
        self._send(worker, VertexReply(request_id=msg.request_id, entries=entries), now)

    def _handle_results(
        self, worker: _ClusterSlot, msg: ResultBatch, now: float
    ) -> None:
        # Candidates are folded even from stale/dead senders: dedup makes
        # them idempotent, and dropping mined truth would be wasteful.
        self._folder.fold(msg.candidates)
        self._folder.forward_events(worker.worker_id, msg.events)
        worker.active = msg.active
        for blob in msg.remainders:
            self._pending.append(
                _WorkUnit(
                    work_id=next(self._work_ids),
                    kind="batch",
                    payload=(blob,),
                    origin="remainder",
                )
            )
        for work_id in msg.completed:
            # A stale ack (unit reclaimed, possibly re-leased elsewhere)
            # is dropped by the folder — at-least-once bookkeeping.
            self._folder.complete(work_id, worker_id=worker.worker_id)
        self._pump(now)

    def _handle_goodbye(self, worker: _ClusterSlot, msg: Goodbye) -> None:
        # A clean exit, not a death: no workers_died accounting, so this
        # deliberately bypasses registry.fail(). A Goodbye for a slot
        # already accounted dead (or a duplicated frame) is stale — its
        # metrics were either lost with the death or already merged.
        if not worker.alive:
            return
        self.metrics.merge(msg.metrics)
        worker.alive = False
        if worker.channel is not None:
            worker.channel.close()

    # -- housekeeping ------------------------------------------------------

    def on_tick(self, now: float) -> None:
        """One housekeeping pass: liveness, retries, dispatch, steals,
        progress. Drivers call this between message deliveries."""
        self._check_heartbeats(now)
        # Reclaimed units sit out their exponential backoff in the retry
        # policy's heap; only the tick moves them back to pending — an
        # idle survivor generates no result traffic, so the tick itself
        # must offer the work around.
        for unit, _attempts in self._retries.pop_due(now):
            self._pending.insert(0, unit)
        self._pump(now)
        progress_every = self.progress_interval()
        if (
            progress_every
            and self._last_progress is not None
            and now - self._last_progress >= progress_every
        ):
            self._emit_progress(now)
            self._last_progress = now
        if self._next_steal is not None and now >= self._next_steal:
            self._next_steal = now + self.config.steal_period_seconds
            self._plan_steals(now)
        self.check_liveness(now)

    # -- shutdown ----------------------------------------------------------

    def begin_shutdown(self, now: float) -> None:
        """Job done: ask every live worker to flush and say Goodbye."""
        self.shutdown_started = True
        for worker in self._alive():
            self._send(worker, Shutdown(), now)

    def awaiting_goodbye(self) -> list[_ClusterSlot]:
        return self._alive()

    def abandon_stragglers(self) -> None:
        """Give up on workers that never said Goodbye (metrics are lost)."""
        for worker in self._alive():
            warnings.warn(
                f"worker {worker.worker_id} never said Goodbye; its final "
                f"metrics are lost",
                RuntimeWarning,
            )
            worker.alive = False
            if worker.channel is not None:
                worker.channel.close()

    def close_channels(self) -> None:
        for worker in self.registry.slots():
            if worker.channel is not None:
                worker.channel.close()

    def finalize(self, wall_seconds: float) -> MiningRunResult:
        """Post-process the folded candidates into the standard result."""
        from ...core.postprocess import postprocess_results

        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        self.metrics.wall_seconds = wall_seconds
        return MiningRunResult(
            maximal=maximal, candidates=candidates, metrics=self.metrics
        )


class WorkerReactor:
    """Worker state machine: one leased mining process, transport-free.

    Drivers advance it with four calls: :meth:`hello` once the channel
    is up, :meth:`on_message` per received frame, :meth:`on_tick` for
    heartbeat/flush timing, and :meth:`mine_step` whenever there is
    time to mine (one pick → run-quantum per call). ``on_message``
    returns ``'ok'``, ``'stop'`` (Shutdown received — the driver calls
    :meth:`finish`), or ``'lost'`` (the master is gone).

    ``clock`` feeds only the worker-timing split and trace spans; on
    the real runtime it is ``time.perf_counter``-like, on the simulator
    it is the virtual clock, and no scheduling decision reads it.

    ``unit_hook`` is called with the completed-unit count every time a
    work unit arrives — the chaos kill switch on the real runtime
    (:class:`~repro.gthinker.chaos.FaultInjection` → ``die_hard``), and
    unused in simulation where faults live in the
    :class:`~repro.gthinker.sim.FaultPlan`.
    """

    def __init__(
        self,
        channel: Channel,
        graph: Any = None,
        *,
        pid: int = 0,
        host: str = "local",
        unit_hook: Callable[[int], None] | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.channel = channel
        self.graph = graph
        self._pid = pid
        self._host = host
        self._unit_hook = unit_hook
        self._clock = clock if clock is not None else _default_clock
        self.worker_id = -1
        self.metrics = EngineMetrics()
        self._active = 0
        self.completed_units = 0
        self._shipped: set[frozenset[int]] = set()
        self._remainders: list[bytes] = []
        self._open: dict[int, str] = {}  # work_id -> kind
        self._served_steals: set[int] = set()
        #: Remote-mode graph access (None on a warm start, where the
        #: full local graph answers every read).
        self.access: RemoteGraphAccess | None = None
        self._fetch_ids = itertools.count()
        #: request_id -> ('task', parked Task) | ('spawn', vertex tuple).
        self._pending_fetches: dict[int, tuple[str, Any]] = {}
        #: task_id -> pull tuple to unpin after the task's next quantum.
        self._unpin_after: dict[int, tuple[int, ...]] = {}
        self._trace_seq = -1
        self._pre_welcome: list[Any] = []
        self.started = False
        self.stopped = False
        # Set on Welcome:
        self.app: Any = None
        self.config: EngineConfig | None = None
        self.core: SchedulerCore | None = None
        self.machine: Any = None
        self.slot: Any = None
        self.tracer: Tracer | NullTracer = NullTracer()
        self._next_heartbeat = 0.0
        self._heartbeats_sent = 0
        self._run_start = 0.0
        self._mine_seconds = 0.0

    # -- handshake ---------------------------------------------------------

    def hello(self) -> None:
        self.channel.send(
            Hello(pid=self._pid, host=self._host, needs_graph=self.graph is None)
        )

    def _welcome(self, welcome: Welcome, now: float) -> None:
        if self.started:
            return  # a duplicated Welcome frame changes nothing
        self.worker_id = welcome.worker_id
        config = welcome.config
        app = pickle.loads(welcome.app_blob)
        spill_dir = config.spill_dir
        if spill_dir is not None:
            import os

            spill_dir = os.path.join(spill_dir, f"worker-{self.worker_id}")
        local_config = replace(
            config,
            num_machines=1,
            threads_per_machine=1,
            spill_dir=spill_dir,
        )
        self.app = app
        self.config = local_config
        if self.graph is not None:
            # Warm start: the operator pre-loaded the whole graph, so
            # every read is local and no vertex ever needs fetching.
            self.machine = build_machines(self.graph, local_config)[0]
        else:
            if welcome.table_blob is None:
                raise RuntimeError(
                    "master sent no vertex table and no local graph was "
                    "provided"
                )
            table = LocalVertexTable.from_entries(
                welcome.partition_id,
                welcome.num_partitions,
                pickle.loads(welcome.table_blob),
            )
            self.access = RemoteGraphAccess(
                table,
                RemoteVertexCache(local_config.cache_capacity),
                partition_id=welcome.partition_id,
                num_partitions=welcome.num_partitions,
                hash_partitioned=welcome.partition_strategy == "hash",
            )
            self.machine = MachineState(
                0, [table], local_config, data=self.access
            )
        # Spawning is master-driven (SpawnRange leases); the local spawn
        # cursor must never race it.
        self.machine.spawn_order = []
        self.slot = self.machine.threads[0]
        self.tracer = Tracer() if welcome.trace else NullTracer()
        self.core = SchedulerCore(
            app, local_config, [self.machine], self.tracer,
            task_queued=self._task_queued,
        )
        self.metrics = self.core.metrics
        self._next_heartbeat = now + config.heartbeat_period
        self._run_start = now
        self.started = True
        # Work the master raced ahead of the Welcome (possible only on
        # reordering transports) was parked; apply it in arrival order.
        parked, self._pre_welcome = self._pre_welcome, []
        for queued in parked:
            self.on_message(queued, now)

    def _task_queued(self, task: Task) -> None:
        self._active += 1

    # -- message handling --------------------------------------------------

    def on_message(self, msg: Any, now: float) -> str:
        """Apply one master frame; returns ``'ok' | 'stop' | 'lost'``."""
        if msg is None:
            self.stopped = True
            return "lost"
        if isinstance(msg, Welcome):
            self._welcome(msg, now)
            return "ok"
        if not self.started:
            # Anything overtaking the Welcome is parked until the reactor
            # has a scheduler to apply it to.
            self._pre_welcome.append(msg)
            return "ok"
        if isinstance(msg, Shutdown):
            return "stop"
        if isinstance(msg, (SpawnRange, TaskBatch)):
            if self._unit_hook is not None:
                self._unit_hook(self.completed_units)
            self._open[msg.work_id] = (
                "range" if isinstance(msg, SpawnRange) else "batch"
            )
            if isinstance(msg, SpawnRange):
                self._spawn_range(msg)
            else:
                for blob in msg.tasks:
                    task = Task.decode(blob)
                    task.task_id = self.core.next_task_id()
                    self.core.route(task, self.machine, self.slot)
        elif isinstance(msg, VertexReply):
            self._vertex_reply(msg)
        elif isinstance(msg, StealRequest):
            self._serve_steal(msg, now)
        # Heartbeat/ProgressReport never flow master -> worker; anything
        # else is ignored for forward compatibility.
        return "ok"

    def _spawn_range(self, msg: SpawnRange) -> None:
        missing: list[int] = []
        for v in msg.vertices:
            adjacency = self.machine.table.get(v)
            if adjacency is None and self.access is not None:
                # Not ours: a unit leased off its home partition. Serve
                # the spawn from the cache, or fetch the adjacency.
                if self.access.known_absent(v):
                    continue  # provably not a graph vertex
                adjacency = self.access.cached(v)
                if adjacency is None:
                    missing.append(v)
                    continue
            if adjacency is None:
                continue  # full table: not a graph vertex
            self._spawn_one(v, adjacency)
        if missing:
            self._request_vertices("spawn", tuple(missing))

    def _spawn_one(self, v: int, adjacency: Any) -> None:
        task = self.app.spawn(v, adjacency, self.core.next_task_id())
        if task is None:
            return
        self.metrics.tasks_spawned += 1
        self.core.tracer.emit("spawn", task.task_id, 0, detail=f"root={v}")
        self.core.route(task, self.machine, self.slot)

    # -- remote vertex fetching --------------------------------------------

    def _request_vertices(
        self, kind: str, vertices: tuple[int, ...], task: Task | None = None
    ) -> None:
        request_id = next(self._fetch_ids)
        self._pending_fetches[request_id] = (
            kind, task if kind == "task" else vertices
        )
        self.core.tracer.emit(
            "vertex_requested",
            -1 if task is None else task.task_id,
            0,
            detail=f"request={request_id} size={len(vertices)}",
        )
        self.channel.send(
            VertexRequest(
                worker_id=self.worker_id,
                request_id=request_id,
                vertices=vertices,
            )
        )

    def _vertex_reply(self, msg: VertexReply) -> None:
        entry = self._pending_fetches.pop(msg.request_id, None)
        if entry is None:
            # A duplicated reply frame: the first copy already admitted
            # these entries and woke the waiter; admitting again would
            # skew the fetch counters for no benefit.
            return
        kind, payload = entry
        if kind == "task":
            task: Task = payload
            # Pin on admission: the entries this task waited for must
            # survive later admissions until its quantum resolves them.
            self.access.admit(msg.entries, pin=True)
            still = self.access.unresolved(task.pulls)
            if still:
                # Unreachable when the reply covers the request (pins
                # forbid eviction in between); kept as a re-fetch rather
                # than an assert so a future protocol relaxation (partial
                # replies) degrades to an extra round trip.
                self._request_vertices("task", tuple(still), task=task)
                return
            self._unpin_after[task.task_id] = tuple(task.pulls)
            self.core.buffer_ready(task, self.machine, self.slot)
        else:
            self.access.admit(msg.entries)
            adjacency = dict(msg.entries)
            for v in payload:
                self._spawn_one(v, adjacency.get(v, ()))

    def _serve_steal(self, msg: StealRequest, now: float) -> None:
        """Give up to `count` big tasks from Q_global (+ its spill list)."""
        if msg.request_id in self._served_steals:
            # A duplicated request frame. Serving it again would evict a
            # second batch for a request the master considers answered —
            # the master re-pends such stale grants, but the eviction is
            # pure waste, so an answered id is simply ignored.
            return
        self._served_steals.add(msg.request_id)
        trace = self.tracer.enabled
        t0 = self._clock() if trace else 0.0
        granted: list[Task] = []
        while len(granted) < msg.count:
            batch = self.machine.qglobal.pop_batch(msg.count - len(granted))
            if not batch:
                if self.machine.qglobal.refill_from_spill() == 0:
                    break
                continue
            granted.extend(batch)
        self._active -= len(granted)
        if trace and granted:
            # Donor-side half of the move; the events forward to the
            # master's trace attributed machine=this worker.
            emit_span(
                self.tracer, "steal_transfer", t0, self._clock(),
                detail=f"granted={len(granted)} requested={msg.count}",
            )
        self.channel.send(
            StealGrant(
                request_id=msg.request_id,
                worker_id=self.worker_id,
                tasks=tuple(t.encode() for t in granted),
            )
        )

    # -- heartbeat / progress ----------------------------------------------

    @property
    def next_heartbeat(self) -> float:
        return self._next_heartbeat

    @property
    def active(self) -> int:
        return self._active

    def on_tick(self, now: float) -> None:
        """Send the heartbeat (and periodic flush/progress) when due."""
        if not self.started or self.stopped or now < self._next_heartbeat:
            return
        self._next_heartbeat = now + self.config.heartbeat_period
        self._heartbeats_sent += 1
        self.channel.send(
            Heartbeat(
                worker_id=self.worker_id,
                pending_big=self.machine.pending_big(),
                active=self._active,
            )
        )
        if self._fresh_candidates() or self._remainders:
            self.flush()
        if self._heartbeats_sent % _PROGRESS_EVERY == 0:
            self.channel.send(
                ProgressReport(
                    worker_id=self.worker_id,
                    tasks_executed=self.metrics.tasks_executed,
                    tasks_decomposed=self.metrics.tasks_decomposed,
                    candidates_emitted=len(self.app.sink.results()),
                )
            )

    # -- mining ------------------------------------------------------------

    def mine_step(self, now: float) -> float | None:
        """Run at most one scheduling quantum.

        Returns the quantum's abstract cost, or None when nothing was
        pickable (the driver decides whether to block, yield, or — in
        simulation — stop scheduling steps until new work arrives). An
        idle reactor with drained units flushes their acknowledgements
        as a side effect, exactly like the old inline loop.
        """
        if not self.started or self.stopped:
            return None
        task = self.core.pick(self.machine, self.slot)
        if task is None:
            if (
                self._active == 0
                and not self._pending_fetches
                and (self._open or self._remainders or self._fresh_candidates())
            ):
                self.flush(completed_all=True)
            return None
        if self.access is not None and task.pulls:
            fetch_missing = self.access.unresolved(task.pulls)
            if fetch_missing:
                # Park the task until its remote pulls arrive. Pin what
                # is already cached so a later admission cannot evict it
                # while we wait; the fetched rest pins on admit.
                self.access.pin(task.pulls)
                self._request_vertices("task", tuple(fetch_missing), task=task)
                return 1.0 + len(fetch_missing) * self.config.sim_message_cost
        t0 = self._clock()
        quantum = self.core.run_quantum(
            task, self.machine, record=self.metrics.record_task, slot=self.slot
        )
        self._mine_seconds += self._clock() - t0
        unpin = self._unpin_after.pop(task.task_id, None)
        if unpin is not None:
            self.access.unpin(unpin)
        for child in quantum.children:
            if child.is_big(self.config.tau_split):
                # Big remainders go back to the master for cluster-wide
                # redistribution.
                self._remainders.append(child.encode())
            else:
                self.core.route(child, self.machine, self.slot)
        if quantum.resumed is not None:
            self.core.buffer_ready(quantum.resumed, self.machine, self.slot)
        elif quantum.finished:
            self._active -= 1
        if len(self._remainders) >= self.config.batch_size:
            self.flush()
        return quantum.cost

    def has_work(self) -> bool:
        """True while tasks are accounted active on this worker."""
        return self.started and not self.stopped and self._active > 0

    # -- result shipping ---------------------------------------------------

    def _fresh_candidates(self) -> set[frozenset[int]]:
        return self.app.sink.results() - self._shipped

    def _new_events(self) -> tuple:
        if not self.tracer.enabled:
            return ()
        events = [e for e in self.tracer.events() if e.seq > self._trace_seq]
        if events:
            self._trace_seq = events[-1].seq
        return tuple((e.kind, e.task_id, e.thread, e.detail) for e in events)

    def flush(self, completed_all: bool = False) -> None:
        """Ship fresh candidates, remainders, trace events, and — when the
        local scheduler has drained — the acknowledgements of every open
        work unit, all in one atomic message."""
        completed: tuple[int, ...] = ()
        if (
            completed_all
            and self._active == 0
            and not self._pending_fetches
            and self._open
        ):
            completed = tuple(self._open)
            self.completed_units += len(completed)
            self._open.clear()
        fresh = self._fresh_candidates()
        self._shipped |= fresh
        remainders, self._remainders = tuple(self._remainders), []
        self.channel.send(
            ResultBatch(
                worker_id=self.worker_id,
                completed=completed,
                candidates=tuple(fresh),
                remainders=remainders,
                events=self._new_events(),
                active=self._active,
            )
        )

    # -- shutdown ----------------------------------------------------------

    def finish(self, now: float) -> None:
        """Shutdown received: final flush, metrics fold-up, Goodbye."""
        wall = now - self._run_start
        self.metrics.timing[self.worker_id] = WorkerTiming(
            wall_seconds=wall,
            mine_seconds=self._mine_seconds,
            idle_seconds=max(0.0, wall - self._mine_seconds),
        )
        self.flush(completed_all=True)
        collect_machine_metrics(self.metrics, [self.machine])
        self.metrics.mining_stats.merge(self.app.stats)
        self.channel.send(
            Goodbye(
                worker_id=self.worker_id,
                metrics=self.metrics,
                stats_blob=pickle.dumps(self.app.stats),
            )
        )
        self.stopped = True

    def cleanup(self) -> None:
        if self.machine is not None:
            self.machine.cleanup()


def _default_clock() -> float:
    import time

    return time.perf_counter()
