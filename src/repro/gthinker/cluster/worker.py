"""Cluster worker: one mining process driven by the TCP master.

A worker is the distributed twin of an `engine_mp` worker process, but
it owns a real local scheduler instead of receiving pre-picked batches:

* it registers with the master (`Hello` → `Welcome`), receiving the
  job's :class:`~repro.gthinker.config.EngineConfig`, the pickled
  application, and — unless it already has one — the graph;
* it builds a single-machine :class:`SchedulerCore` over a whole-graph
  vertex table and mines with the serial pick → run-quantum loop, so
  every scheduling rule (big-task routing, pick order, spilling,
  refill) is the same code as every other executor;
* the master leases it work units — `SpawnRange` chunks of the spawn
  vertex range and `TaskBatch` batches of encoded tasks (forwarded
  steal grants, re-leased remainders) — which it acknowledges once its
  local scheduler drains;
* **big decomposition remainders** are not routed locally: they are
  shipped back to the master for cluster-wide redistribution, exactly
  the paper's rule that big tasks must be globally visible;
* it serves `StealRequest`s by popping big tasks from its global queue
  (refilled from the L_big spill list), and sends `Heartbeat`s whose
  pending-big count is the master's stealing-planner input.

Death needs no protocol: a SIGKILLed worker simply stops heartbeating
and its socket EOFs; the master reclaims every work unit it still
leased. Candidates are flushed incrementally and deduplicated
master-side, so at-least-once re-mining never changes the result set.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import sys
import threading
import time
import traceback
from dataclasses import replace

from ..chaos import FaultInjection, die_hard
from ..metrics import WorkerTiming
from ..obs.spans import emit_span
from ..runtime import ChannelClosed, StreamChannel
from ..scheduler import SchedulerCore, build_machines, collect_machine_metrics
from ..task import Task
from ..tracing import NullTracer, Tracer
from .protocol import (
    Goodbye,
    Heartbeat,
    Hello,
    MessageStream,
    ProgressReport,
    ResultBatch,
    Shutdown,
    SpawnRange,
    StealGrant,
    StealRequest,
    TaskBatch,
    Welcome,
)

__all__ = ["ClusterWorker"]

#: Send a ProgressReport every this many heartbeats.
_PROGRESS_EVERY = 4


class ClusterWorker:
    """One socket-connected mining process of a cluster job."""

    def __init__(
        self,
        host: str,
        port: int,
        graph=None,
        fault_injection: FaultInjection | None = None,
        connect_timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.graph = graph
        self._injection = fault_injection
        self._connect_timeout = connect_timeout
        self.worker_id = -1
        self._active = 0
        self._completed_units = 0
        self._shipped: set[frozenset[int]] = set()
        self._remainders: list[bytes] = []
        self._open: dict[int, str] = {}  # work_id -> kind
        self._trace_seq = -1

    # -- wiring ------------------------------------------------------------

    def _connect(self) -> StreamChannel:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self._connect_timeout
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return StreamChannel(MessageStream(sock))

    def _task_queued(self, task: Task) -> None:
        self._active += 1

    # -- the mining loop ---------------------------------------------------

    def run(self) -> None:
        channel = self._connect()
        try:
            self._run(channel)
        except BaseException:
            # A crash here is a worker death by definition; the master
            # sees the EOF and reclaims. Leave a trace for the operator.
            traceback.print_exc(file=sys.stderr)
            raise
        finally:
            channel.close()

    def _run(self, stream: StreamChannel) -> None:
        stream.send(
            Hello(
                pid=os.getpid(),
                host=socket.gethostname(),
                needs_graph=self.graph is None,
            )
        )
        welcome = stream.recv()
        if not isinstance(welcome, Welcome):
            raise RuntimeError(
                f"expected Welcome from master, got {type(welcome).__name__}"
            )
        self.worker_id = welcome.worker_id
        config = welcome.config
        app = pickle.loads(welcome.app_blob)
        graph = self.graph
        if graph is None:
            if welcome.graph_blob is None:
                raise RuntimeError("master sent no graph and none was provided")
            graph = pickle.loads(welcome.graph_blob)

        spill_dir = config.spill_dir
        if spill_dir is not None:
            spill_dir = os.path.join(spill_dir, f"worker-{self.worker_id}")
        local_config = replace(
            config,
            num_machines=1,
            threads_per_machine=1,
            spill_dir=spill_dir,
        )
        machine = build_machines(graph, local_config)[0]
        # Spawning is master-driven (SpawnRange leases); the local spawn
        # cursor must never race it.
        machine.spawn_order = []
        slot = machine.threads[0]
        tracer = Tracer() if welcome.trace else NullTracer()
        core = SchedulerCore(
            app, local_config, [machine], tracer,
            task_queued=self._task_queued,
        )
        self.metrics = core.metrics

        inbox: queue.Queue = queue.Queue()

        def _read_loop() -> None:
            while True:
                try:
                    msg = stream.recv()
                except ChannelClosed as exc:  # torn frame or socket teardown
                    inbox.put(("lost", exc))
                    return
                inbox.put(("msg", msg))
                if msg is None:
                    return

        reader = threading.Thread(
            target=_read_loop, name=f"cluster-worker-{self.worker_id}-reader",
            daemon=True,
        )
        reader.start()

        period = config.heartbeat_period
        next_heartbeat = time.monotonic() + period
        heartbeats_sent = 0
        t_run_start = time.perf_counter()
        mine_seconds = 0.0
        try:
            while True:
                block = self._active == 0
                action = self._drain_inbox(
                    inbox, stream, app, core, machine, slot, config,
                    block_until=next_heartbeat if block else None,
                )
                if action == "stop":
                    wall = time.perf_counter() - t_run_start
                    self.metrics.timing[self.worker_id] = WorkerTiming(
                        wall_seconds=wall,
                        mine_seconds=mine_seconds,
                        idle_seconds=max(0.0, wall - mine_seconds),
                    )
                    self._flush(stream, app, tracer, completed_all=True)
                    collect_machine_metrics(self.metrics, [machine])
                    self.metrics.mining_stats.merge(app.stats)
                    stream.send(
                        Goodbye(
                            worker_id=self.worker_id,
                            metrics=self.metrics,
                            stats_blob=pickle.dumps(app.stats),
                        )
                    )
                    return
                if action == "lost":
                    return

                now = time.monotonic()
                if now >= next_heartbeat:
                    next_heartbeat = now + period
                    heartbeats_sent += 1
                    stream.send(
                        Heartbeat(
                            worker_id=self.worker_id,
                            pending_big=machine.pending_big(),
                            active=self._active,
                        )
                    )
                    if self._fresh_candidates(app) or self._remainders:
                        self._flush(stream, app, tracer)
                    if heartbeats_sent % _PROGRESS_EVERY == 0:
                        stream.send(
                            ProgressReport(
                                worker_id=self.worker_id,
                                tasks_executed=self.metrics.tasks_executed,
                                tasks_decomposed=self.metrics.tasks_decomposed,
                                candidates_emitted=len(app.sink.results()),
                            )
                        )

                task = core.pick(machine, slot)
                if task is None:
                    if self._active == 0 and (
                        self._open or self._remainders
                        or self._fresh_candidates(app)
                    ):
                        self._flush(stream, app, tracer, completed_all=True)
                    elif self._active > 0:
                        # Nothing pickable but tasks are still accounted
                        # active (e.g. just granted away in a steal):
                        # yield the core instead of busy-spinning — a hot
                        # loop here starves co-hosted processes.
                        time.sleep(0.001)
                    continue
                t_quantum = time.perf_counter()
                quantum = core.run_quantum(
                    task, machine, record=self.metrics.record_task, slot=slot
                )
                mine_seconds += time.perf_counter() - t_quantum
                for child in quantum.children:
                    if child.is_big(config.tau_split):
                        # Big remainders go back to the master for
                        # cluster-wide redistribution.
                        self._remainders.append(child.encode())
                    else:
                        core.route(child, machine, slot)
                if quantum.resumed is not None:
                    core.buffer_ready(quantum.resumed, machine, slot)
                elif quantum.finished:
                    self._active -= 1
                if len(self._remainders) >= config.batch_size:
                    self._flush(stream, app, tracer)
        finally:
            machine.cleanup()

    # -- inbox handling ----------------------------------------------------

    def _drain_inbox(
        self, inbox, stream, app, core, machine, slot, config,
        block_until: float | None,
    ) -> str:
        """Apply every queued master message; returns 'ok'/'stop'/'lost'."""
        first = True
        while True:
            try:
                if first and block_until is not None:
                    timeout = max(0.005, block_until - time.monotonic())
                    tag, payload = inbox.get(timeout=timeout)
                else:
                    tag, payload = inbox.get_nowait()
            except queue.Empty:
                return "ok"
            first = False
            if tag == "lost" or payload is None:
                return "lost"
            msg = payload
            if isinstance(msg, Shutdown):
                return "stop"
            if isinstance(msg, (SpawnRange, TaskBatch)):
                if (
                    self._injection is not None
                    and self._completed_units >= self._injection.after_batches
                ):
                    die_hard()
                self._open[msg.work_id] = (
                    "range" if isinstance(msg, SpawnRange) else "batch"
                )
                if isinstance(msg, SpawnRange):
                    self._spawn_range(msg, app, core, machine, slot)
                else:
                    for blob in msg.tasks:
                        task = Task.decode(blob)
                        task.task_id = core.next_task_id()
                        core.route(task, machine, slot)
            elif isinstance(msg, StealRequest):
                self._serve_steal(msg, stream, machine, core.tracer)
            # Heartbeat/ProgressReport never flow master -> worker;
            # anything else is ignored for forward compatibility.

    def _spawn_range(self, msg: SpawnRange, app, core, machine, slot) -> None:
        for v in msg.vertices:
            adjacency = machine.table.get(v)
            if adjacency is None:
                continue
            task = app.spawn(v, adjacency, core.next_task_id())
            if task is None:
                continue
            self.metrics.tasks_spawned += 1
            core.tracer.emit("spawn", task.task_id, 0, detail=f"root={v}")
            core.route(task, machine, slot)

    def _serve_steal(self, msg: StealRequest, stream, machine, tracer) -> None:
        """Give up to `count` big tasks from Q_global (+ its spill list)."""
        trace = tracer.enabled
        t0 = time.monotonic() if trace else 0.0
        granted: list[Task] = []
        while len(granted) < msg.count:
            batch = machine.qglobal.pop_batch(msg.count - len(granted))
            if not batch:
                if machine.qglobal.refill_from_spill() == 0:
                    break
                continue
            granted.extend(batch)
        self._active -= len(granted)
        if trace and granted:
            # Donor-side half of the move; the events forward to the
            # master's trace attributed machine=this worker.
            emit_span(
                tracer, "steal_transfer", t0, time.monotonic(),
                detail=f"granted={len(granted)} requested={msg.count}",
            )
        stream.send(
            StealGrant(
                request_id=msg.request_id,
                worker_id=self.worker_id,
                tasks=tuple(t.encode() for t in granted),
            )
        )

    # -- result shipping ---------------------------------------------------

    def _fresh_candidates(self, app) -> set[frozenset[int]]:
        return app.sink.results() - self._shipped

    def _new_events(self, tracer) -> tuple:
        if not tracer.enabled:
            return ()
        events = [e for e in tracer.events() if e.seq > self._trace_seq]
        if events:
            self._trace_seq = events[-1].seq
        return tuple((e.kind, e.task_id, e.thread, e.detail) for e in events)

    def _flush(self, stream, app, tracer, completed_all: bool = False) -> None:
        """Ship fresh candidates, remainders, trace events, and — when the
        local scheduler has drained — the acknowledgements of every open
        work unit, all in one atomic message."""
        completed: tuple[int, ...] = ()
        if completed_all and self._active == 0 and self._open:
            completed = tuple(self._open)
            self._completed_units += len(completed)
            self._open.clear()
        fresh = self._fresh_candidates(app)
        self._shipped |= fresh
        remainders, self._remainders = tuple(self._remainders), []
        stream.send(
            ResultBatch(
                worker_id=self.worker_id,
                completed=completed,
                candidates=tuple(fresh),
                remainders=remainders,
                events=self._new_events(tracer),
                active=self._active,
            )
        )
