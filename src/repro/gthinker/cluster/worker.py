"""Cluster worker: the TCP driver of the worker reactor.

A worker is the distributed twin of an `engine_mp` worker process, but
it owns a real local scheduler instead of receiving pre-picked batches.
All of that behaviour — handshake, leased work units, master-driven
spawning, big-remainder shipping, steal serving, incremental candidate
flushes — lives in the transport-free
:class:`~.reactor.WorkerReactor`; this module supplies what only a
real process needs:

* the TCP connection to the master (`Hello` → `Welcome` over a
  :class:`~repro.gthinker.runtime.StreamChannel`);
* a reader thread funnelling master frames into an inbox so the
  reactor is advanced from exactly one thread;
* the blocking policy: mine greedily while tasks are active, block on
  the inbox (until the next heartbeat deadline) when idle, and yield
  the core instead of busy-spinning when nothing is pickable;
* chaos wiring: :class:`~repro.gthinker.chaos.FaultInjection` arms the
  reactor's unit hook with :func:`~repro.gthinker.chaos.die_hard`.

Death needs no protocol: a SIGKILLed worker simply stops heartbeating
and its socket EOFs; the master reclaims every work unit it still
leased. Candidates are flushed incrementally and deduplicated
master-side, so at-least-once re-mining never changes the result set.
"""

from __future__ import annotations

import os
import queue
import socket
import sys
import threading
import time
import traceback

from ..chaos import FaultInjection, die_hard
from ..runtime import ChannelClosed, StreamChannel
from .protocol import MessageStream
from .reactor import WorkerReactor

__all__ = ["ClusterWorker"]


class ClusterWorker:
    """One socket-connected mining process of a cluster job."""

    def __init__(
        self,
        host: str,
        port: int,
        graph=None,
        fault_injection: FaultInjection | None = None,
        connect_timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.graph = graph
        self._injection = fault_injection
        self._connect_timeout = connect_timeout
        self.reactor: WorkerReactor | None = None

    @property
    def worker_id(self) -> int:
        return self.reactor.worker_id if self.reactor is not None else -1

    # -- wiring ------------------------------------------------------------

    def _connect(self) -> StreamChannel:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self._connect_timeout
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return StreamChannel(MessageStream(sock))

    def _unit_hook(self, completed_units: int) -> None:
        if (
            self._injection is not None
            and completed_units >= self._injection.after_batches
        ):
            die_hard()

    # -- the mining loop ---------------------------------------------------

    def run(self) -> None:
        channel = self._connect()
        try:
            self._run(channel)
        except BaseException:
            # A crash here is a worker death by definition; the master
            # sees the EOF and reclaims. Leave a trace for the operator.
            traceback.print_exc(file=sys.stderr)
            raise
        finally:
            channel.close()

    def _run(self, stream: StreamChannel) -> None:
        reactor = WorkerReactor(
            stream, self.graph,
            pid=os.getpid(), host=socket.gethostname(),
            unit_hook=self._unit_hook,
        )
        self.reactor = reactor
        reactor.hello()

        inbox: queue.Queue = queue.Queue()

        def _read_loop() -> None:
            while True:
                try:
                    msg = stream.recv()
                except ChannelClosed:  # torn frame or socket teardown
                    inbox.put(None)
                    return
                inbox.put(msg)
                if msg is None:
                    return

        reader = threading.Thread(
            target=_read_loop, name="cluster-worker-reader", daemon=True
        )
        reader.start()

        try:
            while True:
                action = self._drain_inbox(inbox, reactor)
                if action == "stop":
                    reactor.finish(time.monotonic())
                    return
                if action == "lost":
                    return
                reactor.on_tick(time.monotonic())
                stepped = reactor.mine_step(time.monotonic())
                if stepped is None and reactor.has_work():
                    # Nothing pickable but tasks are still accounted
                    # active (e.g. just granted away in a steal): yield
                    # the core instead of busy-spinning — a hot loop here
                    # starves co-hosted processes.
                    time.sleep(0.001)
        finally:
            reactor.cleanup()

    def _drain_inbox(self, inbox: queue.Queue, reactor: WorkerReactor) -> str:
        """Apply every queued master message; returns 'ok'/'stop'/'lost'.

        Blocks until the next heartbeat deadline when the reactor is
        idle (no active tasks), so an idle worker costs no CPU.
        """
        first = True
        while True:
            try:
                if first and not reactor.has_work():
                    timeout = max(
                        0.005, reactor.next_heartbeat - time.monotonic()
                    ) if reactor.started else 0.05
                    msg = inbox.get(timeout=timeout)
                else:
                    msg = inbox.get_nowait()
            except queue.Empty:
                return "ok"
            first = False
            action = reactor.on_message(msg, time.monotonic())
            if action != "ok":
                return action
