"""Wire protocol of the distributed cluster runtime.

Every message between the master and a worker travels as one
length-framed frame on a TCP stream::

    +---------+---------+------------------+-----------------+
    | magic   | version | payload length   | pickled message |
    | 4 bytes | <H      | <Q               | length bytes    |
    +---------+---------+------------------+-----------------+

The framing discipline is the same truncation-tolerant one as
:class:`repro.gthinker.spill.SpillFileList`: a peer that died mid-write
leaves a short read, which :meth:`MessageStream.recv` reports as a dead
connection (``None``) with a warning — never as an attempt to unpickle
a partial stream. A *complete* frame that fails validation (bad magic,
unknown version, payload that is not a known message type) raises
:class:`ProtocolError`, because silently dropping well-framed garbage
would hide a real incompatibility.

Messages are plain frozen dataclasses, picklable by construction. Tasks
ride inside them pre-encoded (``Task.encode()`` blobs) so the cluster
reuses exactly the spill/steal serialization format, and a batch can be
forwarded by the master without a decode/re-encode round trip.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import warnings
from dataclasses import dataclass

from ..config import EngineConfig
from ..metrics import EngineMetrics

#: Frame magic: G-Thinker CLuster.
MAGIC = b"GTCL"
#: Protocol version; bump on any incompatible message change.
#: v2: StatusRequest/StatusReply (live-progress query, repro.gthinker.obs).
#: v3: distributed vertex store — Welcome ships one partition
#:     (table_blob/partition_id/num_partitions/partition_strategy, the
#:     full-graph graph_blob is gone) and workers pull non-owned
#:     adjacency on demand via VertexRequest/VertexReply.
VERSION = 3
_HEADER = struct.Struct("<4sHQ")

#: Refuse frames larger than this (64 GiB): a corrupt length header must
#: not turn into an attempted multi-terabyte allocation.
MAX_FRAME_BYTES = 64 << 30


class ProtocolError(RuntimeError):
    """A complete but invalid frame (bad magic/version/message type)."""


# -- message vocabulary -----------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Worker → master: registration."""

    pid: int
    host: str
    #: True when the worker holds no graph data and needs the master to
    #: ship its partition's vertex table in the Welcome (the normal
    #: mode). False is the warm start: the worker pre-loaded the whole
    #: graph locally (``cluster-worker --graph``) and serves every read
    #: from it, so no table is shipped and no vertex fetches happen.
    needs_graph: bool = True


@dataclass(frozen=True)
class Welcome:
    """Master → worker: registration accepted; the job's parameters.

    v3: the master never ships the whole graph. A cold-start worker
    receives exactly its partition of the distributed vertex store and
    resolves non-owned vertices on demand (VertexRequest/VertexReply)
    into its bounded remote vertex cache.
    """

    worker_id: int
    config: EngineConfig
    #: Pickled application instance (same shipping rule as engine_mp).
    app_blob: bytes
    #: Pickled ``{vertex: (neighbor, ...)}`` dict — the adjacency
    #: entries of this worker's partition — or None when the worker
    #: said needs_graph=False (warm start from a local graph copy).
    table_blob: bytes | None
    #: Which partition this worker owns and how many exist in total
    #: (fixed at job start; rejoining workers reuse partition ids).
    partition_id: int = 0
    num_partitions: int = 1
    #: Partitioning strategy name (EngineConfig.partition). Under
    #: 'hash' a worker can prove a vertex it owns-but-lacks does not
    #: exist and skip the fetch round trip.
    partition_strategy: str = "hash"
    #: Whether the worker should record + forward scheduler trace events.
    trace: bool = False


@dataclass(frozen=True)
class SpawnRange:
    """Master → worker: one leased chunk of the spawn-vertex range."""

    work_id: int
    vertices: tuple[int, ...]


@dataclass(frozen=True)
class TaskBatch:
    """Master → worker: one leased batch of encoded tasks.

    `origin` records why the batch exists ('steal' for a forwarded
    steal grant, 'remainder' for re-leased decomposition remainders) —
    observability only, the worker treats both identically.
    """

    work_id: int
    tasks: tuple[bytes, ...]
    origin: str = "steal"


@dataclass(frozen=True)
class ResultBatch:
    """Worker → master: mined output plus work-unit acknowledgements.

    `completed` lists the work ids the worker has fully drained (its
    local scheduler went idle with those units open). `remainders` are
    encoded big decomposition remainders handed back for
    master-coordinated redistribution. `events` are forwarded trace
    tuples ``(kind, task_id, thread, detail)``.
    """

    worker_id: int
    completed: tuple[int, ...] = ()
    candidates: tuple[frozenset[int], ...] = ()
    remainders: tuple[bytes, ...] = ()
    events: tuple[tuple[str, int, int, str], ...] = ()
    active: int = 0


@dataclass(frozen=True)
class StealRequest:
    """Master → donor worker: give up to `count` big tasks."""

    request_id: int
    count: int


@dataclass(frozen=True)
class StealGrant:
    """Donor worker → master: the granted big tasks (possibly none)."""

    request_id: int
    worker_id: int
    tasks: tuple[bytes, ...]


@dataclass(frozen=True)
class VertexRequest:
    """Worker → master: fetch adjacency lists the worker does not own.

    Sent when a task's pull set (or a spawn vertex) is outside the
    worker's partition and missing from its remote vertex cache. The
    master owns the full graph and answers from it; requests are
    stateless on the master side, so a duplicated frame is harmlessly
    re-served and the worker drops the duplicate reply by request_id.
    """

    worker_id: int
    request_id: int
    vertices: tuple[int, ...]


@dataclass(frozen=True)
class VertexReply:
    """Master → worker: the requested adjacency entries.

    One ``(vertex, (neighbor, ...))`` pair per requested vertex, in
    request order; a vertex absent from the graph resolves to an empty
    neighbor tuple.
    """

    request_id: int
    entries: tuple[tuple[int, tuple[int, ...]], ...]


@dataclass(frozen=True)
class Heartbeat:
    """Worker → master: liveness + the stealing planner's input."""

    worker_id: int
    pending_big: int
    active: int


@dataclass(frozen=True)
class ProgressReport:
    """Worker → master: periodic coarse progress counters."""

    worker_id: int
    tasks_executed: int
    tasks_decomposed: int
    candidates_emitted: int


@dataclass(frozen=True)
class StatusRequest:
    """Any peer → master: ask for one live-progress snapshot.

    Served before registration, so an observer (``repro cluster-status``,
    the launcher's ``--progress`` poller) can connect, send this one
    message, read the :class:`StatusReply`, and disconnect without ever
    becoming a worker.
    """


@dataclass(frozen=True)
class StatusReply:
    """Master → requester: the job's progress counters right now.

    Plain fields mirroring ``repro.gthinker.obs.ProgressSnapshot``
    (the protocol module stays import-light; obs converts the reply
    back into a snapshot). ``tasks_pending``/``tasks_leased`` count
    master-side work units; ``tasks_done`` counts executed tasks as
    reported by workers.
    """

    wall_seconds: float
    tasks_pending: int
    tasks_leased: int
    tasks_done: int
    candidates: int
    workers_alive: int
    workers_died: int = 0


@dataclass(frozen=True)
class Shutdown:
    """Master → worker: the job is complete; flush and say Goodbye."""

    reason: str = "job complete"


@dataclass(frozen=True)
class Goodbye:
    """Worker → master: final metrics + mining stats, then disconnect."""

    worker_id: int
    metrics: EngineMetrics
    stats_blob: bytes


MESSAGE_TYPES = (
    Hello,
    Welcome,
    SpawnRange,
    TaskBatch,
    ResultBatch,
    StealRequest,
    StealGrant,
    VertexRequest,
    VertexReply,
    Heartbeat,
    ProgressReport,
    StatusRequest,
    StatusReply,
    Shutdown,
    Goodbye,
)


# -- framing ----------------------------------------------------------------


def encode_frame(message) -> bytes:
    """Serialize one message into a self-delimiting frame."""
    if not isinstance(message, MESSAGE_TYPES):
        raise ProtocolError(
            f"cannot send {type(message).__name__}: not a protocol message"
        )
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MAGIC, VERSION, len(payload)) + payload


def decode_payload(payload: bytes):
    """Unpickle + validate one frame payload."""
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, MESSAGE_TYPES):
        raise ProtocolError(
            f"frame decoded to {type(message).__name__}, not a protocol message"
        )
    return message


class MessageStream:
    """One framed, bidirectional message channel over a connected socket.

    `send` is lock-guarded so a mining loop and a heartbeat timer may
    share the stream; `recv` must only ever be called from one thread
    (each side dedicates a reader thread or loop to it).
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_buf = b""
        self._closed = False

    @property
    def peer(self) -> str:
        try:
            name = self._sock.getpeername()
        except OSError:
            return "<disconnected>"
        if isinstance(name, tuple) and len(name) >= 2:
            return f"{name[0]}:{name[1]}"
        return str(name) or "<unnamed>"  # AF_UNIX socketpairs are nameless

    def send(self, message) -> None:
        frame = encode_frame(message)
        with self._send_lock:
            self._sock.sendall(frame)

    def _read_exact(self, n: int) -> bytes | None:
        """Read exactly n bytes; None on clean EOF at a frame boundary,
        a short buffer on mid-frame EOF."""
        while len(self._recv_buf) < n:
            try:
                chunk = self._sock.recv(min(1 << 20, n - len(self._recv_buf)))
            except OSError:
                chunk = b""
            if not chunk:
                if not self._recv_buf:
                    return None
                short, self._recv_buf = self._recv_buf, b""
                return short
            self._recv_buf += chunk
        out, self._recv_buf = self._recv_buf[:n], self._recv_buf[n:]
        return out

    def recv(self):
        """Receive one message; None when the peer is gone.

        Mirrors `SpillFileList.load_batch`: a frame truncated by a dying
        peer (short header or short payload) is reported as a dead
        connection with a warning, while a complete frame that fails
        validation raises ProtocolError.
        """
        header = self._read_exact(_HEADER.size)
        if header is None:
            return None
        if len(header) < _HEADER.size:
            warnings.warn(
                f"peer {self.peer} died mid-frame (truncated header, "
                f"{len(header)}/{_HEADER.size} bytes); treating as disconnect",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        magic, version, length = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {magic!r} from {self.peer}")
        if version != VERSION:
            raise ProtocolError(
                f"peer {self.peer} speaks protocol version {version}, "
                f"this runtime speaks {VERSION}"
            )
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame from {self.peer} claims {length} bytes "
                f"(> {MAX_FRAME_BYTES}); refusing"
            )
        payload = self._read_exact(length)
        if payload is None or len(payload) < length:
            got = 0 if payload is None else len(payload)
            warnings.warn(
                f"peer {self.peer} died mid-frame (truncated payload, "
                f"{got}/{length} bytes); treating as disconnect",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return decode_payload(payload)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
