"""CLI entry points for the distributed runtime.

Invoked through the main console script as subcommands::

    quasiclique-mine cluster-master graph.txt --gamma 0.8 --min-size 10 \
        --workers 4 --port 7464
    quasiclique-mine cluster-worker --host master-host --port 7464

The master binds, waits for `--workers` registrations, drives the job,
and prints the same summary line as the local CLI. A worker needs
nothing but the master's address: the config, the app, and its
*partition* of the vertex table arrive in its Welcome message;
non-owned vertices are pulled from the master on demand into a bounded
cache, so no worker ever holds the full graph. ``--graph`` is an
optional warm start — a worker given a local edge-list copy mines
against that full replica instead (no partition shipping, no remote
fetches), trading memory for wire traffic.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from ...core.options import DEFAULT_OPTIONS, ResultSink
from ...graph.io import read_edge_list
from ..app_quasiclique import QuasiCliqueApp
from ..config import EngineConfig
from ..tracing import Tracer
from .master import ClusterMaster
from .worker import ClusterWorker

__all__ = ["master_cli", "status_cli", "worker_cli"]

#: Default master port (arbitrary, unprivileged).
DEFAULT_PORT = 7464


def _master_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine cluster-master",
        description="Coordinate a distributed quasi-clique mining job.",
    )
    parser.add_argument("graph", help="edge-list file (SNAP format)")
    parser.add_argument("--gamma", type=float, required=True)
    parser.add_argument("--min-size", type=int, required=True)
    parser.add_argument("--host", default="0.0.0.0",
                        help="bind address (default: all interfaces)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port (default: {DEFAULT_PORT}; 0 = ephemeral)")
    parser.add_argument("--port-file", metavar="FILE", default=None,
                        help="write the bound port here once listening "
                        "(lets scripts use --port 0 without collisions)")
    parser.add_argument("--workers", type=int, required=True, metavar="N",
                        help="expected worker count (sizes the work ledger)")
    parser.add_argument("--tau-split", type=int, default=64)
    parser.add_argument("--tau-time", type=float, default=float("inf"))
    parser.add_argument("--wall-clock", action="store_true",
                        help="interpret --tau-time as seconds")
    parser.add_argument("--decompose", choices=["timed", "size", "none"],
                        default="timed")
    parser.add_argument("--chunk-size", type=int, default=0,
                        help="spawn vertices per work unit (0 = auto)")
    parser.add_argument("--heartbeat-period", type=float, default=0.25)
    parser.add_argument("--heartbeat-timeout", type=float, default=10.0)
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--timeout", type=float, default=None,
                        help="abort the job after this many seconds")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write master-side scheduler events as JSON lines")
    parser.add_argument("--progress", action="store_true",
                        help="render live progress snapshots to stderr")
    parser.add_argument("--output", help="write results (one set per line)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    return parser


def master_cli(argv: list[str] | None = None) -> int:
    args = _master_parser().parse_args(argv)
    graph = read_edge_list(args.graph)
    config = EngineConfig(
        backend="cluster",
        num_procs=args.workers,
        tau_split=args.tau_split,
        tau_time=args.tau_time,
        time_unit="wall" if args.wall_clock else "ops",
        decompose=args.decompose,
        cluster_chunk_size=args.chunk_size,
        heartbeat_period=args.heartbeat_period,
        heartbeat_timeout=args.heartbeat_timeout,
        max_attempts=args.max_attempts,
    )
    app = QuasiCliqueApp(
        gamma=args.gamma, min_size=args.min_size,
        sink=ResultSink(), options=DEFAULT_OPTIONS,
    )
    tracer = Tracer() if args.trace else None
    on_progress = None
    if args.progress:
        from ..obs import format_progress

        on_progress = lambda s: print(format_progress(s), file=sys.stderr)  # noqa: E731
    master = ClusterMaster(
        graph, app, config, tracer=tracer,
        host=args.host, port=args.port, num_workers=args.workers,
        on_progress=on_progress,
    )
    host, port = master.start()
    if args.port_file:
        # Written atomically (rename) so a polling reader never sees a
        # half-written port number.
        tmp = args.port_file + ".tmp"
        with open(tmp, "w") as f:
            f.write(str(port))
        os.replace(tmp, args.port_file)
    print(f"cluster-master: listening on {host}:{port}, "
          f"waiting for {args.workers} worker(s)", file=sys.stderr)
    start = time.perf_counter()
    result = master.run(timeout=args.timeout)
    elapsed = time.perf_counter() - start
    if tracer is not None:
        written = tracer.dump_jsonl(args.trace)
        print(f"cluster-master: wrote {written} trace events to {args.trace}",
              file=sys.stderr)
    from ...cli import format_run_summary

    extra = format_run_summary(result, "cluster", args.workers)
    print(
        f"|V|={graph.num_vertices} |E|={graph.num_edges} gamma={args.gamma} "
        f"min_size={args.min_size} results={len(result.maximal)} "
        f"time={elapsed:.2f}s{extra}"
    )
    if not args.quiet:
        for qc in sorted(result.maximal, key=lambda s: (-len(s), sorted(s))):
            print(" ".join(str(v) for v in sorted(qc)))
    if args.output:
        with open(args.output, "w") as f:
            for qc in sorted(result.maximal, key=lambda s: (-len(s), sorted(s))):
                f.write(" ".join(str(v) for v in sorted(qc)) + "\n")
    return 0


def _worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine cluster-worker",
        description="Join a distributed quasi-clique mining job.",
    )
    parser.add_argument("--host", required=True, help="master address")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--graph", default=None,
                        help="optional warm start: mine against this full "
                        "local edge-list copy instead of receiving a "
                        "partition and fetching remote vertices on demand")
    parser.add_argument("--connect-timeout", type=float, default=30.0)
    return parser


def worker_cli(argv: list[str] | None = None) -> int:
    args = _worker_parser().parse_args(argv)
    graph = read_edge_list(args.graph) if args.graph else None
    worker = ClusterWorker(
        args.host, args.port, graph=graph,
        connect_timeout=args.connect_timeout,
    )
    worker.run()
    print(f"cluster-worker {worker.worker_id}: done", file=sys.stderr)
    return 0


def _status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine cluster-status",
        description="Ask a running master for one live-progress snapshot.",
    )
    parser.add_argument("--host", required=True, help="master address")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="connect/read timeout in seconds")
    return parser


def status_cli(argv: list[str] | None = None) -> int:
    args = _status_parser().parse_args(argv)
    from ..obs import format_progress, query_master_status
    from .protocol import ProtocolError

    try:
        snapshot = query_master_status(args.host, args.port,
                                       timeout=args.timeout)
    except (OSError, ProtocolError) as exc:
        print(f"cluster-status: {exc}", file=sys.stderr)
        return 1
    print(format_progress(snapshot))
    return 0
