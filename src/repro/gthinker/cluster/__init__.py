"""Distributed cluster runtime: TCP master/worker engine.

The real-network counterpart of the simulated cluster
(:mod:`repro.gthinker.simulation`) and the process pool
(:mod:`repro.gthinker.engine_mp`): a master process owns the work
ledger and the big-task stealing plan, workers own local schedulers
built from the same :class:`~repro.gthinker.scheduler.SchedulerCore`
as every other executor, and everything in between is a small framed
pickle protocol over TCP (:mod:`.protocol`).

Select it with ``EngineConfig(backend='cluster')`` through
:func:`repro.gthinker.engine.mine_parallel`, call
:func:`mine_cluster` directly, or run the ``repro cluster-master`` /
``repro cluster-worker`` CLI entry points across hosts.
"""

from .launcher import mine_cluster, run_cluster_app
from .master import ClusterMaster
from .protocol import (
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    VERSION,
    MessageStream,
    ProtocolError,
    encode_frame,
)
from .worker import ClusterWorker

__all__ = [
    "ClusterMaster",
    "ClusterWorker",
    "MessageStream",
    "ProtocolError",
    "MESSAGE_TYPES",
    "MAX_FRAME_BYTES",
    "VERSION",
    "encode_frame",
    "mine_cluster",
    "run_cluster_app",
]
