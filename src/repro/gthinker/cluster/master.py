"""Cluster master: the TCP driver of the coordinator reactor.

The master owns no mining compute, and — since the reactor split — no
coordination logic either. Everything the paper says must be a global
decision (the work ledger, big-task steal coordination, failure
recovery) lives in the transport-free
:class:`~.reactor.MasterReactor`; this module supplies the parts only
a real deployment needs:

* a listening socket plus an accept thread that wraps each connection
  in a :class:`~repro.gthinker.runtime.StreamChannel`;
* one reader thread per channel funnelling frames into a single inbox
  queue (the reactor is advanced from exactly one thread);
* the run loop: pop the inbox, feed :meth:`MasterReactor.on_message`,
  call :meth:`MasterReactor.on_tick` with ``time.monotonic()``, and
  run the Shutdown → Goodbye-collection handshake when the reactor
  reports :attr:`~.reactor.MasterReactor.done`.

The deterministic simulator (:mod:`repro.gthinker.sim`) drives the
same reactor over in-memory channels on a virtual clock — a seed that
fails there is a schedule this driver could really execute.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
import warnings

from ..config import EngineConfig
from ..engine import MiningRunResult
from ..obs.progress import ProgressSnapshot
from ..runtime import ChannelClosed, StreamChannel
from ..tracing import NullTracer, Tracer
from .protocol import MessageStream
from .reactor import MasterReactor, _ClusterSlot, _WorkUnit  # noqa: F401

__all__ = ["ClusterMaster"]

#: How long the shutdown handshake waits for Goodbyes (seconds).
_GOODBYE_GRACE = 10.0


class ClusterMaster:
    """Coordinator of one distributed mining job.

    `run()` drives the job to completion and returns the same
    :class:`MiningRunResult` as every other executor. `start()` may be
    called first to learn the bound address (ephemeral-port launchers).
    """

    def __init__(
        self,
        graph,
        app,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        num_workers: int | None = None,
        on_progress=None,
    ):
        #: Live-progress callback, called with a ProgressSnapshot every
        #: config.progress_interval seconds (1s default when a callback
        #: or tracer is attached); StatusRequest peers get the same
        #: snapshot on demand.
        self.reactor = MasterReactor(
            graph, app, config,
            tracer=tracer, num_workers=num_workers, on_progress=on_progress,
        )
        self.config = config
        self._host = host
        self._port = port
        # -- wiring --------------------------------------------------------
        self._inbox: queue.Queue = queue.Queue()
        self._lsock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._accepting = False

    # -- reactor views (the public coordination surface) -------------------

    @property
    def graph(self):
        return self.reactor.graph

    @property
    def app(self):
        return self.reactor.app

    @property
    def tracer(self):
        return self.reactor.tracer

    @property
    def num_workers(self) -> int:
        return self.reactor.num_workers

    @property
    def metrics(self):
        return self.reactor.metrics

    @property
    def ledger(self):
        return self.reactor.ledger

    @property
    def registry(self):
        return self.reactor.registry

    @property
    def progress(self):
        return self.reactor.progress

    @property
    def quarantined(self):
        return self.reactor.quarantined

    def status_snapshot(self) -> ProgressSnapshot:
        return self.reactor.status_snapshot(time.monotonic())

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._lsock is None:
            raise RuntimeError("master not started; call start() first")
        host, port = self._lsock.getsockname()[:2]
        return host, port

    def start(self) -> tuple[str, int]:
        """Bind + listen + start accepting registrations; returns (host, port)."""
        if self._lsock is not None:
            return self.address
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind((self._host, self._port))
        lsock.listen(self.num_workers + 8)
        self._lsock = lsock
        self._accepting = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-master-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        while self._accepting:
            try:
                conn, _addr = self._lsock.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = StreamChannel(MessageStream(conn))
            threading.Thread(
                target=self._read_loop, args=(channel,),
                name="cluster-master-reader", daemon=True,
            ).start()

    def _read_loop(self, channel: StreamChannel) -> None:
        while True:
            try:
                msg = channel.recv()
            except ChannelClosed as exc:  # torn frame → treat as disconnect
                warnings.warn(
                    f"dropping connection {channel.peer}: {exc}", RuntimeWarning
                )
                msg = None
            self._inbox.put((channel, msg))
            if msg is None:
                return

    # -- the run loop ------------------------------------------------------

    def run(self, timeout: float | None = None) -> MiningRunResult:
        """Drive the job to completion; returns the standard run result."""
        start = time.perf_counter()
        reactor = self.reactor
        self.start()
        reactor.start_work(time.monotonic())
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while not reactor.done:
                try:
                    channel, msg = self._inbox.get(timeout=0.02)
                except queue.Empty:
                    channel = None
                now = time.monotonic()
                if channel is not None:
                    reactor.on_message(channel, msg, now)
                    # Drain whatever else is queued before housekeeping.
                    while True:
                        try:
                            channel, msg = self._inbox.get_nowait()
                        except queue.Empty:
                            break
                        reactor.on_message(channel, msg, now)
                reactor.on_tick(now)
                if deadline is not None and now > deadline:
                    raise RuntimeError(
                        f"cluster job exceeded its {timeout}s deadline "
                        f"({len(reactor._pending)} pending, "
                        f"{len(reactor.ledger)} leased)"
                    )
            self._shutdown_workers()
        finally:
            self._close()
        return reactor.finalize(time.perf_counter() - start)

    def _shutdown_workers(self) -> None:
        """Job done: Shutdown → collect Goodbyes (metrics) → close."""
        reactor = self.reactor
        reactor.begin_shutdown(time.monotonic())
        deadline = time.monotonic() + _GOODBYE_GRACE
        while reactor.awaiting_goodbye() and time.monotonic() < deadline:
            try:
                channel, msg = self._inbox.get(
                    timeout=max(0.01, deadline - time.monotonic())
                )
            except queue.Empty:
                continue
            reactor.on_message(channel, msg, time.monotonic())
        reactor.abandon_stragglers()

    def _close(self) -> None:
        self._accepting = False
        if self._lsock is not None:
            try:
                self._lsock.close()
            except OSError:
                pass
        self.reactor.close_channels()
