"""Cluster master: work ledger, steal coordination, failure recovery.

The master owns no mining compute. It owns the three things the paper
says must be global decisions:

* **the work ledger** — the spawn-vertex range is partitioned with the
  job's partition strategy (`repro.gthinker.partition`) and cut into
  lease-sized chunks; every chunk, and later every batch of
  decomposition remainders, is a *work unit* leased to exactly one
  worker at a time. A unit is retired only when its worker reports its
  local scheduler drained with the unit open (`ResultBatch.completed`).
* **big-task stealing** — workers report pending-big counts in
  heartbeats; every `steal_period_seconds` the master feeds those
  counts to :func:`repro.gthinker.stealing.plan_steals` and turns each
  :class:`StealMove` into a real transfer: `StealRequest` → donor,
  `StealGrant` ← donor, `TaskBatch` → recipient. The grant passes
  *through* the master (store-and-forward), so a stolen batch becomes a
  leased work unit like any other and survives the recipient dying.
* **failure recovery** — a worker is dead on socket EOF (fast path) or
  a heartbeat gap over `heartbeat_timeout` (wedged-but-connected).
  Its leases are reclaimed with the `engine_mp` attempt discipline:
  re-pended until a unit has been dispatched `max_attempts` times,
  then quarantined so one poisoned chunk cannot wedge the job.

Results are deduplicated by the candidate sets themselves (frozensets
into a `ResultSink`), which is what makes at-least-once delivery safe:
a unit mined one-and-a-half times emits the same candidates twice.
"""

from __future__ import annotations

import itertools
import pickle
import queue
import socket
import threading
import time
import warnings
from dataclasses import dataclass, field

from ..app_protocol import ensure_app
from ..config import EngineConfig
from ..engine import MiningRunResult
from ..metrics import EngineMetrics
from ..partition import make_partitioner
from ..stealing import plan_steals
from ..task import Task
from ..tracing import NullTracer, Tracer
from .protocol import (
    Goodbye,
    Heartbeat,
    Hello,
    MessageStream,
    ProgressReport,
    ResultBatch,
    Shutdown,
    SpawnRange,
    StealGrant,
    StealRequest,
    TaskBatch,
    Welcome,
)

__all__ = ["ClusterMaster"]

#: Work units leased to one worker at a time (pipelining without
#: hoarding: a dead worker forfeits at most this many units).
_LEASE_WINDOW = 2
#: Auto chunking target: about this many spawn-range units per worker.
_UNITS_PER_WORKER = 8
#: How long the shutdown handshake waits for Goodbyes (seconds).
_GOODBYE_GRACE = 10.0


@dataclass
class _WorkUnit:
    """One leasable unit: a spawn-vertex chunk or an encoded-task batch."""

    work_id: int
    kind: str  # 'range' | 'batch'
    payload: tuple  # vertices (range) or Task.encode() blobs (batch)
    origin: str = "spawn"  # 'spawn' | 'remainder' | 'steal'
    attempts: int = 0  # dispatch count (engine_mp lease discipline)

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class _Worker:
    """Master-side view of one connected worker."""

    worker_id: int
    stream: MessageStream
    hello: Hello
    alive: bool = True
    last_seen: float = 0.0
    pending_big: int = 0
    active: int = 0
    open_units: set[int] = field(default_factory=set)
    stealing_from: bool = False  # a StealRequest is outstanding


class ClusterMaster:
    """Coordinator of one distributed mining job.

    `run()` drives the job to completion and returns the same
    :class:`MiningRunResult` as every other executor. `start()` may be
    called first to learn the bound address (ephemeral-port launchers).
    """

    def __init__(
        self,
        graph,
        app,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        num_workers: int | None = None,
    ):
        self.graph = graph
        self.app = ensure_app(app)
        self.config = config
        self.tracer = tracer if tracer is not None else NullTracer()
        self.num_workers = num_workers or config.resolved_num_procs
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        try:
            self._app_blob = pickle.dumps(app, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"the cluster backend ships the app to every worker, but "
                f"{type(app).__name__} is not picklable: {exc}. Keep engine "
                f"apps free of locks, open files, and lambdas."
            ) from exc
        self._graph_blob: bytes | None = None
        self._host = host
        self._port = port
        self.metrics = EngineMetrics()
        self.progress: dict[int, ProgressReport] = {}
        self.quarantined: list[_WorkUnit] = []
        # -- ledger --------------------------------------------------------
        self._pending: list[_WorkUnit] = []
        self._leases: dict[int, tuple[_WorkUnit, int]] = {}  # id -> (unit, wid)
        self._work_ids = itertools.count()
        self._steal_ids = itertools.count()
        self._pending_steals: dict[int, tuple[int, int, int]] = {}
        # -- wiring --------------------------------------------------------
        self._inbox: queue.Queue = queue.Queue()
        self._workers: dict[int, _Worker] = {}
        self._by_stream: dict[MessageStream, _Worker] = {}
        self._worker_ids = itertools.count()
        self._lsock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._accepting = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._lsock is None:
            raise RuntimeError("master not started; call start() first")
        host, port = self._lsock.getsockname()[:2]
        return host, port

    def start(self) -> tuple[str, int]:
        """Bind + listen + start accepting registrations; returns (host, port)."""
        if self._lsock is not None:
            return self.address
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind((self._host, self._port))
        lsock.listen(self.num_workers + 8)
        self._lsock = lsock
        self._accepting = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-master-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        while self._accepting:
            try:
                conn, _addr = self._lsock.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = MessageStream(conn)
            threading.Thread(
                target=self._read_loop, args=(stream,),
                name="cluster-master-reader", daemon=True,
            ).start()

    def _read_loop(self, stream: MessageStream) -> None:
        while True:
            try:
                msg = stream.recv()
            except Exception as exc:  # ProtocolError → treat as disconnect
                warnings.warn(
                    f"dropping connection {stream.peer}: {exc}", RuntimeWarning
                )
                msg = None
            self._inbox.put((stream, msg))
            if msg is None:
                return

    # -- the work ledger ---------------------------------------------------

    def _build_work(self) -> None:
        """Cut the spawn-vertex range into leasable chunks.

        The job's partition strategy decides which worker *should* own
        which vertices; chunks of the per-worker parts are interleaved
        so that with fewer live workers than expected the load still
        spreads.
        """
        parts = make_partitioner(
            self.config.partition, self.graph, self.num_workers
        ).parts()
        n_vertices = sum(len(p) for p in parts)
        chunk = self.config.cluster_chunk_size or max(
            1, -(-n_vertices // (self.num_workers * _UNITS_PER_WORKER))
        )
        chunked = [
            [part[i: i + chunk] for i in range(0, len(part), chunk)]
            for part in parts
        ]
        for round_ in itertools.zip_longest(*chunked):
            for vertices in round_:
                if vertices:
                    self._pending.append(
                        _WorkUnit(
                            work_id=next(self._work_ids),
                            kind="range",
                            payload=tuple(vertices),
                        )
                    )

    def _alive(self) -> list[_Worker]:
        return [w for w in self._workers.values() if w.alive]

    def _pump(self) -> None:
        """Lease pending units to workers with open window slots."""
        while self._pending:
            targets = sorted(
                (w for w in self._alive() if len(w.open_units) < _LEASE_WINDOW),
                key=lambda w: (len(w.open_units), w.worker_id),
            )
            if not targets:
                return
            progressed = False
            for worker in targets:
                if not self._pending:
                    return
                # A send failure inside _lease fails that worker and
                # re-pends its units, so re-check before each grant: the
                # sorted snapshot may hold a worker that just died.
                if not worker.alive or len(worker.open_units) >= _LEASE_WINDOW:
                    continue
                self._lease(self._pending.pop(0), worker)
                progressed = True
            if not progressed:
                return

    def _lease(self, unit: _WorkUnit, worker: _Worker) -> None:
        unit.attempts += 1
        self._leases[unit.work_id] = (unit, worker.worker_id)
        worker.open_units.add(unit.work_id)
        if unit.kind == "range":
            msg = SpawnRange(work_id=unit.work_id, vertices=unit.payload)
        else:
            msg = TaskBatch(
                work_id=unit.work_id, tasks=unit.payload, origin=unit.origin
            )
        self._send(worker, msg)

    def _send(self, worker: _Worker, message) -> None:
        try:
            worker.stream.send(message)
        except OSError:
            self._fail_worker(worker, "send failed (connection lost)")

    # -- failure recovery --------------------------------------------------

    def _fail_worker(self, worker: _Worker, reason: str) -> None:
        if not worker.alive:
            return
        worker.alive = False
        self.metrics.workers_died += 1
        self.tracer.emit("worker_died", -1, worker.worker_id, detail=reason)
        worker.stream.close()
        # Outstanding steal requests to/for this worker are void; the
        # donor's queue state is gone with it anyway.
        self._pending_steals = {
            rid: (src, dst, n)
            for rid, (src, dst, n) in self._pending_steals.items()
            if src != worker.worker_id and dst != worker.worker_id
        }
        for work_id in sorted(worker.open_units):
            entry = self._leases.pop(work_id, None)
            if entry is None:
                continue
            unit, _owner = entry
            if unit.attempts >= self.config.max_attempts:
                self.quarantined.append(unit)
                self.metrics.tasks_quarantined += unit.size
                self.tracer.emit(
                    "task_quarantined", -1, worker.worker_id,
                    detail=f"work={unit.work_id} kind={unit.kind} "
                    f"attempts={unit.attempts}",
                )
            else:
                self.metrics.tasks_retried += unit.size
                self.tracer.emit(
                    "task_retried", -1, worker.worker_id,
                    detail=f"work={unit.work_id} kind={unit.kind} "
                    f"attempt={unit.attempts}",
                )
                self._pending.insert(0, unit)
        worker.open_units.clear()

    def _check_heartbeats(self, now: float) -> None:
        for worker in self._alive():
            if now - worker.last_seen > self.config.heartbeat_timeout:
                self._fail_worker(
                    worker,
                    f"no heartbeat for {now - worker.last_seen:.1f}s",
                )

    # -- stealing ----------------------------------------------------------

    def _plan_steals(self) -> None:
        alive = sorted(self._alive(), key=lambda w: w.worker_id)
        if len(alive) < 2 or not self.config.use_stealing:
            return
        counts = [w.pending_big for w in alive]
        for move in plan_steals(counts, self.config.batch_size):
            donor, recipient = alive[move.src], alive[move.dst]
            if donor.stealing_from:
                continue  # one outstanding request per donor
            self.metrics.steals_planned += 1
            self.tracer.emit(
                "steal_planned", -1, donor.worker_id,
                detail=f"dst=m{recipient.worker_id} count={move.count}",
            )
            request_id = next(self._steal_ids)
            self._pending_steals[request_id] = (
                donor.worker_id, recipient.worker_id, move.count
            )
            donor.stealing_from = True
            self._send(donor, StealRequest(request_id=request_id, count=move.count))

    def _handle_steal_grant(self, worker: _Worker, msg: StealGrant) -> None:
        entry = self._pending_steals.pop(msg.request_id, None)
        worker.stealing_from = False
        if entry is None:
            return  # request voided (a party died); blobs re-mine via leases
        _src, dst, _count = entry
        if not msg.tasks:
            return
        self.metrics.steals += 1
        self.metrics.stolen_tasks += len(msg.tasks)
        self.metrics.steals_sent += len(msg.tasks)
        if self.tracer.enabled:
            for blob in msg.tasks:
                self.tracer.emit(
                    "steal_sent", Task.decode(blob).task_id, worker.worker_id,
                    detail=f"dst=m{dst}",
                )
        unit = _WorkUnit(
            work_id=next(self._work_ids),
            kind="batch",
            payload=tuple(msg.tasks),
            origin="steal",
        )
        recipient = self._workers.get(dst)
        if recipient is not None and recipient.alive:
            self._lease(unit, recipient)
            self.metrics.steals_received += len(msg.tasks)
            if self.tracer.enabled:
                for blob in msg.tasks:
                    self.tracer.emit(
                        "steal_received", Task.decode(blob).task_id, dst,
                        detail=f"from=m{worker.worker_id}",
                    )
                    self.tracer.emit(
                        "steal", Task.decode(blob).task_id, dst,
                        detail=f"from=m{worker.worker_id}",
                    )
        else:
            # Recipient died while the grant was in flight: the batch is
            # ordinary pending work now.
            self._pending.insert(0, unit)
            self._pump()

    # -- message handling --------------------------------------------------

    def _handle(self, stream: MessageStream, msg, now: float) -> None:
        worker = self._by_stream.get(stream)
        if msg is None:
            if worker is not None:
                self._fail_worker(worker, "connection closed")
            else:
                stream.close()
            return
        if isinstance(msg, Hello):
            self._register(stream, msg, now)
            return
        if worker is None:
            warnings.warn(
                f"message {type(msg).__name__} from unregistered peer "
                f"{stream.peer}; dropping",
                RuntimeWarning,
            )
            return
        worker.last_seen = now
        if isinstance(msg, Heartbeat):
            worker.pending_big = msg.pending_big
            worker.active = msg.active
        elif isinstance(msg, ProgressReport):
            self.progress[worker.worker_id] = msg
        elif isinstance(msg, ResultBatch):
            self._handle_results(worker, msg)
        elif isinstance(msg, StealGrant):
            self._handle_steal_grant(worker, msg)
        elif isinstance(msg, Goodbye):
            self._handle_goodbye(worker, msg)

    def _register(self, stream: MessageStream, hello: Hello, now: float) -> None:
        worker_id = next(self._worker_ids)
        worker = _Worker(
            worker_id=worker_id, stream=stream, hello=hello, last_seen=now
        )
        self._workers[worker_id] = worker
        self._by_stream[stream] = worker
        graph_blob = None
        if hello.needs_graph:
            if self._graph_blob is None:
                self._graph_blob = pickle.dumps(
                    self.graph, protocol=pickle.HIGHEST_PROTOCOL
                )
            graph_blob = self._graph_blob
        self._send(
            worker,
            Welcome(
                worker_id=worker_id,
                config=self.config,
                app_blob=self._app_blob,
                graph_blob=graph_blob,
                trace=self.tracer.enabled,
            ),
        )
        self._pump()

    def _handle_results(self, worker: _Worker, msg: ResultBatch) -> None:
        # Candidates are folded even from stale/dead senders: dedup makes
        # them idempotent, and dropping mined truth would be wasteful.
        for candidate in msg.candidates:
            self.app.sink.emit(candidate)
        if self.tracer.enabled:
            for kind, task_id, thread, detail in msg.events:
                self.tracer.emit(
                    kind, task_id, worker.worker_id, thread, detail=detail
                )
        worker.active = msg.active
        for blob in msg.remainders:
            self._pending.append(
                _WorkUnit(
                    work_id=next(self._work_ids),
                    kind="batch",
                    payload=(blob,),
                    origin="remainder",
                )
            )
        for work_id in msg.completed:
            entry = self._leases.get(work_id)
            if entry is None or entry[1] != worker.worker_id:
                continue  # stale ack from a presumed-dead era; unit re-leased
            del self._leases[work_id]
            worker.open_units.discard(work_id)
        self._pump()

    def _handle_goodbye(self, worker: _Worker, msg: Goodbye) -> None:
        self.metrics.merge(msg.metrics)
        worker.alive = False
        worker.stream.close()

    # -- the run loop ------------------------------------------------------

    def run(self, timeout: float | None = None) -> MiningRunResult:
        """Drive the job to completion; returns the standard run result."""
        start = time.perf_counter()
        self.start()
        self._build_work()
        deadline = None if timeout is None else time.monotonic() + timeout
        next_steal = time.monotonic() + self.config.steal_period_seconds
        registered_any = False
        try:
            while self._pending or self._leases:
                try:
                    stream, msg = self._inbox.get(timeout=0.02)
                except queue.Empty:
                    stream = None
                now = time.monotonic()
                if stream is not None:
                    self._handle(stream, msg, now)
                    # Drain whatever else is queued before housekeeping.
                    while True:
                        try:
                            stream, msg = self._inbox.get_nowait()
                        except queue.Empty:
                            break
                        self._handle(stream, msg, now)
                self._check_heartbeats(now)
                # Failure reclaim re-pends units outside any message
                # handler; an idle survivor generates no result traffic,
                # so the loop itself must offer reclaimed work around.
                self._pump()
                if now >= next_steal:
                    next_steal = now + self.config.steal_period_seconds
                    self._plan_steals()
                # Declare the job lost only once the full expected
                # complement has registered and then died; with stragglers
                # still connecting, a late joiner may yet rescue the work
                # (and the deadline bounds the wait regardless).
                registered_any = registered_any or (
                    len(self._workers) >= self.num_workers
                )
                if registered_any and not self._alive():
                    raise RuntimeError(
                        f"all cluster workers died with work outstanding "
                        f"({len(self._pending)} pending, "
                        f"{len(self._leases)} leased, "
                        f"{len(self.quarantined)} quarantined)"
                    )
                if deadline is not None and now > deadline:
                    raise RuntimeError(
                        f"cluster job exceeded its {timeout}s deadline "
                        f"({len(self._pending)} pending, "
                        f"{len(self._leases)} leased)"
                    )
            self._shutdown_workers()
        finally:
            self._close()
        from ...core.postprocess import postprocess_results

        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        self.metrics.wall_seconds = time.perf_counter() - start
        return MiningRunResult(
            maximal=maximal, candidates=candidates, metrics=self.metrics
        )

    def _shutdown_workers(self) -> None:
        """Job done: Shutdown → collect Goodbyes (metrics) → close."""
        for worker in self._alive():
            self._send(worker, Shutdown())
        deadline = time.monotonic() + _GOODBYE_GRACE
        while self._alive() and time.monotonic() < deadline:
            try:
                stream, msg = self._inbox.get(
                    timeout=max(0.01, deadline - time.monotonic())
                )
            except queue.Empty:
                continue
            self._handle(stream, msg, time.monotonic())
        for worker in self._alive():
            warnings.warn(
                f"worker {worker.worker_id} never said Goodbye; its final "
                f"metrics are lost",
                RuntimeWarning,
            )
            worker.alive = False
            worker.stream.close()

    def _close(self) -> None:
        self._accepting = False
        if self._lsock is not None:
            try:
                self._lsock.close()
            except OSError:
                pass
        for worker in self._workers.values():
            worker.stream.close()
