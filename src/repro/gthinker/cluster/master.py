"""Cluster master: work ledger, steal coordination, failure recovery.

The master owns no mining compute. It owns the three things the paper
says must be global decisions:

* **the work ledger** — the spawn-vertex range is partitioned with the
  job's partition strategy (`repro.gthinker.partition`) and cut into
  lease-sized chunks; every chunk, and later every batch of
  decomposition remainders, is a *work unit* leased to exactly one
  worker at a time. A unit is retired only when its worker reports its
  local scheduler drained with the unit open (`ResultBatch.completed`).
* **big-task stealing** — workers report pending-big counts in
  heartbeats; every `steal_period_seconds` the master feeds those
  counts to :func:`repro.gthinker.stealing.plan_steals` and turns each
  :class:`StealMove` into a real transfer: `StealRequest` → donor,
  `StealGrant` ← donor, `TaskBatch` → recipient. The grant passes
  *through* the master (store-and-forward), so a stolen batch becomes a
  leased work unit like any other and survives the recipient dying.
* **failure recovery** — a worker is dead on socket EOF (fast path) or
  a heartbeat gap over `heartbeat_timeout` (wedged-but-connected).
  Recovery itself is the shared coordination control plane
  (:mod:`repro.gthinker.runtime`, the same layer under `engine_mp`):
  death accounting through :class:`~repro.gthinker.runtime.
  WorkerRegistry`, lease reclaim with exponential backoff retry and
  `max_attempts` quarantine through :func:`~repro.gthinker.runtime.
  reclaim_lease`, so one poisoned chunk cannot wedge the job.

Results are deduplicated by the candidate sets themselves (the shared
:class:`~repro.gthinker.runtime.ResultFolder` frozensets every
candidate into the `ResultSink`), which is what makes at-least-once
delivery safe: a unit mined one-and-a-half times emits the same
candidates twice.
"""

from __future__ import annotations

import itertools
import pickle
import queue
import socket
import threading
import time
import warnings
from dataclasses import dataclass

from ..app_protocol import ensure_app
from ..config import EngineConfig
from ..engine import MiningRunResult
from ..metrics import EngineMetrics
from ..obs.progress import ProgressSnapshot, progress_detail
from ..partition import make_partitioner
from ..runtime import (
    ChannelClosed,
    ResultFolder,
    RetryPolicy,
    StreamChannel,
    WorkLedger,
    WorkerRegistry,
    WorkerSlot,
    reclaim_lease,
)
from ..stealing import plan_steals
from ..task import Task
from ..tracing import NullTracer, Tracer
from .protocol import (
    Goodbye,
    Heartbeat,
    Hello,
    MessageStream,
    ProgressReport,
    ResultBatch,
    Shutdown,
    SpawnRange,
    StatusReply,
    StatusRequest,
    StealGrant,
    StealRequest,
    TaskBatch,
    Welcome,
)

__all__ = ["ClusterMaster"]

#: Auto chunking target: about this many spawn-range units per worker.
_UNITS_PER_WORKER = 8
#: How long the shutdown handshake waits for Goodbyes (seconds).
_GOODBYE_GRACE = 10.0


@dataclass
class _WorkUnit:
    """One leasable unit: a spawn-vertex chunk or an encoded-task batch.

    Dispatch counting lives in the master's :class:`WorkLedger` (keyed
    by ``work_id``, sized by ``size``), not on the unit itself.
    """

    work_id: int
    kind: str  # 'range' | 'batch'
    payload: tuple  # vertices (range) or Task.encode() blobs (batch)
    origin: str = "spawn"  # 'spawn' | 'remainder' | 'steal'

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class _ClusterSlot(WorkerSlot):
    """Master-side worker slot plus the cluster-only wiring fields."""

    hello: Hello | None = None
    stealing_from: bool = False  # a StealRequest is outstanding


class ClusterMaster:
    """Coordinator of one distributed mining job.

    `run()` drives the job to completion and returns the same
    :class:`MiningRunResult` as every other executor. `start()` may be
    called first to learn the bound address (ephemeral-port launchers).
    """

    def __init__(
        self,
        graph,
        app,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        num_workers: int | None = None,
        on_progress=None,
    ):
        self.graph = graph
        self.app = ensure_app(app)
        self.config = config
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Live-progress callback, called with a ProgressSnapshot every
        #: config.progress_interval seconds (1s default when a callback
        #: or tracer is attached); StatusRequest peers get the same
        #: snapshot on demand.
        self.on_progress = on_progress
        self._run_start = time.perf_counter()
        self.num_workers = num_workers or config.resolved_num_procs
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        try:
            self._app_blob = pickle.dumps(app, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"the cluster backend ships the app to every worker, but "
                f"{type(app).__name__} is not picklable: {exc}. Keep engine "
                f"apps free of locks, open files, and lambdas."
            ) from exc
        self._graph_blob: bytes | None = None
        self._host = host
        self._port = port
        self.metrics = EngineMetrics()
        self.progress: dict[int, ProgressReport] = {}
        self.quarantined: list[_WorkUnit] = []
        # -- the shared coordination control plane -------------------------
        self.ledger: WorkLedger[_WorkUnit] = WorkLedger(
            config.max_attempts,
            key=lambda unit: unit.work_id,
            size=lambda unit: unit.size,
            lease_window=config.lease_window,
        )
        self.registry = WorkerRegistry(metrics=self.metrics, tracer=self.tracer)
        self._retries: RetryPolicy[_WorkUnit] = RetryPolicy(config.retry_backoff)
        self._folder = ResultFolder(
            self.app.sink, self.ledger, metrics=self.metrics, tracer=self.tracer
        )
        self._pending: list[_WorkUnit] = []
        self._work_ids = itertools.count()
        self._steal_ids = itertools.count()
        self._pending_steals: dict[int, tuple[int, int, int]] = {}
        # -- wiring --------------------------------------------------------
        self._inbox: queue.Queue = queue.Queue()
        self._by_channel: dict[StreamChannel, _ClusterSlot] = {}
        self._lsock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._accepting = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._lsock is None:
            raise RuntimeError("master not started; call start() first")
        host, port = self._lsock.getsockname()[:2]
        return host, port

    def start(self) -> tuple[str, int]:
        """Bind + listen + start accepting registrations; returns (host, port)."""
        if self._lsock is not None:
            return self.address
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind((self._host, self._port))
        lsock.listen(self.num_workers + 8)
        self._lsock = lsock
        self._accepting = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-master-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        while self._accepting:
            try:
                conn, _addr = self._lsock.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = StreamChannel(MessageStream(conn))
            threading.Thread(
                target=self._read_loop, args=(channel,),
                name="cluster-master-reader", daemon=True,
            ).start()

    def _read_loop(self, channel: StreamChannel) -> None:
        while True:
            try:
                msg = channel.recv()
            except ChannelClosed as exc:  # torn frame → treat as disconnect
                warnings.warn(
                    f"dropping connection {channel.peer}: {exc}", RuntimeWarning
                )
                msg = None
            self._inbox.put((channel, msg))
            if msg is None:
                return

    # -- the work ledger ---------------------------------------------------

    def _build_work(self) -> None:
        """Cut the spawn-vertex range into leasable chunks.

        The job's partition strategy decides which worker *should* own
        which vertices; chunks of the per-worker parts are interleaved
        so that with fewer live workers than expected the load still
        spreads.
        """
        parts = make_partitioner(
            self.config.partition, self.graph, self.num_workers
        ).parts()
        n_vertices = sum(len(p) for p in parts)
        chunk = self.config.cluster_chunk_size or max(
            1, -(-n_vertices // (self.num_workers * _UNITS_PER_WORKER))
        )
        chunked = [
            [part[i: i + chunk] for i in range(0, len(part), chunk)]
            for part in parts
        ]
        for round_ in itertools.zip_longest(*chunked):
            for vertices in round_:
                if vertices:
                    self._pending.append(
                        _WorkUnit(
                            work_id=next(self._work_ids),
                            kind="range",
                            payload=tuple(vertices),
                        )
                    )

    def _alive(self) -> list[_ClusterSlot]:
        return self.registry.alive()  # type: ignore[return-value]

    def _pump(self) -> None:
        """Lease pending units to workers with open window slots."""
        while self._pending:
            targets = sorted(
                (w for w in self._alive() if self.ledger.has_window(w.worker_id)),
                key=lambda w: (self.ledger.open_count(w.worker_id), w.worker_id),
            )
            if not targets:
                return
            progressed = False
            for worker in targets:
                if not self._pending:
                    return
                # A send failure inside _lease fails that worker and
                # re-pends its units, so re-check before each grant: the
                # sorted snapshot may hold a worker that just died.
                if not worker.alive or not self.ledger.has_window(
                    worker.worker_id
                ):
                    continue
                self._lease(self._pending.pop(0), worker)
                progressed = True
            if not progressed:
                return

    def _lease(
        self, unit: _WorkUnit, worker: _ClusterSlot, enforce_window: bool = True
    ) -> None:
        self.ledger.grant(
            unit.work_id, worker.worker_id, [unit], time.monotonic(),
            self.config.lease_timeout(unit.size),
            enforce_window=enforce_window,
        )
        if unit.kind == "range":
            msg = SpawnRange(work_id=unit.work_id, vertices=unit.payload)
        else:
            msg = TaskBatch(
                work_id=unit.work_id, tasks=unit.payload, origin=unit.origin
            )
        self._send(worker, msg)

    def _send(self, worker: _ClusterSlot, message) -> None:
        try:
            worker.channel.send(message)
        except ChannelClosed:
            self._fail_worker(worker, "send failed (connection lost)")

    # -- failure recovery --------------------------------------------------

    def _fail_worker(self, worker: _ClusterSlot, reason: str) -> None:
        if not self.registry.fail(worker, reason):
            return  # already dead
        # Outstanding steal requests to/for this worker are void; the
        # donor's queue state is gone with it anyway.
        self._pending_steals = {
            rid: (src, dst, n)
            for rid, (src, dst, n) in self._pending_steals.items()
            if src != worker.worker_id and dst != worker.worker_id
        }
        now = time.monotonic()
        for lease in self.ledger.leases_for(worker.worker_id):
            reclaim_lease(
                self.ledger, lease, self._retries, now,
                metrics=self.metrics, tracer=self.tracer,
                on_quarantine=self._on_quarantine,
            )

    def _on_quarantine(self, unit: _WorkUnit, attempts: int) -> None:
        self.quarantined.append(unit)

    def _check_heartbeats(self, now: float) -> None:
        for worker, reason in self.registry.stale(
            now, self.config.heartbeat_timeout
        ):
            self._fail_worker(worker, reason)

    # -- stealing ----------------------------------------------------------

    def _plan_steals(self) -> None:
        alive = sorted(self._alive(), key=lambda w: w.worker_id)
        if len(alive) < 2 or not self.config.use_stealing:
            return
        counts = [w.pending_big for w in alive]
        for move in plan_steals(counts, self.config.batch_size):
            donor, recipient = alive[move.src], alive[move.dst]
            if donor.stealing_from:
                continue  # one outstanding request per donor
            self.metrics.steals_planned += 1
            self.tracer.emit(
                "steal_planned", -1, donor.worker_id,
                detail=f"dst=m{recipient.worker_id} count={move.count}",
            )
            request_id = next(self._steal_ids)
            self._pending_steals[request_id] = (
                donor.worker_id, recipient.worker_id, move.count
            )
            donor.stealing_from = True
            self._send(donor, StealRequest(request_id=request_id, count=move.count))

    def _handle_steal_grant(self, worker: _ClusterSlot, msg: StealGrant) -> None:
        entry = self._pending_steals.pop(msg.request_id, None)
        worker.stealing_from = False
        if entry is None:
            return  # request voided (a party died); blobs re-mine via leases
        _src, dst, _count = entry
        if not msg.tasks:
            return
        self.metrics.steals += 1
        self.metrics.stolen_tasks += len(msg.tasks)
        self.metrics.steals_sent += len(msg.tasks)
        if self.tracer.enabled:
            for blob in msg.tasks:
                self.tracer.emit(
                    "steal_sent", Task.decode(blob).task_id, worker.worker_id,
                    detail=f"dst=m{dst}",
                )
        unit = _WorkUnit(
            work_id=next(self._work_ids),
            kind="batch",
            payload=tuple(msg.tasks),
            origin="steal",
        )
        recipient = self.registry.get(dst)
        if recipient is not None and recipient.alive:
            # A stolen batch must land on its planned recipient even if
            # that briefly over-commits the window — that is what the
            # ledger's enforce_window escape hatch exists for.
            self._lease(unit, recipient, enforce_window=False)
            self.metrics.steals_received += len(msg.tasks)
            if self.tracer.enabled:
                for blob in msg.tasks:
                    self.tracer.emit(
                        "steal_received", Task.decode(blob).task_id, dst,
                        detail=f"from=m{worker.worker_id}",
                    )
                    self.tracer.emit(
                        "steal", Task.decode(blob).task_id, dst,
                        detail=f"from=m{worker.worker_id}",
                    )
        else:
            # Recipient died while the grant was in flight: the batch is
            # ordinary pending work now.
            self._pending.insert(0, unit)
            self._pump()

    # -- live progress -----------------------------------------------------

    def status_snapshot(self) -> ProgressSnapshot:
        """One live-progress snapshot of the job, as the master sees it.

        ``tasks_pending``/``tasks_leased`` count master-side work units
        (spawn-range chunks and task batches); ``tasks_done`` is executed
        tasks as reported by worker ProgressReports.
        """
        return ProgressSnapshot(
            wall_seconds=time.perf_counter() - self._run_start,
            tasks_pending=len(self._pending),
            tasks_leased=self.ledger.leased_task_count(),
            tasks_done=sum(p.tasks_executed for p in self.progress.values()),
            candidates=len(self.app.sink),
            workers_alive=len(self._alive()),
            workers_died=self.metrics.workers_died,
        )

    def _progress_interval(self) -> float:
        """Seconds between progress emissions; 0 disables them."""
        if self.config.progress_interval:
            return self.config.progress_interval
        if self.on_progress is not None or self.tracer.enabled:
            return 1.0
        return 0.0

    def _emit_progress(self) -> None:
        snapshot = self.status_snapshot()
        self.tracer.emit("progress", -1, detail=progress_detail(snapshot))
        if self.on_progress is not None:
            self.on_progress(snapshot)

    def _reply_status(self, channel: StreamChannel) -> None:
        s = self.status_snapshot()
        try:
            channel.send(
                StatusReply(
                    wall_seconds=s.wall_seconds,
                    tasks_pending=s.tasks_pending,
                    tasks_leased=s.tasks_leased,
                    tasks_done=s.tasks_done,
                    candidates=s.candidates,
                    workers_alive=s.workers_alive,
                    workers_died=s.workers_died,
                )
            )
        except ChannelClosed:
            channel.close()  # observer gone before the reply; no worker to fail

    # -- message handling --------------------------------------------------

    def _handle(self, channel: StreamChannel, msg, now: float) -> None:
        worker = self._by_channel.get(channel)
        if msg is None:
            if worker is not None:
                self._fail_worker(worker, "connection closed")
            else:
                channel.close()
            return
        if isinstance(msg, Hello):
            self._register(channel, msg, now)
            return
        if isinstance(msg, StatusRequest):
            # Served for any connected peer — observers query progress
            # without registering as a worker.
            self._reply_status(channel)
            return
        if worker is None:
            warnings.warn(
                f"message {type(msg).__name__} from unregistered peer "
                f"{channel.peer}; dropping",
                RuntimeWarning,
            )
            return
        self.registry.heartbeat(worker, now)
        if isinstance(msg, Heartbeat):
            worker.pending_big = msg.pending_big
            worker.active = msg.active
        elif isinstance(msg, ProgressReport):
            self.progress[worker.worker_id] = msg
        elif isinstance(msg, ResultBatch):
            self._handle_results(worker, msg)
        elif isinstance(msg, StealGrant):
            self._handle_steal_grant(worker, msg)
        elif isinstance(msg, Goodbye):
            self._handle_goodbye(worker, msg)

    def _register(self, channel: StreamChannel, hello: Hello, now: float) -> None:
        worker = self.registry.add(
            _ClusterSlot(
                worker_id=self.registry.new_id(),
                channel=channel,
                hello=hello,
                last_seen=now,
            )
        )
        self._by_channel[channel] = worker
        graph_blob = None
        if hello.needs_graph:
            if self._graph_blob is None:
                self._graph_blob = pickle.dumps(
                    self.graph, protocol=pickle.HIGHEST_PROTOCOL
                )
            graph_blob = self._graph_blob
        self._send(
            worker,
            Welcome(
                worker_id=worker.worker_id,
                config=self.config,
                app_blob=self._app_blob,
                graph_blob=graph_blob,
                trace=self.tracer.enabled,
            ),
        )
        self._pump()

    def _handle_results(self, worker: _ClusterSlot, msg: ResultBatch) -> None:
        # Candidates are folded even from stale/dead senders: dedup makes
        # them idempotent, and dropping mined truth would be wasteful.
        self._folder.fold(msg.candidates)
        self._folder.forward_events(worker.worker_id, msg.events)
        worker.active = msg.active
        for blob in msg.remainders:
            self._pending.append(
                _WorkUnit(
                    work_id=next(self._work_ids),
                    kind="batch",
                    payload=(blob,),
                    origin="remainder",
                )
            )
        for work_id in msg.completed:
            # A stale ack (unit reclaimed, possibly re-leased elsewhere)
            # is dropped by the folder — at-least-once bookkeeping.
            self._folder.complete(work_id, worker_id=worker.worker_id)
        self._pump()

    def _handle_goodbye(self, worker: _ClusterSlot, msg: Goodbye) -> None:
        # A clean exit, not a death: no workers_died accounting, so this
        # deliberately bypasses registry.fail().
        self.metrics.merge(msg.metrics)
        worker.alive = False
        if worker.channel is not None:
            worker.channel.close()

    # -- the run loop ------------------------------------------------------

    def run(self, timeout: float | None = None) -> MiningRunResult:
        """Drive the job to completion; returns the standard run result."""
        start = time.perf_counter()
        self._run_start = start
        self.start()
        self._build_work()
        deadline = None if timeout is None else time.monotonic() + timeout
        next_steal = time.monotonic() + self.config.steal_period_seconds
        progress_every = self._progress_interval()
        last_progress = time.monotonic()
        registered_any = False
        try:
            while self._pending or self.ledger or self._retries:
                try:
                    channel, msg = self._inbox.get(timeout=0.02)
                except queue.Empty:
                    channel = None
                now = time.monotonic()
                if channel is not None:
                    self._handle(channel, msg, now)
                    # Drain whatever else is queued before housekeeping.
                    while True:
                        try:
                            channel, msg = self._inbox.get_nowait()
                        except queue.Empty:
                            break
                        self._handle(channel, msg, now)
                self._check_heartbeats(now)
                # Reclaimed units sit out their exponential backoff in the
                # retry policy's heap; only the run loop moves them back
                # to pending — an idle survivor generates no result
                # traffic, so the loop itself must offer the work around.
                for unit, _attempts in self._retries.pop_due(now):
                    self._pending.insert(0, unit)
                self._pump()
                if progress_every and now - last_progress >= progress_every:
                    self._emit_progress()
                    last_progress = now
                if now >= next_steal:
                    next_steal = now + self.config.steal_period_seconds
                    self._plan_steals()
                # Declare the job lost only once the full expected
                # complement has registered and then died; with stragglers
                # still connecting, a late joiner may yet rescue the work
                # (and the deadline bounds the wait regardless).
                registered_any = registered_any or (
                    len(self.registry) >= self.num_workers
                )
                if registered_any and not self._alive():
                    raise RuntimeError(
                        f"all cluster workers died with work outstanding "
                        f"({len(self._pending)} pending, "
                        f"{len(self.ledger)} leased, "
                        f"{len(self.quarantined)} quarantined)"
                    )
                if deadline is not None and now > deadline:
                    raise RuntimeError(
                        f"cluster job exceeded its {timeout}s deadline "
                        f"({len(self._pending)} pending, "
                        f"{len(self.ledger)} leased)"
                    )
            self._shutdown_workers()
        finally:
            self._close()
        from ...core.postprocess import postprocess_results

        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        self.metrics.wall_seconds = time.perf_counter() - start
        return MiningRunResult(
            maximal=maximal, candidates=candidates, metrics=self.metrics
        )

    def _shutdown_workers(self) -> None:
        """Job done: Shutdown → collect Goodbyes (metrics) → close."""
        for worker in self._alive():
            self._send(worker, Shutdown())
        deadline = time.monotonic() + _GOODBYE_GRACE
        while self._alive() and time.monotonic() < deadline:
            try:
                channel, msg = self._inbox.get(
                    timeout=max(0.01, deadline - time.monotonic())
                )
            except queue.Empty:
                continue
            self._handle(channel, msg, time.monotonic())
        for worker in self._alive():
            warnings.warn(
                f"worker {worker.worker_id} never said Goodbye; its final "
                f"metrics are lost",
                RuntimeWarning,
            )
            worker.alive = False
            if worker.channel is not None:
                worker.channel.close()

    def _close(self) -> None:
        self._accepting = False
        if self._lsock is not None:
            try:
                self._lsock.close()
            except OSError:
                pass
        for worker in self.registry.slots():
            if worker.channel is not None:
                worker.channel.close()
