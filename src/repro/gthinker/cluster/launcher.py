"""Launchers for the cluster runtime.

:func:`mine_cluster` is the one-call localhost form: it binds a master
on an ephemeral port, forks/spawns the workers as real OS processes
that connect back over TCP, and returns the standard
:class:`~repro.gthinker.engine.MiningRunResult`. It is what
``EngineConfig(backend='cluster')`` dispatches to and what the tests
drive; multi-host deployments run the same master and workers via the
``repro cluster-master`` / ``repro cluster-worker`` CLI entry points
instead (see docs/BACKENDS.md).

Everything a worker needs ships over the socket — config, app, and its
*partition* of the vertex table (never the whole graph; non-owned
vertices are fetched on demand through VertexRequest/VertexReply) — so
the worker entry function is trivially spawn-safe: it closes over
nothing but an address.
"""

from __future__ import annotations

import multiprocessing
import time

from ...core.options import DEFAULT_OPTIONS, ResultSink
from ...graph.adjacency import Graph
from ..app_quasiclique import QuasiCliqueApp
from ..chaos import FaultInjection
from ..config import EngineConfig
from ..engine import MiningRunResult
from ..tracing import NullTracer, Tracer
from .master import ClusterMaster
from .worker import ClusterWorker

__all__ = ["mine_cluster", "run_cluster_app"]


def _worker_entry(host: str, port: int, injection: FaultInjection | None) -> None:
    """Process target for launched workers (spawn-safe: address only)."""
    ClusterWorker(host, port, fault_injection=injection).run()


def run_cluster_app(
    graph: Graph,
    app,
    config: EngineConfig,
    tracer: Tracer | NullTracer | None = None,
    num_workers: int | None = None,
    start_method: str | None = None,
    fault_injection: FaultInjection | None = None,
    timeout: float | None = None,
    on_progress=None,
) -> MiningRunResult:
    """Run `app` on a localhost cluster: one master, N worker processes.

    `fault_injection` arms exactly one worker (by launch index) with the
    chaos-testing kill switch; the master's lease/retry machinery is
    expected to absorb the death. `timeout` bounds the whole job in
    wall-clock seconds (RuntimeError past it) so a scheduling bug can
    never hang a test run forever.
    """
    num_workers = num_workers or config.resolved_num_procs
    available = multiprocessing.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in available else "spawn"
    elif start_method not in available:
        raise ValueError(
            f"start method {start_method!r} not available here "
            f"(have: {', '.join(available)})"
        )
    master = ClusterMaster(
        graph, app, config, tracer=tracer, host="127.0.0.1", port=0,
        num_workers=num_workers, on_progress=on_progress,
    )
    host, port = master.start()
    ctx = multiprocessing.get_context(start_method)
    procs = []
    for index in range(num_workers):
        injection = (
            fault_injection
            if fault_injection is not None and fault_injection.worker_id == index
            else None
        )
        proc = ctx.Process(
            target=_worker_entry,
            args=(host, port, injection),
            name=f"cluster-worker-{index}",
            daemon=True,
        )
        proc.start()
        procs.append(proc)
    try:
        return master.run(timeout=timeout)
    finally:
        deadline = time.monotonic() + 5.0
        for proc in procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)


def mine_cluster(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig | None = None,
    options=None,
    tracer: Tracer | NullTracer | None = None,
    num_workers: int | None = None,
    start_method: str | None = None,
    fault_injection: FaultInjection | None = None,
    timeout: float | None = None,
    on_progress=None,
) -> MiningRunResult:
    """Convenience front-end: mine `graph` on a localhost TCP cluster."""
    config = config or EngineConfig(backend="cluster")
    app = QuasiCliqueApp(
        gamma=gamma,
        min_size=min_size,
        sink=ResultSink(),
        options=options or DEFAULT_OPTIONS,
    )
    return run_cluster_app(
        graph, app, config, tracer=tracer, num_workers=num_workers,
        start_method=start_method, fault_injection=fault_injection,
        timeout=timeout, on_progress=on_progress,
    )
