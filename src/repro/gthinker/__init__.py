"""The reforged G-thinker runtime and the quasi-clique application."""

from .aggregator import Aggregator, MaxSetAggregator, SumAggregator
from .app_maxclique import (
    MaxCliqueApp,
    SharedIncumbent,
    find_max_clique_parallel,
    find_max_clique_simulated,
)
from .app_protocol import ComputeContext, GThinkerApp, ensure_app, gthinker_app, registered_apps
from .app_triangles import TriangleCountApp, count_triangles_parallel
from .app_quasiclique import QuasiCliqueApp
from .chaos import FaultInjection
from .clock import AlwaysExpired, NeverExpires, OpBudget, WallClockBudget, make_budget
from .cluster import ClusterMaster, ClusterWorker, mine_cluster, run_cluster_app
from .config import EngineConfig
from .decompose import size_threshold_split, time_delayed_mine
from .engine import GThinkerEngine, MiningRunResult, mine_parallel
from .engine_mp import MultiprocessEngine, mine_multiprocess
from .scheduler import (
    Lease,
    MachineState,
    QuantumResult,
    SchedulerCore,
    TaskLeaseTable,
    ThreadSlot,
    build_machines,
    collect_machine_metrics,
)
from .simulation import SimOutcome, SimulatedClusterEngine, simulate_app, simulate_cluster
from .metrics import EngineMetrics, TaskRecord
from .spill import SpillableQueue, SpillFileList
from .stealing import StealMove, plan_steals
from .partition import Partitioner, make_partitioner
from .task import ComputeOutcome, Task
from .tracing import NullTracer, TraceEvent, Tracer
from .vertex_store import (
    DataService,
    LocalVertexTable,
    RemoteGraphAccess,
    RemoteVertexCache,
    SharedGraphAccess,
    owner_of,
)

__all__ = [
    "Aggregator",
    "AlwaysExpired",
    "MaxSetAggregator",
    "SumAggregator",
    "TriangleCountApp",
    "count_triangles_parallel",
    "MaxCliqueApp",
    "SharedIncumbent",
    "SimOutcome",
    "SimulatedClusterEngine",
    "find_max_clique_parallel",
    "find_max_clique_simulated",
    "simulate_app",
    "simulate_cluster",
    "ComputeContext",
    "ComputeOutcome",
    "GThinkerApp",
    "MachineState",
    "QuantumResult",
    "SchedulerCore",
    "ThreadSlot",
    "build_machines",
    "collect_machine_metrics",
    "ensure_app",
    "gthinker_app",
    "registered_apps",
    "ClusterMaster",
    "ClusterWorker",
    "mine_cluster",
    "run_cluster_app",
    "DataService",
    "EngineConfig",
    "EngineMetrics",
    "FaultInjection",
    "Lease",
    "TaskLeaseTable",
    "GThinkerEngine",
    "LocalVertexTable",
    "MiningRunResult",
    "MultiprocessEngine",
    "NeverExpires",
    "OpBudget",
    "QuasiCliqueApp",
    "RemoteGraphAccess",
    "RemoteVertexCache",
    "SharedGraphAccess",
    "SpillFileList",
    "SpillableQueue",
    "StealMove",
    "Task",
    "Partitioner",
    "make_partitioner",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "TaskRecord",
    "WallClockBudget",
    "make_budget",
    "mine_multiprocess",
    "mine_parallel",
    "owner_of",
    "plan_steals",
    "size_threshold_split",
    "time_delayed_mine",
]
