"""Timed spans over the existing trace channel.

A *span* is one timed occurrence of a named hot-path phase, carried as
a ``span_begin``/``span_end`` event pair through the same
:class:`~repro.gthinker.tracing.Tracer` every other scheduling event
rides. Both events carry the phase name and a monotonic-clock reading
in their ``detail`` (``name=<phase> t=<monotonic>``; the end event adds
``dur=<seconds>``), so a trace alone reconstructs where time went —
per task, per worker, per phase — without any side channel.

Spans are emitted *retroactively*: the instrumentation site measures
``t0``/``t1`` around the work and emits both events once the phase
completed (:func:`emit_span`). That buys three properties the contract
in docs/OBSERVABILITY.md relies on:

* **pairing** — a ``span_begin`` is always immediately followed by its
  ``span_end`` in the same ``(machine, thread)`` stream, so spans pair
  and nest trivially (no crash can orphan a begin);
* **no no-op storms** — sites that run very often but usually do
  nothing (spill refills on a hot pick loop) emit only when work
  actually happened;
* **zero cost when tracing is off** — every site guards its
  ``time.monotonic()`` calls behind ``tracer.enabled``, so the
  :class:`~repro.gthinker.tracing.NullTracer` fast path stays clean.

The begin/end timestamps still carry the real interval, so timeline
reconstruction is exact even though the events are adjacent.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["SPAN_NAMES", "emit_span", "parse_detail", "span"]

#: The instrumented hot-path phases (the observability contract's span
#: vocabulary; docs/OBSERVABILITY.md documents each emitting site).
SPAN_NAMES = (
    "root_spawn",  # spawn_batch / SpawnRange: tasks minted from the vertex table
    "batch_mine",  # one task's compute quanta (per task_id; feeds top-K slowest)
    "spill_refill",  # a queue reloaded one batch from its L_big/L_small spill
    "steal_transfer",  # big tasks moved between machines/workers
    "lease_reclaim",  # a failed lease split into retries and quarantine
    "result_fold",  # worker candidates folded into the coordinator sink
)


def emit_span(
    tracer: Any,
    name: str,
    t0: float,
    t1: float,
    *,
    task_id: int = -1,
    machine: int = -1,
    thread: int = -1,
    detail: str = "",
) -> None:
    """Emit one completed span as a begin/end event pair.

    `t0`/`t1` are ``time.monotonic()`` readings taken by the caller
    around the spanned work (measure only when ``tracer.enabled``).
    Extra ``detail`` is appended verbatim to both events after the
    standard ``name=``/``t=``/``dur=`` fields.
    """
    if not tracer.enabled:
        return
    extra = f" {detail}" if detail else ""
    tracer.emit(
        "span_begin", task_id, machine=machine, thread=thread,
        detail=f"name={name} t={t0:.6f}{extra}",
    )
    tracer.emit(
        "span_end", task_id, machine=machine, thread=thread,
        detail=f"name={name} t={t1:.6f} dur={t1 - t0:.6f}{extra}",
    )


@contextmanager
def span(
    tracer: Any,
    name: str,
    *,
    task_id: int = -1,
    machine: int = -1,
    thread: int = -1,
    detail: str = "",
) -> Iterator[None]:
    """Context-manager form of :func:`emit_span` for non-hot-path sites.

    The span is emitted only on clean exit — an exception inside the
    block produces no events, keeping the begin/end pairing invariant
    unconditional.
    """
    if not tracer.enabled:
        yield
        return
    t0 = time.monotonic()
    yield
    emit_span(
        tracer, name, t0, time.monotonic(),
        task_id=task_id, machine=machine, thread=thread, detail=detail,
    )


def parse_detail(detail: str) -> dict[str, str]:
    """Parse a ``key=value`` detail string into a dict.

    Tolerant of free-text tails: tokens without ``=`` are ignored, so it
    is safe on every trace kind's detail, not just span events.
    """
    out: dict[str, str] = {}
    for token in detail.split():
        key, sep, value = token.partition("=")
        if sep:
            out[key] = value
    return out
