"""One-shot live-status query against a running cluster master.

The master answers a :class:`~repro.gthinker.cluster.protocol.StatusRequest`
from *any* connected peer — before registration — with one
:class:`~repro.gthinker.cluster.protocol.StatusReply`. That makes "how
far along is the job" a single round trip from anywhere that can reach
the master's port: connect, ask, read, disconnect. No worker identity,
no lease, no side effects on the run.

``repro cluster-status HOST PORT`` (see :mod:`repro.cli`) is the
human-facing wrapper around :func:`query_master_status`.
"""

from __future__ import annotations

import socket

from ..cluster.protocol import MessageStream, ProtocolError, StatusReply, StatusRequest
from .progress import ProgressSnapshot

__all__ = ["query_master_status", "snapshot_from_reply"]


def snapshot_from_reply(reply: StatusReply) -> ProgressSnapshot:
    """Convert a wire reply back into the obs-layer snapshot."""
    return ProgressSnapshot(
        wall_seconds=reply.wall_seconds,
        tasks_pending=reply.tasks_pending,
        tasks_leased=reply.tasks_leased,
        tasks_done=reply.tasks_done,
        candidates=reply.candidates,
        workers_alive=reply.workers_alive,
        workers_died=reply.workers_died,
    )


def query_master_status(
    host: str, port: int, timeout: float = 10.0
) -> ProgressSnapshot:
    """Ask a running master for one progress snapshot.

    Raises ``OSError`` when the master is unreachable and
    :class:`ProtocolError` when it answers with anything other than a
    ``StatusReply`` (e.g. a version-mismatched runtime).
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        stream = MessageStream(sock)
        stream.send(StatusRequest())
        reply = stream.recv()
    if reply is None:
        raise ProtocolError(
            f"master at {host}:{port} closed the connection without replying"
        )
    if not isinstance(reply, StatusReply):
        raise ProtocolError(
            f"master at {host}:{port} answered a StatusRequest with "
            f"{type(reply).__name__}, expected StatusReply"
        )
    return snapshot_from_reply(reply)
