"""Trace analysis: fold a run's JSONL trace into a readable report.

``repro trace-report <run.jsonl>`` (wired through :mod:`repro.cli`)
reads a trace written by ``Tracer.dump_jsonl`` — any backend, any mix
of scheduling, fault, steal, span, and progress events — and folds it
into:

* a **per-worker timeline** — one row per ``(machine, thread)`` event
  stream: event count, executes/finishes/spawns, mining seconds (sum of
  its ``batch_mine`` span durations), spill refills, and the stream's
  first/last sequence numbers;
* a **phase-time breakdown** — count and total seconds per span name
  (see :data:`~repro.gthinker.obs.spans.SPAN_NAMES`);
* **fault and steal counts** — worker deaths, retried/quarantined task
  counts (summing the ``size=`` field reclaim events carry, so cluster
  work units of several tasks count exactly as the run's metrics did),
  and planned/sent/received steals;
* **remote vertex fetch counts** — ``vertex_requested`` /
  ``vertex_served`` events and the vertex totals their ``size=``
  payloads carry (the distributed vertex store's wire traffic);
* a **top-K slowest tasks** table from per-task ``batch_mine`` time.

``--json`` emits the same report in the ``backend_scaling`` JSON shape
(``instance`` / ``cpu_count`` / ``rows`` + extra sections) so
benchmarks and CI can consume it.

The report is computed from the trace alone — no metrics file, no
source run — which is the point: the acceptance bar for this module is
that fault counters reproduced from a chaos run's trace equal the run's
own ``EngineMetrics`` exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field

from ..tracing import KINDS
from .spans import parse_detail

__all__ = [
    "FaultCounts",
    "FetchCounts",
    "TraceReport",
    "WorkerTimeline",
    "build_report",
    "format_report",
    "load_trace",
    "report_cli",
    "report_to_json",
]

#: Fallback size for retry/quarantine events whose detail lacks size=.
_DEFAULT_SIZE = 1


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read one ``Tracer.dump_jsonl`` file; skips blank lines."""
    events: list[dict] = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not a JSON trace line: {exc}")
            events.append(event)
    return events


def stream_label(machine: int, thread: int) -> str:
    """Human label of one event stream (worker timeline row key).

    Worker-origin events carry ``machine >= 0`` (the unified attribution
    rule); control-plane events carry ``machine == -1``.
    """
    if machine < 0:
        return "coordinator"
    if thread < 0:
        return f"m{machine}"
    return f"m{machine}/t{thread}"


@dataclass
class WorkerTimeline:
    """One event stream's summary row."""

    worker: str
    events: int = 0
    executes: int = 0
    finishes: int = 0
    spawns: int = 0
    mine_seconds: float = 0.0
    mine_spans: int = 0
    spill_refills: int = 0
    first_seq: int = -1
    last_seq: int = -1


@dataclass
class FaultCounts:
    """Fault and steal accounting reproduced from the trace alone."""

    workers_died: int = 0
    tasks_retried: int = 0
    tasks_quarantined: int = 0
    steals_planned: int = 0
    steals_sent: int = 0
    steals_received: int = 0
    stale_drops: int = 0  # not traced; always 0 (kept for schema clarity)


@dataclass
class FetchCounts:
    """Distributed-vertex-store traffic reproduced from the trace.

    ``vertex_requested`` is worker-side (one batched VertexRequest),
    ``vertex_served`` is master-side (one VertexReply). Served can
    exceed requested under duplicated frames — the master re-serves
    statelessly and the worker drops the duplicate reply.
    """

    requests: int = 0
    served: int = 0
    vertices_requested: int = 0
    vertices_served: int = 0


@dataclass
class SlowTask:
    """One entry of the top-K slowest-tasks table."""

    task_id: int
    seconds: float
    worker: str
    spans: int


@dataclass
class TraceReport:
    """Everything ``trace-report`` derives from one trace file."""

    path: str
    events: int
    kinds: dict[str, int]
    unknown_kinds: dict[str, int]
    workers: list[WorkerTimeline]
    phases: dict[str, dict[str, float]]  # name -> {count, seconds}
    faults: FaultCounts
    fetches: FetchCounts
    slowest: list[SlowTask]
    progress_samples: int = 0
    last_progress: dict[str, str] = field(default_factory=dict)


def build_report(events: list[dict], path: str = "<trace>", top_k: int = 10) -> TraceReport:
    """Fold raw trace events into a :class:`TraceReport`."""
    kinds: dict[str, int] = {}
    unknown: dict[str, int] = {}
    streams: dict[tuple[int, int], WorkerTimeline] = {}
    phases: dict[str, dict[str, float]] = {}
    faults = FaultCounts()
    fetches = FetchCounts()
    per_task: dict[int, dict] = {}
    progress_samples = 0
    last_progress: dict[str, str] = {}

    for event in events:
        kind = event.get("kind", "?")
        machine = int(event.get("machine", -1))
        thread = int(event.get("thread", -1))
        seq = int(event.get("seq", -1))
        task_id = int(event.get("task_id", -1))
        detail = event.get("detail", "")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind not in KINDS:
            unknown[kind] = unknown.get(kind, 0) + 1

        # Control-plane events (machine == -1) use thread for *about-whom*
        # attribution, not as a stream id — fold them into one row.
        key = (machine, thread) if machine >= 0 else (-1, -1)
        row = streams.get(key)
        if row is None:
            row = streams[key] = WorkerTimeline(worker=stream_label(machine, thread))
        row.events += 1
        if row.first_seq < 0 or seq < row.first_seq:
            row.first_seq = seq
        row.last_seq = max(row.last_seq, seq)

        if kind == "execute":
            row.executes += 1
        elif kind == "finish":
            row.finishes += 1
        elif kind == "spawn":
            row.spawns += 1
        elif kind == "worker_died":
            faults.workers_died += 1
        elif kind in ("task_retried", "task_quarantined"):
            size = int(parse_detail(detail).get("size", _DEFAULT_SIZE))
            if kind == "task_retried":
                faults.tasks_retried += size
            else:
                faults.tasks_quarantined += size
        elif kind == "steal_planned":
            faults.steals_planned += 1
        elif kind == "steal_sent":
            faults.steals_sent += 1
        elif kind == "steal_received":
            faults.steals_received += 1
        elif kind == "vertex_requested":
            fetches.requests += 1
            fetches.vertices_requested += int(
                parse_detail(detail).get("size", _DEFAULT_SIZE)
            )
        elif kind == "vertex_served":
            fetches.served += 1
            fetches.vertices_served += int(
                parse_detail(detail).get("size", _DEFAULT_SIZE)
            )
        elif kind == "progress":
            progress_samples += 1
            last_progress = parse_detail(detail)
        elif kind == "span_end":
            fields = parse_detail(detail)
            name = fields.get("name", "?")
            try:
                dur = float(fields.get("dur", "0"))
            except ValueError:
                dur = 0.0
            phase = phases.setdefault(name, {"count": 0, "seconds": 0.0})
            phase["count"] += 1
            phase["seconds"] += dur
            if name == "batch_mine":
                row.mine_seconds += dur
                row.mine_spans += 1
                entry = per_task.setdefault(
                    task_id, {"seconds": 0.0, "worker": row.worker, "spans": 0}
                )
                entry["seconds"] += dur
                entry["spans"] += 1
            elif name == "spill_refill":
                row.spill_refills += 1

    slowest = sorted(
        (
            SlowTask(
                task_id=tid, seconds=entry["seconds"],
                worker=entry["worker"], spans=entry["spans"],
            )
            for tid, entry in per_task.items()
        ),
        key=lambda s: (-s.seconds, s.task_id),
    )[:top_k]

    workers = sorted(streams.values(), key=lambda w: w.worker)
    return TraceReport(
        path=str(path),
        events=len(events),
        kinds=dict(sorted(kinds.items())),
        unknown_kinds=dict(sorted(unknown.items())),
        workers=workers,
        phases=dict(sorted(phases.items())),
        faults=faults,
        fetches=fetches,
        slowest=slowest,
        progress_samples=progress_samples,
        last_progress=last_progress,
    )


# -- rendering --------------------------------------------------------------


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out += [line(r) for r in rows]
    return "\n".join(out)


def format_report(report: TraceReport) -> str:
    """Render the report as the ``trace-report`` terminal output."""
    sections: list[str] = [
        f"trace: {report.path}",
        f"events: {report.events} "
        f"({len(report.kinds)} kinds"
        + (f", {sum(report.unknown_kinds.values())} unknown" if report.unknown_kinds else "")
        + ")",
    ]

    sections.append("\n== per-worker timeline ==")
    sections.append(_table(
        ["worker", "events", "executes", "finishes", "spawns",
         "mine s", "refills", "seq range"],
        [
            [
                w.worker, str(w.events), str(w.executes), str(w.finishes),
                str(w.spawns), f"{w.mine_seconds:.4f}", str(w.spill_refills),
                f"{w.first_seq}..{w.last_seq}",
            ]
            for w in report.workers
        ],
    ))

    if report.phases:
        sections.append("\n== phase time (spans) ==")
        sections.append(_table(
            ["phase", "spans", "seconds"],
            [
                [name, str(int(p["count"])), f"{p['seconds']:.4f}"]
                for name, p in sorted(
                    report.phases.items(), key=lambda kv: -kv[1]["seconds"]
                )
            ],
        ))

    f = report.faults
    sections.append("\n== faults & steals ==")
    sections.append(
        f"workers_died={f.workers_died} tasks_retried={f.tasks_retried} "
        f"tasks_quarantined={f.tasks_quarantined}\n"
        f"steals_planned={f.steals_planned} steals_sent={f.steals_sent} "
        f"steals_received={f.steals_received}"
    )

    v = report.fetches
    if v.requests or v.served:
        sections.append("\n== remote vertex fetches ==")
        sections.append(
            f"requests={v.requests} served={v.served} "
            f"vertices_requested={v.vertices_requested} "
            f"vertices_served={v.vertices_served}"
        )

    if report.slowest:
        sections.append("\n== slowest tasks (batch_mine) ==")
        sections.append(_table(
            ["task", "seconds", "worker", "spans"],
            [
                [str(s.task_id), f"{s.seconds:.4f}", s.worker, str(s.spans)]
                for s in report.slowest
            ],
        ))

    if report.progress_samples:
        tail = " ".join(f"{k}={v}" for k, v in report.last_progress.items())
        sections.append(
            f"\nprogress samples: {report.progress_samples} (last: {tail})"
        )
    return "\n".join(sections) + "\n"


def report_to_json(report: TraceReport) -> dict:
    """The ``--json`` payload, in the ``backend_scaling`` report shape."""
    return {
        "instance": {
            "trace": report.path,
            "events": report.events,
            "kinds": report.kinds,
            "unknown_kinds": report.unknown_kinds,
            "progress_samples": report.progress_samples,
        },
        "cpu_count": os.cpu_count(),
        "rows": [
            {
                "worker": w.worker,
                "events": w.events,
                "tasks_executed": w.executes,
                "tasks_finished": w.finishes,
                "tasks_spawned": w.spawns,
                "wall_seconds": w.mine_seconds,
                "mine_spans": w.mine_spans,
                "spill_refills": w.spill_refills,
            }
            for w in report.workers
        ],
        "phases": report.phases,
        "faults": {
            "workers_died": report.faults.workers_died,
            "tasks_retried": report.faults.tasks_retried,
            "tasks_quarantined": report.faults.tasks_quarantined,
            "steals_planned": report.faults.steals_planned,
            "steals_sent": report.faults.steals_sent,
            "steals_received": report.faults.steals_received,
        },
        "fetches": {
            "requests": report.fetches.requests,
            "served": report.fetches.served,
            "vertices_requested": report.fetches.vertices_requested,
            "vertices_served": report.fetches.vertices_served,
        },
        "slowest_tasks": [
            {
                "task_id": s.task_id, "seconds": s.seconds,
                "worker": s.worker, "spans": s.spans,
            }
            for s in report.slowest
        ],
    }


def report_cli(argv: list[str] | None = None) -> int:
    """``repro trace-report`` entry point."""
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine trace-report",
        description="Fold a scheduler trace (JSONL from --trace) into a "
        "per-worker timeline, phase-time breakdown, fault/steal counts, "
        "and a top-K slowest-tasks table.",
    )
    parser.add_argument("trace", help="JSONL trace file written by --trace")
    parser.add_argument("--top", type=int, default=10, metavar="K",
                        help="slowest-tasks rows to show (default: 10)")
    parser.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="FILE",
                        help="emit the report as backend_scaling-schema JSON "
                        "to FILE ('-' or no value = stdout) instead of text")
    args = parser.parse_args(argv)
    try:
        events = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = build_report(events, path=args.trace, top_k=args.top)
    if args.json is not None:
        payload = json.dumps(report_to_json(report), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
    else:
        print(format_report(report), end="")
    return 0
