"""Run telemetry over the engine's existing trace/metrics plumbing.

Three capabilities, all riding channels the engines already had
(docs/OBSERVABILITY.md is the full contract):

* **spans** — timed ``span_begin``/``span_end`` event pairs around the
  hot-path phases (:data:`~repro.gthinker.obs.spans.SPAN_NAMES`),
  emitted through the normal :class:`~repro.gthinker.tracing.Tracer`
  on every backend;
* **progress** — periodic :class:`ProgressSnapshot` emission from the
  process-pool parent and the cluster master (``progress`` trace event
  + ``on_progress`` callback + on-demand ``StatusRequest`` wire query);
* **trace-report** — ``repro trace-report run.jsonl`` folds any trace
  into per-worker timelines, phase times, fault/steal counts, and a
  slowest-tasks table.

Import note: :func:`query_master_status` lives in
:mod:`repro.gthinker.obs.status` and pulls in the cluster protocol;
it is imported lazily here so ``obs`` itself stays usable from the
leanest contexts (process-pool workers, the simulator).
"""

from __future__ import annotations

from .progress import (
    ProgressSnapshot,
    format_progress,
    progress_detail,
    progress_json,
)
from .report import (
    TraceReport,
    build_report,
    format_report,
    load_trace,
    report_cli,
    report_to_json,
)
from .spans import SPAN_NAMES, emit_span, parse_detail, span

__all__ = [
    "ProgressSnapshot",
    "SPAN_NAMES",
    "TraceReport",
    "build_report",
    "emit_span",
    "format_progress",
    "format_report",
    "load_trace",
    "parse_detail",
    "progress_detail",
    "progress_json",
    "query_master_status",
    "report_cli",
    "report_to_json",
    "span",
]


def query_master_status(host: str, port: int, timeout: float = 10.0):
    """Lazy re-export of :func:`repro.gthinker.obs.status.query_master_status`."""
    from .status import query_master_status as _query

    return _query(host, port, timeout=timeout)
