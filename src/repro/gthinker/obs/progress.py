"""Live progress snapshots from the distributed coordinators.

A :class:`ProgressSnapshot` is the coordinator's answer to "how far
along is this job right now": work-item counts by lifecycle stage,
candidates found so far, and pool liveness. The process-pool parent
and the cluster master build one every ``config.progress_interval``
seconds, then

* emit it as a ``progress`` trace event (``detail`` holds the counters
  as ``key=value`` pairs, so ``repro trace-report`` can replay the
  job's progress curve from the trace alone), and
* hand it to an ``on_progress`` callback — the CLI's ``--progress``
  flag renders it to stderr; the cluster master additionally serves it
  on demand over the wire (``StatusRequest``/``StatusReply``).

Counts are in each backend's native work granularity: *tasks* on the
process pool, master-side *work units* (spawn-range chunks / task
batches) for pending/leased on the cluster — ``tasks_done`` is always
executed tasks as reported by workers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ProgressSnapshot",
    "format_progress",
    "progress_detail",
    "progress_json",
]


@dataclass(frozen=True)
class ProgressSnapshot:
    """One moment of a running job, as its coordinator sees it."""

    #: Seconds since the coordinator's run() started (wall clock).
    wall_seconds: float
    #: Work items queued but not currently leased to any worker.
    tasks_pending: int
    #: Work items leased out and awaiting results.
    tasks_leased: int
    #: Tasks whose execution has been folded in so far.
    tasks_done: int
    #: Distinct candidate vertex sets folded into the sink so far.
    candidates: int
    #: Workers currently registered and alive.
    workers_alive: int
    #: Worker deaths accounted so far (incidents, not processes lost).
    workers_died: int = 0


def progress_detail(snapshot: ProgressSnapshot) -> str:
    """The ``progress`` trace event's detail string (``key=value`` pairs)."""
    return (
        f"wall={snapshot.wall_seconds:.3f} "
        f"pending={snapshot.tasks_pending} leased={snapshot.tasks_leased} "
        f"done={snapshot.tasks_done} candidates={snapshot.candidates} "
        f"workers={snapshot.workers_alive} died={snapshot.workers_died}"
    )


def progress_json(snapshot: ProgressSnapshot) -> dict:
    """The snapshot as a JSON-shaped dict — the wire form served by the
    mining service's ``GET /jobs/{id}`` (``progress`` object). Field
    names are the dataclass fields, so the HTTP contract is pinned to
    this module rather than re-declared in the server."""
    import dataclasses

    return dataclasses.asdict(snapshot)


def format_progress(snapshot: ProgressSnapshot) -> str:
    """Human-readable one-liner (what ``--progress`` prints to stderr)."""
    line = (
        f"progress {snapshot.wall_seconds:7.1f}s  "
        f"pending={snapshot.tasks_pending} leased={snapshot.tasks_leased} "
        f"done={snapshot.tasks_done} candidates={snapshot.candidates} "
        f"workers={snapshot.workers_alive}"
    )
    if snapshot.workers_died:
        line += f" (+{snapshot.workers_died} died)"
    return line
