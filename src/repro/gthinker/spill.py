"""Disk spilling of task batches (paper Section 5, L_small / L_big).

When a bounded task queue overflows, a batch of C tasks from its tail
is serialized to one file on local disk; files are tracked in a list
(L_small per thread-set, L_big for the global queue) and reloaded in
LIFO file order when queues run low — batched both ways to stay
IO-efficient, exactly as the paper describes.
"""

from __future__ import annotations

import os
import struct
import tempfile
import threading
import pickle
import warnings

from .task import Task

#: Spill-file framing: an 8-byte payload-length header precedes the
#: pickled batch, so a file truncated by a writer that died mid-write
#: (worker process killed, disk full) is detectable without attempting
#: to unpickle a partial stream.
_HEADER = struct.Struct("<Q")


class SpillFileList:
    """A list of spill files plus byte accounting (one L_small / L_big)."""

    def __init__(self, spill_dir: str | None, name: str):
        self._dir = spill_dir or tempfile.mkdtemp(prefix=f"gthinker-{name}-")
        os.makedirs(self._dir, exist_ok=True)
        self._name = name
        self._files: list[str] = []
        self._counter = 0
        self._lock = threading.Lock()
        self.bytes_written = 0
        self.bytes_peak = 0
        self.batches_spilled = 0
        self.batches_loaded = 0
        self.batches_skipped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._files)

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(os.path.getsize(p) for p in self._files if os.path.exists(p))

    def spill(self, tasks: list[Task]) -> str:
        """Write one batch to a new file; returns the path."""
        blob = pickle.dumps(tasks, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._counter += 1
            path = os.path.join(self._dir, f"{self._name}-{self._counter:08d}.tasks")
        with open(path, "wb") as f:
            f.write(_HEADER.pack(len(blob)))
            f.write(blob)
        with self._lock:
            self._files.append(path)
            self.bytes_written += len(blob)
            self.batches_spilled += 1
            self.bytes_peak = max(self.bytes_peak, self.bytes_written)
        return path

    def load_batch(self) -> list[Task]:
        """Pop the most recent readable spill file and return its tasks.

        Returns [] once no file is left. A *truncated* file — a writer
        (e.g. a worker process) died mid-write, so the payload is shorter
        than its length header claims, or the file vanished — is skipped
        with a warning and the next file is tried; a complete-but-corrupt
        payload still raises a RuntimeError naming the file, because
        losing queued tasks silently would silently lose mining results.
        """
        while True:
            with self._lock:
                if not self._files:
                    return []
                path = self._files.pop()
            try:
                with open(path, "rb") as f:
                    raw = f.read()
            except OSError as exc:
                self._skip(path, f"unreadable ({exc})")
                continue
            if len(raw) < _HEADER.size:
                self._skip(path, f"truncated header ({len(raw)} bytes)")
                continue
            (length,) = _HEADER.unpack_from(raw)
            blob = raw[_HEADER.size :]
            if len(blob) != length:
                self._skip(path, f"truncated payload ({len(blob)}/{length} bytes)")
                continue
            try:
                tasks = pickle.loads(blob)
            except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
                raise RuntimeError(
                    f"spill file {path!r} is corrupted: {exc}"
                ) from exc
            if not isinstance(tasks, list) or not all(isinstance(t, Task) for t in tasks):
                raise RuntimeError(f"spill file {path!r} did not decode to a task batch")
            with self._lock:
                self.batches_loaded += 1
            os.remove(path)
            return tasks

    def _skip(self, path: str, reason: str) -> None:
        """Drop one unloadable spill file, loudly."""
        warnings.warn(
            f"skipping spill file {path!r} (frame {self._frame_index(path)} "
            f"of list {self._name!r}): {reason}; its task batch is lost "
            "(was the writer killed mid-write?)",
            RuntimeWarning,
            stacklevel=3,
        )
        with self._lock:
            self.batches_skipped += 1
        if os.path.exists(path):
            os.remove(path)

    def _frame_index(self, path: str) -> int:
        """Recover the 1-based spill frame number from a file's name.

        Filenames are ``{name}-{counter:08d}.tasks``; the counter makes
        a skip report actionable (which write, in order, was lost) even
        after the path itself is gone. Returns -1 for a foreign name.
        """
        stem, _, _ = os.path.basename(path).rpartition(".")
        _, _, counter = stem.rpartition("-")
        return int(counter) if counter.isdigit() else -1

    def pending_task_estimate(self, batch_size: int) -> int:
        """Rough count of on-disk tasks (files × batch size) for stealing plans."""
        return len(self) * batch_size

    def cleanup(self) -> None:
        with self._lock:
            files, self._files = self._files, []
        for path in files:
            if os.path.exists(path):
                os.remove(path)


class SpillableQueue:
    """Bounded FIFO task queue that spills tail batches to disk when full.

    push() appends at the back; when the queue holds `capacity` tasks,
    the back-most `batch_size` tasks are spilled first (newest work goes
    to disk, oldest stays hot — the paper's tail-spill rule). pop()
    takes from the front. refill() loads one spilled batch back when the
    queue is running low.
    """

    def __init__(
        self,
        capacity: int,
        batch_size: int,
        spill: SpillFileList,
        lock: threading.Lock | None = None,
    ):
        if batch_size < 1 or capacity < batch_size:
            raise ValueError("need capacity >= batch_size >= 1")
        self._items: list[Task] = []
        self._capacity = capacity
        self._batch = batch_size
        self._spill = spill
        self._lock = lock or threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def spill_list(self) -> SpillFileList:
        return self._spill

    @property
    def batch_size(self) -> int:
        return self._batch

    def push(self, task: Task) -> None:
        with self._lock:
            if len(self._items) >= self._capacity:
                batch = self._items[-self._batch :]
                del self._items[-self._batch :]
                self._spill.spill(batch)
            self._items.append(task)

    def pop(self) -> Task | None:
        with self._lock:
            if self._items:
                return self._items.pop(0)
        return None

    def try_pop(self) -> tuple[bool, Task | None]:
        """(acquired, task): try-lock semantics for the global queue."""
        if not self._lock.acquire(blocking=False):
            return False, None
        try:
            task = self._items.pop(0) if self._items else None
            return True, task
        finally:
            self._lock.release()

    def needs_refill(self) -> bool:
        with self._lock:
            return len(self._items) < self._batch

    def refill_from_spill(self) -> int:
        """Load one spilled batch back into the queue; returns #tasks."""
        batch = self._spill.load_batch()
        if batch:
            with self._lock:
                self._items[:0] = batch
        return len(batch)

    def pop_batch(self, count: int) -> list[Task]:
        """Remove up to `count` tasks from the back (stealing donor side)."""
        with self._lock:
            if count <= 0 or not self._items:
                return []
            taken = self._items[-count:]
            del self._items[-count:]
            return taken

    def push_batch(self, tasks: list[Task]) -> None:
        for t in tasks:
            self.push(t)

    def pending_estimate(self) -> int:
        """In-memory + on-disk task estimate (stealing planner input)."""
        with self._lock:
            mem = len(self._items)
        return mem + self._spill.pending_task_estimate(self._batch)
