"""Time sources and decomposition budgets.

The time-delayed decomposition strategy (paper Algorithm 10) needs a
notion of "this task has mined for longer than τ_time". In the threaded
engine that is wall-clock time, as in the paper. In the simulated
cluster and in tests it is a deterministic *operation budget* counted in
the miner's abstract work units (``MiningStats.mining_ops``), so that a
run decomposes at exactly the same search-tree nodes every time — a
property the paper's wall-clock cannot offer but our reproducibility
needs.
"""

from __future__ import annotations

import time
from typing import Protocol

from ..core.options import MiningStats


class Budget(Protocol):
    """A τ_time budget consulted by time-delayed decomposition."""

    def expired(self) -> bool: ...


class WallClockBudget:
    """Budget of `seconds` wall-clock time starting at construction."""

    __slots__ = ("_deadline",)

    def __init__(self, seconds: float):
        self._deadline = time.monotonic() + seconds

    def expired(self) -> bool:
        return time.monotonic() > self._deadline


class OpBudget:
    """Deterministic budget of `ops` abstract mining operations.

    Reads the per-task MiningStats, which every decomposition path
    increments; independent of machine speed and thread interleaving.
    """

    __slots__ = ("_stats", "_limit")

    def __init__(self, stats: MiningStats, ops: int):
        self._stats = stats
        self._limit = stats.mining_ops + ops

    def expired(self) -> bool:
        return self._stats.mining_ops > self._limit


class NeverExpires:
    """Budget for decompose='none': tasks always mine to completion."""

    __slots__ = ()

    def expired(self) -> bool:
        return False


class AlwaysExpired:
    """Budget that splits at every opportunity (stress-testing aid)."""

    __slots__ = ()

    def expired(self) -> bool:
        return True


def make_budget(time_unit: str, tau_time: float, stats: MiningStats) -> Budget:
    """Budget factory: 'wall' takes seconds, 'ops' abstract operations."""
    if tau_time == float("inf"):
        return NeverExpires()
    if time_unit == "wall":
        return WallClockBudget(tau_time)
    if time_unit == "ops":
        return OpBudget(stats, int(tau_time))
    raise ValueError(f"unknown time_unit {time_unit!r} (expected 'wall' or 'ops')")
