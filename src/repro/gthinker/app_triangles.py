"""Triangle counting as a G-thinker application.

The paper's introduction frames the IO-bound-systems critique around
triangle counting: the MapReduce solution of [34] ran 10× slower than
one serial core [18] despite 1,600 machines, while task-based G-thinker
scales. This app is the minimal end-to-end demonstration of the engine
for a non-search workload, and a template for writing new applications:

* spawn(v): pull Γ_{>v}(v) — each triangle {u < v < w} is counted once,
  at its smallest vertex;
* iteration 1: for each pulled neighbor u, count how many of v's other
  larger neighbors w (w > u) appear in Γ(u); fold the count into a
  job-wide SumAggregator.

Tasks are a single compute round and never decompose — exactly the
"each task is fast" regime the original (pre-reforge) G-thinker was
designed for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.options import MiningStats, ResultSink
from .aggregator import SumAggregator
from .app_protocol import gthinker_app
from .task import ComputeOutcome, Task


@gthinker_app
@dataclass
class TriangleCountApp:
    """Count all triangles of the input graph on the engine."""

    count: SumAggregator = field(default_factory=SumAggregator)
    #: Engine-interface compatibility (unused: no subgraph results).
    sink: ResultSink = field(default_factory=ResultSink)
    stats: MiningStats = field(default_factory=MiningStats)

    def spawn(self, vertex: int, adjacency: list[int], task_id: int) -> Task | None:
        larger = [u for u in adjacency if u > vertex]
        if len(larger) < 2:
            return None  # a triangle needs two larger neighbors
        return Task(
            task_id=task_id,
            root=vertex,
            iteration=1,
            s=[vertex],
            building={vertex: set(larger)},
            pulls=larger,
        )

    def compute(self, task: Task, frontier: dict[int, list[int]], ctx) -> ComputeOutcome:
        v = task.root
        larger = sorted(task.building[v])
        larger_set = task.building[v]
        triangles = 0
        ops = 0
        for u in larger:
            adj_u = frontier.get(u, [])
            ops += len(adj_u)
            for w in adj_u:
                # w closes a triangle v-u-w iff it is another larger
                # neighbor of v beyond u (count each pair once).
                if w > u and w in larger_set:
                    triangles += 1
        if triangles:
            self.count.add(triangles)
        self.stats.mining_ops += ops
        return ComputeOutcome(finished=True, cost_ops=max(1, ops))


def count_triangles_parallel(graph, config=None) -> tuple[int, object]:
    """Count triangles on the engine; returns (count, metrics)."""
    from .config import EngineConfig
    from .engine import GThinkerEngine

    config = config or EngineConfig()
    app = TriangleCountApp()
    engine = GThinkerEngine(graph, app, config)
    engine.run()
    return app.count.get(), engine.metrics
