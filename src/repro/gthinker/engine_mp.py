"""Process-pool executor: SchedulerCore quanta across worker processes.

The serial and threaded drivers in :mod:`repro.gthinker.engine` share
one interpreter, so the CPU-bound backtracking that dominates
quasi-clique mining is serialized by the GIL no matter how many threads
run. The original G-thinker gets its scalability from one mining comper
per core; this executor reproduces that with `multiprocessing`:

* the **parent** owns every piece of scheduler state — the spawn
  cursor, Q_global/Q_local, B_global, the L_big/L_small spill lists,
  steal coordination, and the task-lease table — and drives the same
  :class:`~repro.gthinker.scheduler.SchedulerCore` policy as every
  other executor;
* **workers** hold a read-only copy of the input graph (fork-inherited
  where the platform allows, rebuilt from a
  `multiprocessing.shared_memory` buffer otherwise) plus their own copy
  of the application, receive pickled :class:`Task` batches over a
  per-worker queue, run each task's compute iterations to completion
  (pulls resolve against the local graph copy, so tasks never suspend
  inside a worker), and ship back mined candidates, per-batch
  :class:`EngineMetrics`, forwarded tracer events, and any
  decomposition remainder tasks;
* remainder tasks return to the parent, get fresh task IDs, and re-enter
  the shared routing policy (big → Q_global, small → Q_local), so
  time-delayed decomposition balances load across processes exactly as
  it does across threads.

**Fault tolerance.** Long skewed mining runs are the paper's whole
motivation, and a production run cannot die because one worker did.
This driver owns transport and dispatch only; every fault-semantic
decision is delegated to the shared coordination control plane
(:mod:`repro.gthinker.runtime`, also under the cluster runtime):

* every dispatched batch is recorded in the control plane's
  :class:`~repro.gthinker.runtime.TaskLeaseTable` (task ids, per-task
  attempt counts, a wall-clock deadline derived from ``tau_time`` plus
  ``lease_slack``, a ``lease_window``-bounded per-worker pipeline);
* a worker that **died** (non-zero/None ``Process.exitcode``, broken
  pipe, injected SIGKILL) or whose **lease expired** (wedged — Alg. 10
  promises no task legitimately outruns its budget) is joined, its
  death accounted through :class:`~repro.gthinker.runtime.
  WorkerRegistry`, its leases reclaimed through :func:`~repro.gthinker.
  runtime.reclaim_lease` (exponential backoff retry, ``max_attempts``
  quarantine), and a fresh incarnation respawned in its slot;
* at-least-once duplicates are dropped — and idempotent candidates
  kept — by :class:`~repro.gthinker.runtime.ResultFolder`.

Result channels are isolated per worker *incarnation*
(:class:`~repro.gthinker.runtime.PipeChannel`): each worker ships
messages over its own one-writer pipe rather than a shared queue. A
shared `multiprocessing.Queue` write lock is a fault-domain violation —
a worker SIGKILLed while its feeder thread holds the lock dies owning
it, wedging every peer's `put` until their leases expire and the whole
pool death-spirals into quarantine. With private pipes a killed worker
can tear only its own channel; the supervisor abandons it, reclaims the
leases, and the rest of the pool never notices.

Because each worker owns a whole-graph replica, pull resolution is
always local: `remote_messages` stays 0 and the vertex cache is idle on
this backend (the partitioned data service is a distribution model, not
a parallelism mechanism). Everything the paper's reforge is about —
routing, pick order, spilling, spawn batching, stealing — still runs,
in the parent.

The application must be picklable: it is shipped once to every worker
at pool start. `MultiprocessEngine` verifies this at construction and
raises a `TypeError` naming the app, instead of letting the first
dispatch die inside a worker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import time
import traceback
import warnings
from array import array
from multiprocessing import connection as mp_connection

from ..core.options import ResultSink
from ..core.postprocess import postprocess_results
from ..graph.adjacency import Graph
from .app_protocol import ComputeContext, GThinkerApp, ensure_app
from .app_quasiclique import QuasiCliqueApp
from .chaos import FaultInjection, die_hard
from .config import EngineConfig
from .engine import MiningRunResult
from .metrics import EngineMetrics, WorkerTiming
from .obs.progress import ProgressSnapshot, progress_detail
from .runtime import (
    ChannelClosed,
    PipeChannel,
    ResultFolder,
    RetryPolicy,
    TaskLeaseTable,
    WorkerRegistry,
    WorkerSlot,
    reclaim_lease,
)
from .scheduler import SchedulerCore, build_machines, collect_machine_metrics
from .task import Task
from .tracing import NullTracer, Tracer
from .vertex_store import SharedGraphAccess

__all__ = ["FaultInjection", "MultiprocessEngine", "mine_multiprocess"]

#: Trace-event kinds a worker may forward to the parent's tracer.
_WORKER_EVENT_KINDS = ("execute", "finish", "decompose", "span_begin", "span_end")


# -- read-only graph shipping ---------------------------------------------


def _graph_to_shm(graph: Graph):
    """Serialize `graph` into a shared-memory int64 buffer.

    Layout: [num_vertices, num_edges, v_0..v_{n-1}, u_0, w_0, ...].
    Vertex IDs are arbitrary non-negative ints (no compaction needed).
    """
    from multiprocessing import shared_memory

    data = array("q", [graph.num_vertices, graph.num_edges])
    data.extend(sorted(graph.vertices()))
    for u, w in graph.edges():
        data.append(u)
        data.append(w)
    payload = data.tobytes()
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    shm.buf[: len(payload)] = payload
    return shm, len(payload)


def _attach_shm_untracked(name: str):
    """Attach to a parent-owned segment without resource tracking.

    The parent owns the segment's lifetime; letting workers register it
    with the (shared) resource tracker causes spurious KeyError noise at
    exit when several workers attach the same name (bpo-38119). Python
    3.13 has `track=False` for exactly this; on older versions the
    standard workaround is suppressing registration around the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= not supported (< 3.13)
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(res_name, rtype):
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _graph_from_shm(name: str, nbytes: int) -> Graph:
    """Rebuild the read-only graph copy inside a spawned worker."""
    shm = _attach_shm_untracked(name)
    try:
        data = array("q")
        data.frombytes(bytes(shm.buf[:nbytes]))
    finally:
        shm.close()
    num_vertices, num_edges = data[0], data[1]
    vertices = data[2 : 2 + num_vertices]
    flat = data[2 + num_vertices : 2 + num_vertices + 2 * num_edges]
    edges = ((flat[i], flat[i + 1]) for i in range(0, len(flat), 2))
    return Graph.from_edges(edges, vertices=vertices)


def _resolve_graph(graph_payload) -> SharedGraphAccess:
    """Build the worker's whole-graph replica access, tagged with how
    the replica reached this process (fork inheritance vs shm rebuild)."""
    kind = graph_payload[0]
    if kind == "direct":  # fork: the object itself rode through the fork
        return SharedGraphAccess(graph_payload[1], origin="fork")
    _, name, nbytes = graph_payload  # spawn/forkserver: rebuild from shm
    return SharedGraphAccess(_graph_from_shm(name, nbytes), origin="shm")


# -- the worker process ----------------------------------------------------


def _run_task(app, config, access, task, next_task_id, metrics, events):
    """Run one task's compute iterations to completion; returns children.

    Pulls resolve through the worker's :class:`SharedGraphAccess`
    (whole-graph replica — `unresolved` is always empty), so a task
    never suspends here — the suspend/re-buffer path belongs to the
    executors whose data service is partitioned.
    """
    ctx = ComputeContext(
        config=config, next_task_id=next_task_id, record=metrics.record_task
    )
    children: list[Task] = []
    t0 = time.monotonic() if events is not None else 0.0
    while True:
        if task.pulls:
            frontier = access.resolve(task.pulls)
            task.pulls = []
        else:
            frontier = {}
        if events is not None:
            events.append(("execute", task.task_id, ""))
        outcome = app.compute(task, frontier, ctx)
        if outcome.new_tasks:
            children.extend(outcome.new_tasks)
            if events is not None:
                events.append(
                    ("decompose", task.task_id, f"children={len(outcome.new_tasks)}")
                )
        if outcome.finished:
            if events is not None:
                events.append(("finish", task.task_id, ""))
                # The batch_mine span of this task, as a forwarded event
                # pair (retroactive emission — same rule as emit_span, so
                # pairing/nesting holds in the parent's trace too).
                t1 = time.monotonic()
                events.append(
                    ("span_begin", task.task_id,
                     f"name=batch_mine t={t0:.6f} children={len(children)}")
                )
                events.append(
                    ("span_end", task.task_id,
                     f"name=batch_mine t={t1:.6f} dur={t1 - t0:.6f} "
                     f"children={len(children)}")
                )
            return children


def _worker_main(
    worker_id: int,
    graph_payload,
    app_blob: bytes,
    config: EngineConfig,
    injection: FaultInjection | None,
    task_q,
    result_conn,
    trace_enabled: bool,
) -> None:
    """Worker loop: decode batches, mine, ship results back.

    Message protocol (worker → parent, over this incarnation's private
    result pipe — one writer per pipe, so a SIGKILLed worker can never
    leave a shared write lock held and wedge its peers; sends happen on
    this thread, so every completed batch is flushed before the next
    batch is even received):
      ("batch", worker_id, batch_id, finished, child_blobs, candidates,
       metrics, events) per processed batch;
      ("done", worker_id, stats_blob) on sentinel;
      ("error", worker_id, traceback_text) on any failure (the worker
       exits afterwards; the parent's supervisor respawns it).

    `injection` is the chaos hook: when set, this incarnation SIGKILLs
    itself upon receiving a batch after completing `after_batches` of
    them (the parent only passes it to the targeted worker's first
    incarnation).
    """
    try:
        access = _resolve_graph(graph_payload)
        app = pickle.loads(app_blob)
        # Provisional child IDs; the parent renumbers on receipt, so
        # negative values can never collide with scheduler-issued IDs.
        provisional = itertools.count(1)
        shipped: set[frozenset[int]] = set()
        completed = 0
        while True:
            t_wait = time.monotonic()
            item = task_q.get()
            waited = time.monotonic() - t_wait
            if item is None:
                result_conn.send(("done", worker_id, pickle.dumps(app.stats)))
                return
            if injection is not None and completed >= injection.after_batches:
                die_hard()
            batch_id, blobs = item
            metrics = EngineMetrics()
            events: list | None = [] if trace_enabled else None
            children: list[Task] = []
            t_mine = time.monotonic()
            for blob in blobs:
                task = Task.decode(blob)
                children.extend(
                    _run_task(
                        app, config, access, task,
                        lambda: -next(provisional), metrics, events,
                    )
                )
            busy = time.monotonic() - t_mine
            # Per-batch wall/mine/idle slice; the parent's metrics merge
            # sums slices per worker id into one WorkerTiming row.
            metrics.timing[worker_id] = WorkerTiming(
                wall_seconds=waited + busy, mine_seconds=busy, idle_seconds=waited
            )
            results = app.sink.results()
            fresh = results - shipped
            shipped |= fresh
            result_conn.send(
                (
                    "batch",
                    worker_id,
                    batch_id,
                    len(blobs),
                    [t.encode() for t in children],
                    fresh,
                    metrics,
                    events or [],
                )
            )
            completed += 1
    except BaseException:
        try:
            result_conn.send(("error", worker_id, traceback.format_exc()))
        except OSError:  # parent already closed the pipe mid-shutdown
            pass


# -- the parent-side engine ------------------------------------------------


class MultiprocessEngine:
    """Run one mining job over a supervised pool of worker processes.

    The parent is the only scheduler: it spawns tasks from the vertex
    table, routes and picks through `SchedulerCore`, leases picked
    batches to workers over per-worker queues, and folds worker results
    — candidates, metrics, tracer events, remainder tasks — back in.
    Workers are expendable: death or wedging triggers lease reclaim,
    backoff retry, respawn, and (after `config.max_attempts` failed
    dispatches of a task) quarantine — never a crashed run.
    """

    def __init__(
        self,
        graph: Graph,
        app: GThinkerApp,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
        start_method: str | None = None,
        fault_injection: FaultInjection | None = None,
        on_progress=None,
    ):
        self.graph = graph
        self.app = ensure_app(app)
        self.config = config
        #: Live-progress callback: called with a ProgressSnapshot every
        #: config.progress_interval seconds (default 1s when a callback
        #: is given; the `progress` trace event fires on the same clock).
        self.on_progress = on_progress
        try:
            self._app_blob = pickle.dumps(app, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"the process backend ships the app to every worker, but "
                f"{type(app).__name__} is not picklable: {exc}. Keep engine "
                f"apps free of locks, open files, and lambdas, or use the "
                f"threaded backend."
            ) from exc
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        elif start_method not in available:
            raise ValueError(
                f"start method {start_method!r} not available here "
                f"(have: {', '.join(available)})"
            )
        self.start_method = start_method
        self.num_procs = config.resolved_num_procs
        self.machines = build_machines(graph, config)
        self.metrics = EngineMetrics()
        self._active = 0
        self._peak_active = 0
        self.core = SchedulerCore(
            app, config, self.machines, tracer,
            metrics=self.metrics,
            task_queued=self._task_born,
        )
        self.tracer = self.core.tracer
        # -- fault-tolerance state: the shared control plane ---------------
        self.leases = TaskLeaseTable(
            config.max_attempts, lease_window=config.lease_window
        )
        self.registry = WorkerRegistry(metrics=self.metrics, tracer=self.tracer)
        self._retries: RetryPolicy[Task] = RetryPolicy(config.retry_backoff)
        self._folder = ResultFolder(
            self.app.sink, self.leases, metrics=self.metrics, tracer=self.tracer
        )
        self._injection = fault_injection
        #: Tasks poisoned after max_attempts failed dispatches.
        self.quarantined: list[Task] = []
        #: Tracebacks reported by workers that failed at the app level.
        self.worker_errors: list[str] = []
        self._batch_ids = itertools.count()

    @property
    def retry_schedule(self) -> list[tuple[int, int, float]]:
        """(task_id, attempt, backoff_delay) per scheduled retry — the
        observable backoff sequence, asserted by tests."""
        return self._retries.history

    def _task_born(self, task: Task) -> None:
        self._active += 1
        self._peak_active = max(self._peak_active, self._active)

    # -- parent-side scheduling -------------------------------------------

    def _slots(self):
        return [
            (machine, slot)
            for machine in self.machines
            for slot in machine.threads
        ]

    def _collect_batch(self, slot_cycle, num_slots: int) -> list[Task]:
        """Pick up to one batch of tasks, round-robin across pick sources."""
        batch: list[Task] = []
        for _ in range(num_slots):
            machine, slot = next(slot_cycle)
            while len(batch) < self.config.batch_size:
                task = self.core.pick(machine, slot)
                if task is None:
                    break
                batch.append(task)
            if len(batch) >= self.config.batch_size:
                break
        return batch

    def _route_child(self, blob: bytes) -> None:
        child = Task.decode(blob)
        child.task_id = self.core.next_task_id()
        machine, slot = next(self._route_cycle)
        self.core.route(child, machine, slot)

    # -- pool management ----------------------------------------------------

    def _spawn_worker(self, slot: WorkerSlot) -> None:
        """(Re)start the worker in `slot` with a fresh private channel.

        Each incarnation gets a private result pipe (wrapped in a
        :class:`PipeChannel`): the worker is the pipe's only writer, so
        there is no cross-worker write lock for a SIGKILLed process to
        die holding, and a partially-written frame from a terminated
        worker corrupts only its own (abandoned) channel — never a
        peer's.
        """
        injection = None
        if self._injection is not None:
            injection = self._injection.for_incarnation(
                slot.worker_id, slot.generation
            )
        task_q = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        if slot.channel is not None:
            slot.channel.close()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                slot.worker_id, self._graph_payload, self._app_blob,
                self.config, injection, task_q, send_conn, self.tracer.enabled,
            ),
            daemon=True,
        )
        slot.channel = PipeChannel(task_q, recv_conn)
        slot.transport = proc
        proc.start()
        # The worker holds the write end now; dropping the parent's copy
        # makes worker death observable as EOF on the channel.
        send_conn.close()

    def _fail_worker(self, slot: WorkerSlot, reason: str, now: float) -> None:
        """Handle one dead/wedged worker: reclaim its leases, respawn it."""
        proc = slot.transport
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        # Results the worker shipped before failing are done work, not
        # retries — fold them in before reclaiming what remains.
        self._drain_results()
        channel = slot.channel
        self.registry.fail(slot, reason)
        if channel is not None:
            # Anything still sitting on the dead worker's queue is
            # covered by its leases; the queue itself is discarded.
            channel.discard_task_queue()
        for lease in self.leases.leases_for(slot.worker_id):
            reclaim_lease(
                self.leases, lease, self._retries, now,
                metrics=self.metrics, tracer=self.tracer,
                on_quarantine=self._on_quarantine,
            )
        self.registry.revive(slot)
        self._spawn_worker(slot)

    def _on_quarantine(self, task: Task, attempts: int) -> None:
        self._active -= 1
        self.quarantined.append(task)

    def _flush_due_retries(self, now: float) -> None:
        for task, _attempts in self._retries.pop_due(now):
            machine, slot = next(self._route_cycle)
            self.core.requeue(task, machine, slot)

    # -- live progress -----------------------------------------------------

    def _progress_interval(self) -> float:
        """Seconds between progress emissions; 0 disables them."""
        if self.config.progress_interval:
            return self.config.progress_interval
        if self.on_progress is not None or self.tracer.enabled:
            return 1.0
        return 0.0

    def status_snapshot(self) -> ProgressSnapshot:
        """One live-progress snapshot of the pool, as the parent sees it."""
        leased = self.leases.leased_task_count()
        return ProgressSnapshot(
            wall_seconds=time.perf_counter() - self._run_start,
            tasks_pending=max(0, self._active - leased),
            tasks_leased=leased,
            tasks_done=self.metrics.tasks_executed,
            candidates=len(self.app.sink.results()),
            workers_alive=sum(
                1 for slot in self.registry.slots()
                if slot.transport is not None and slot.transport.is_alive()
            ),
            workers_died=self.metrics.workers_died,
        )

    def _emit_progress(self) -> None:
        snapshot = self.status_snapshot()
        self.tracer.emit("progress", -1, detail=progress_detail(snapshot))
        if self.on_progress is not None:
            self.on_progress(snapshot)

    def _supervise(self, now: float) -> None:
        """Detect dead and wedged workers; reclaim and respawn."""
        for slot in self.registry.slots():
            if not slot.transport.is_alive():
                self._fail_worker(
                    slot, f"exitcode={slot.transport.exitcode}", now
                )
        for lease in self.leases.expired(now):
            # An earlier reclaim this round may have taken it already.
            if self.leases.get(lease.lease_id) is not None:
                self._fail_worker(
                    self.registry.get(lease.worker_id),
                    f"lease {lease.lease_id} expired (wedged worker)", now,
                )

    # -- driver ------------------------------------------------------------

    def run(self) -> MiningRunResult:
        start = time.perf_counter()
        self._run_start = start
        self._ctx = multiprocessing.get_context(self.start_method)
        shm = None
        if self.start_method == "fork":
            self._graph_payload = ("direct", self.graph)
        else:
            shm, nbytes = _graph_to_shm(self.graph)
            self._graph_payload = ("shm", shm.name, nbytes)
        try:
            for w in range(self.num_procs):
                self._spawn_worker(self.registry.add(WorkerSlot(worker_id=w)))
            self._dispatch_loop()
            self._shutdown()
        finally:
            for slot in self.registry.slots():
                proc = slot.transport
                if proc is None:
                    continue
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5.0)
            for slot in self.registry.slots():
                if slot.channel is not None:
                    slot.channel.discard_task_queue()
                    slot.channel.close()
            if shm is not None:
                shm.close()
                shm.unlink()
            for m in self.machines:
                m.cleanup()
        self.metrics.wall_seconds = time.perf_counter() - start
        collect_machine_metrics(self.metrics, self.machines)
        self.metrics.peak_pending_tasks = max(
            self.metrics.peak_pending_tasks, self._peak_active
        )
        self.metrics.mining_stats.merge(self.app.stats)
        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        return MiningRunResult(
            maximal=maximal, candidates=candidates, metrics=self.metrics
        )

    def _fill_windows(self, pick_cycle, num_slots: int, now: float) -> None:
        """Lease fresh batches to every worker with spare window."""
        for slot in self.registry.slots():
            while self.leases.has_window(slot.worker_id):
                batch = self._collect_batch(pick_cycle, num_slots)
                if not batch:
                    return  # nothing pickable right now
                self._dispatch(slot, batch, now)

    def _dispatch(self, slot: WorkerSlot, batch: list[Task], now: float) -> None:
        batch_id = next(self._batch_ids)
        self.leases.grant(
            batch_id, slot.worker_id, batch, now,
            self.config.lease_timeout(len(batch)),
        )
        try:
            slot.channel.send((batch_id, [t.encode() for t in batch]))
        except ChannelClosed:
            # Dead incarnation caught mid-dispatch: the lease just
            # granted is covered by the supervisor's reclaim next round.
            pass

    def _dispatch_loop(self) -> None:
        config = self.config
        core = self.core
        slots = self._slots()
        pick_cycle = itertools.cycle(slots)
        self._route_cycle = itertools.cycle(slots)
        steal_enabled = config.use_stealing and config.num_machines > 1
        last_steal = time.monotonic()
        progress_every = self._progress_interval()
        last_progress = time.monotonic()
        while True:
            now = time.monotonic()
            if progress_every and now - last_progress >= progress_every:
                self._emit_progress()
                last_progress = now
            self._flush_due_retries(now)
            self._supervise(now)
            self._fill_windows(pick_cycle, len(slots), now)
            if not self.leases:
                if (
                    core.all_spawned()
                    and self._active == 0
                    and not self._retries
                ):
                    return
                # Nothing dispatchable yet (work on spill files
                # mid-refill, or retries still backing off); let the
                # policy make progress.
                if steal_enabled:
                    core.apply_steals()
                time.sleep(0.001)
                continue
            ready = self._wait_channels(timeout=0.05)
            if not ready:
                continue
            for channel in ready:
                msg = self._recv_from(channel)
                if msg is not None:
                    self._handle_message(msg)
            if steal_enabled:
                now = time.monotonic()
                if now - last_steal >= config.steal_period_seconds:
                    core.apply_steals()
                    last_steal = now

    def _wait_channels(self, timeout: float) -> list[PipeChannel]:
        """Channels with a readable message, via one multiplexed wait."""
        by_conn = {ch.waitable: ch for ch in self.registry.channels()}
        ready = mp_connection.wait(list(by_conn), timeout=timeout)
        return [by_conn[conn] for conn in ready]

    def _recv_from(self, channel: PipeChannel):
        """Receive one message, tolerating a dead writer.

        EOF (the worker exited) and a torn frame (the worker was
        terminated mid-send) poison only this incarnation's private
        pipe: the channel marks itself closed and is abandoned. Anything
        its remaining messages carried is re-run through lease reclaim.
        """
        try:
            return channel.recv()
        except ChannelClosed:
            return None

    def _drain_results(self) -> None:
        """Fold in every result message already sitting in the pipes."""
        for channel in self.registry.channels():
            while not channel.closed and channel.poll():
                msg = self._recv_from(channel)
                if msg is None:
                    break
                self._handle_message(msg)

    def _handle_message(self, msg) -> None:
        kind = msg[0]
        if kind == "error":
            # App-level failure: the worker ships its traceback and
            # exits; the supervisor will reclaim and respawn on the next
            # round. Record loudly — a deterministic app bug surfaces
            # here attempt after attempt until quarantine.
            _, worker_id, tb = msg
            self.worker_errors.append(tb)
            last = tb.strip().splitlines()[-1] if tb.strip() else "unknown error"
            warnings.warn(
                f"worker process {worker_id} failed ({last}); its leased "
                f"batches will be retried or quarantined",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        if kind == "done":
            # A shutdown acknowledgement cannot appear mid-dispatch, but
            # tolerate it rather than crash a run that is otherwise fine.
            return
        _, worker_id, batch_id, finished, child_blobs, fresh, wmetrics, events = msg
        # Candidates fold unconditionally (idempotent); everything else
        # folds only if the lease is still ours — a stale at-least-once
        # duplicate's children and metrics belong to the retry that
        # superseded it, and dropping them keeps accounting single-count.
        self._folder.fold(fresh)
        if self._folder.complete(batch_id) is None:
            return
        # Children first, exactly like the threaded driver: the active
        # counter must never hit zero while a finishing parent still has
        # unrouted offspring.
        for blob in child_blobs:
            self._route_child(blob)
        self._active -= finished
        self.metrics.merge(wmetrics)
        if events:
            self._folder.forward_events(worker_id, events, _WORKER_EVENT_KINDS)

    def _shutdown(self) -> None:
        for slot in self.registry.slots():
            try:
                slot.channel.send(None)
            except ChannelClosed:
                pass
        pending = set(range(self.num_procs))
        deadline = time.monotonic() + 30.0
        while pending and time.monotonic() < deadline:
            ready = self._wait_channels(timeout=1.0)
            if not ready:
                if all(
                    not slot.transport.is_alive()
                    for slot in self.registry.slots()
                ):
                    break
                continue
            for channel in ready:
                msg = self._recv_from(channel)
                if msg is None:
                    continue
                if msg[0] == "done":
                    _, worker_id, stats_blob = msg
                    self.metrics.mining_stats.merge(pickle.loads(stats_blob))
                    pending.discard(worker_id)
                elif msg[0] == "batch":
                    # A stale duplicate flushed by a worker we terminated
                    # for lease expiry: every lease was settled before
                    # the dispatch loop returned, so only fold the
                    # (deduplicated) candidates.
                    self._folder.fold(msg[5])
                elif msg[0] == "error":
                    # All mining already completed; losing this worker's
                    # final stats blob is not worth failing the run over.
                    self.worker_errors.append(msg[2])
                    pending.discard(msg[1])
        for slot in self.registry.slots():
            slot.transport.join(timeout=5.0)


def mine_multiprocess(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig | None = None,
    options=None,
    tracer: Tracer | NullTracer | None = None,
    start_method: str | None = None,
    fault_injection: FaultInjection | None = None,
    on_progress=None,
) -> MiningRunResult:
    """Convenience front-end: mine `graph` on the process-pool backend."""
    from ..core.options import DEFAULT_OPTIONS

    config = config or EngineConfig(backend="process")
    app = QuasiCliqueApp(
        gamma=gamma,
        min_size=min_size,
        sink=ResultSink(),
        options=options or DEFAULT_OPTIONS,
    )
    return MultiprocessEngine(
        graph, app, config, tracer=tracer, start_method=start_method,
        fault_injection=fault_injection, on_progress=on_progress,
    ).run()
