"""Process-pool executor: SchedulerCore quanta across worker processes.

The serial and threaded drivers in :mod:`repro.gthinker.engine` share
one interpreter, so the CPU-bound backtracking that dominates
quasi-clique mining is serialized by the GIL no matter how many threads
run. The original G-thinker gets its scalability from one mining comper
per core; this executor reproduces that with `multiprocessing`:

* the **parent** owns every piece of scheduler state — the spawn
  cursor, Q_global/Q_local, B_global, the L_big/L_small spill lists,
  and steal coordination — and drives the same
  :class:`~repro.gthinker.scheduler.SchedulerCore` policy as every
  other executor;
* **workers** hold a read-only copy of the input graph (fork-inherited
  where the platform allows, rebuilt from a
  `multiprocessing.shared_memory` buffer otherwise) plus their own copy
  of the application, receive pickled :class:`Task` batches, run each
  task's compute iterations to completion (pulls resolve against the
  local graph copy, so tasks never suspend inside a worker), and ship
  back mined candidates, per-batch :class:`EngineMetrics`, forwarded
  tracer events, and any decomposition remainder tasks;
* remainder tasks return to the parent, get fresh task IDs, and re-enter
  the shared routing policy (big → Q_global, small → Q_local), so
  time-delayed decomposition balances load across processes exactly as
  it does across threads.

Because each worker owns a whole-graph replica, pull resolution is
always local: `remote_messages` stays 0 and the vertex cache is idle on
this backend (the partitioned data service is a distribution model, not
a parallelism mechanism). Everything the paper's reforge is about —
routing, pick order, spilling, spawn batching, stealing — still runs,
in the parent.

The application must be picklable: it is shipped once to every worker
at pool start. `MultiprocessEngine` verifies this at construction and
raises a `TypeError` naming the app, instead of letting the first
dispatch die inside a worker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue
import time
import traceback
from array import array

from ..core.options import ResultSink
from ..core.postprocess import postprocess_results
from ..graph.adjacency import Graph
from .app_protocol import ComputeContext, GThinkerApp, ensure_app
from .app_quasiclique import QuasiCliqueApp
from .config import EngineConfig
from .engine import MiningRunResult
from .metrics import EngineMetrics
from .scheduler import SchedulerCore, build_machines, collect_machine_metrics
from .task import Task
from .tracing import NullTracer, Tracer

__all__ = ["MultiprocessEngine", "mine_multiprocess"]

#: Trace-event kinds a worker may forward to the parent's tracer.
_WORKER_EVENT_KINDS = ("execute", "finish", "decompose")


# -- read-only graph shipping ---------------------------------------------


def _graph_to_shm(graph: Graph):
    """Serialize `graph` into a shared-memory int64 buffer.

    Layout: [num_vertices, num_edges, v_0..v_{n-1}, u_0, w_0, ...].
    Vertex IDs are arbitrary non-negative ints (no compaction needed).
    """
    from multiprocessing import shared_memory

    data = array("q", [graph.num_vertices, graph.num_edges])
    data.extend(sorted(graph.vertices()))
    for u, w in graph.edges():
        data.append(u)
        data.append(w)
    payload = data.tobytes()
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    shm.buf[: len(payload)] = payload
    return shm, len(payload)


def _attach_shm_untracked(name: str):
    """Attach to a parent-owned segment without resource tracking.

    The parent owns the segment's lifetime; letting workers register it
    with the (shared) resource tracker causes spurious KeyError noise at
    exit when several workers attach the same name (bpo-38119). Python
    3.13 has `track=False` for exactly this; on older versions the
    standard workaround is suppressing registration around the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= not supported (< 3.13)
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(res_name, rtype):
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _graph_from_shm(name: str, nbytes: int) -> Graph:
    """Rebuild the read-only graph copy inside a spawned worker."""
    shm = _attach_shm_untracked(name)
    try:
        data = array("q")
        data.frombytes(bytes(shm.buf[:nbytes]))
    finally:
        shm.close()
    num_vertices, num_edges = data[0], data[1]
    vertices = data[2 : 2 + num_vertices]
    flat = data[2 + num_vertices : 2 + num_vertices + 2 * num_edges]
    edges = ((flat[i], flat[i + 1]) for i in range(0, len(flat), 2))
    return Graph.from_edges(edges, vertices=vertices)


def _resolve_graph(graph_payload) -> Graph:
    kind = graph_payload[0]
    if kind == "direct":  # fork: the object itself rode through the fork
        return graph_payload[1]
    _, name, nbytes = graph_payload  # spawn/forkserver: rebuild from shm
    return _graph_from_shm(name, nbytes)


# -- the worker process ----------------------------------------------------


def _run_task(app, config, graph, task, next_task_id, metrics, events):
    """Run one task's compute iterations to completion; returns children.

    Pulls resolve against the worker's whole-graph replica, so a task
    never suspends here — the suspend/re-buffer path belongs to the
    executors whose data service is partitioned.
    """
    ctx = ComputeContext(
        config=config, next_task_id=next_task_id, record=metrics.record_task
    )
    children: list[Task] = []
    while True:
        if task.pulls:
            frontier = {
                v: (graph.neighbors(v) if graph.has_vertex(v) else [])
                for v in task.pulls
            }
            task.pulls = []
        else:
            frontier = {}
        if events is not None:
            events.append(("execute", task.task_id, ""))
        outcome = app.compute(task, frontier, ctx)
        if outcome.new_tasks:
            children.extend(outcome.new_tasks)
            if events is not None:
                events.append(
                    ("decompose", task.task_id, f"children={len(outcome.new_tasks)}")
                )
        if outcome.finished:
            if events is not None:
                events.append(("finish", task.task_id, ""))
            return children


def _worker_main(
    worker_id: int,
    graph_payload,
    app_blob: bytes,
    config: EngineConfig,
    task_q,
    result_q,
    trace_enabled: bool,
) -> None:
    """Worker loop: decode batches, mine, ship results back.

    Message protocol (worker → parent):
      ("batch", worker_id, batch_id, finished, child_blobs, candidates,
       metrics, events) per processed batch;
      ("done", worker_id, stats_blob) on sentinel;
      ("error", worker_id, traceback_text) on any failure.
    """
    try:
        graph = _resolve_graph(graph_payload)
        app = pickle.loads(app_blob)
        # Provisional child IDs; the parent renumbers on receipt, so
        # negative values can never collide with scheduler-issued IDs.
        provisional = itertools.count(1)
        shipped: set[frozenset[int]] = set()
        while True:
            item = task_q.get()
            if item is None:
                result_q.put(("done", worker_id, pickle.dumps(app.stats)))
                return
            batch_id, blobs = item
            metrics = EngineMetrics()
            events: list | None = [] if trace_enabled else None
            children: list[Task] = []
            for blob in blobs:
                task = Task.decode(blob)
                children.extend(
                    _run_task(
                        app, config, graph, task,
                        lambda: -next(provisional), metrics, events,
                    )
                )
            results = app.sink.results()
            fresh = results - shipped
            shipped |= fresh
            result_q.put(
                (
                    "batch",
                    worker_id,
                    batch_id,
                    len(blobs),
                    [t.encode() for t in children],
                    fresh,
                    metrics,
                    events or [],
                )
            )
    except BaseException:
        result_q.put(("error", worker_id, traceback.format_exc()))


# -- the parent-side engine ------------------------------------------------


class MultiprocessEngine:
    """Run one mining job over a pool of worker processes.

    The parent is the only scheduler: it spawns tasks from the vertex
    table, routes and picks through `SchedulerCore`, dispatches picked
    tasks to workers in pickled batches, and folds worker results —
    candidates, metrics, tracer events, remainder tasks — back in.
    """

    def __init__(
        self,
        graph: Graph,
        app: GThinkerApp,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
        start_method: str | None = None,
    ):
        self.graph = graph
        self.app = ensure_app(app)
        self.config = config
        try:
            self._app_blob = pickle.dumps(app, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"the process backend ships the app to every worker, but "
                f"{type(app).__name__} is not picklable: {exc}. Keep engine "
                f"apps free of locks, open files, and lambdas, or use the "
                f"threaded backend."
            ) from exc
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        elif start_method not in available:
            raise ValueError(
                f"start method {start_method!r} not available here "
                f"(have: {', '.join(available)})"
            )
        self.start_method = start_method
        self.num_procs = config.resolved_num_procs
        self.machines = build_machines(graph, config)
        self.metrics = EngineMetrics()
        self._active = 0
        self._peak_active = 0
        self.core = SchedulerCore(
            app, config, self.machines, tracer,
            metrics=self.metrics,
            task_queued=self._task_born,
        )
        self.tracer = self.core.tracer

    def _task_born(self, task: Task) -> None:
        self._active += 1
        self._peak_active = max(self._peak_active, self._active)

    # -- parent-side scheduling -------------------------------------------

    def _slots(self):
        return [
            (machine, slot)
            for machine in self.machines
            for slot in machine.threads
        ]

    def _collect_batch(self, slot_cycle, num_slots: int) -> list[Task]:
        """Pick up to one batch of tasks, round-robin across pick sources."""
        batch: list[Task] = []
        for _ in range(num_slots):
            machine, slot = next(slot_cycle)
            while len(batch) < self.config.batch_size:
                task = self.core.pick(machine, slot)
                if task is None:
                    break
                batch.append(task)
            if len(batch) >= self.config.batch_size:
                break
        return batch

    def _route_child(self, blob: bytes, slot_cycle) -> None:
        child = Task.decode(blob)
        child.task_id = self.core.next_task_id()
        machine, slot = next(slot_cycle)
        self.core.route(child, machine, slot)

    def _forward_events(self, worker_id: int, events) -> None:
        for kind, task_id, detail in events:
            if kind in _WORKER_EVENT_KINDS:
                self.tracer.emit(
                    kind, task_id, machine=-1, thread=worker_id, detail=detail
                )

    # -- driver ------------------------------------------------------------

    def run(self) -> MiningRunResult:
        start = time.perf_counter()
        ctx = multiprocessing.get_context(self.start_method)
        shm = None
        if self.start_method == "fork":
            graph_payload = ("direct", self.graph)
        else:
            shm, nbytes = _graph_to_shm(self.graph)
            graph_payload = ("shm", shm.name, nbytes)
        task_q = ctx.Queue()
        result_q = ctx.Queue()
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(
                    w, graph_payload, self._app_blob, self.config,
                    task_q, result_q, self.tracer.enabled,
                ),
                daemon=True,
            )
            for w in range(self.num_procs)
        ]
        try:
            for w in workers:
                w.start()
            self._dispatch_loop(task_q, result_q, workers)
            self._shutdown(task_q, result_q, workers)
        finally:
            for w in workers:
                if w.is_alive():
                    w.terminate()
                w.join(timeout=5.0)
            task_q.cancel_join_thread()
            result_q.cancel_join_thread()
            task_q.close()
            result_q.close()
            if shm is not None:
                shm.close()
                shm.unlink()
            for m in self.machines:
                m.cleanup()
        self.metrics.wall_seconds = time.perf_counter() - start
        collect_machine_metrics(self.metrics, self.machines)
        self.metrics.peak_pending_tasks = max(
            self.metrics.peak_pending_tasks, self._peak_active
        )
        self.metrics.mining_stats.merge(self.app.stats)
        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        return MiningRunResult(
            maximal=maximal, candidates=candidates, metrics=self.metrics
        )

    def _dispatch_loop(self, task_q, result_q, workers) -> None:
        config = self.config
        core = self.core
        slots = self._slots()
        pick_cycle = itertools.cycle(slots)
        route_cycle = itertools.cycle(slots)
        batch_ids = itertools.count()
        outstanding: set[int] = set()
        window = self.num_procs * 2
        steal_enabled = config.use_stealing and config.num_machines > 1
        last_steal = time.monotonic()
        while True:
            while len(outstanding) < window:
                batch = self._collect_batch(pick_cycle, len(slots))
                if not batch:
                    break
                bid = next(batch_ids)
                outstanding.add(bid)
                task_q.put((bid, [t.encode() for t in batch]))
            if not outstanding:
                if core.all_spawned() and self._active == 0:
                    return
                # Nothing dispatchable yet (e.g. work still on spill
                # files mid-refill); let the policy make progress.
                if steal_enabled:
                    core.apply_steals()
                time.sleep(0.001)
                continue
            try:
                msg = result_q.get(timeout=1.0)
            except queue.Empty:
                dead = [w for w in workers if not w.is_alive()]
                if dead:
                    raise RuntimeError(
                        f"{len(dead)} worker process(es) died with in-flight "
                        f"task batches (exit codes: "
                        f"{[w.exitcode for w in dead]})"
                    )
                continue
            if msg[0] == "error":
                _, worker_id, tb = msg
                raise RuntimeError(
                    f"worker process {worker_id} failed:\n{tb}"
                )
            _, worker_id, bid, finished, child_blobs, fresh, metrics, events = msg
            outstanding.discard(bid)
            # Children first, exactly like the threaded driver: the
            # active counter must never hit zero while a finishing
            # parent still has unrouted offspring.
            for blob in child_blobs:
                self._route_child(blob, route_cycle)
            self._active -= finished
            self.metrics.merge(metrics)
            for candidate in fresh:
                self.app.sink.emit(candidate)
            if events:
                self._forward_events(worker_id, events)
            if steal_enabled:
                now = time.monotonic()
                if now - last_steal >= config.steal_period_seconds:
                    core.apply_steals()
                    last_steal = now

    def _shutdown(self, task_q, result_q, workers) -> None:
        for _ in workers:
            task_q.put(None)
        pending = {w.pid for w in workers}
        deadline = time.monotonic() + 30.0
        while pending and time.monotonic() < deadline:
            try:
                msg = result_q.get(timeout=1.0)
            except queue.Empty:
                if all(not w.is_alive() for w in workers):
                    break
                continue
            if msg[0] == "done":
                _, worker_id, stats_blob = msg
                self.metrics.mining_stats.merge(pickle.loads(stats_blob))
                pending.discard(workers[worker_id].pid)
            elif msg[0] == "error":
                raise RuntimeError(
                    f"worker process {msg[1]} failed during shutdown:\n{msg[2]}"
                )
            # Late "batch" messages cannot exist here: the dispatch loop
            # only returns once every outstanding batch was folded in.
        for w in workers:
            w.join(timeout=5.0)


def mine_multiprocess(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig | None = None,
    options=None,
    tracer: Tracer | NullTracer | None = None,
    start_method: str | None = None,
) -> MiningRunResult:
    """Convenience front-end: mine `graph` on the process-pool backend."""
    from ..core.options import DEFAULT_OPTIONS

    config = config or EngineConfig(backend="process")
    app = QuasiCliqueApp(
        gamma=gamma,
        min_size=min_size,
        sink=ResultSink(),
        options=options or DEFAULT_OPTIONS,
    )
    return MultiprocessEngine(
        graph, app, config, tracer=tracer, start_method=start_method
    ).run()
