"""Process-pool executor: SchedulerCore quanta across worker processes.

The serial and threaded drivers in :mod:`repro.gthinker.engine` share
one interpreter, so the CPU-bound backtracking that dominates
quasi-clique mining is serialized by the GIL no matter how many threads
run. The original G-thinker gets its scalability from one mining comper
per core; this executor reproduces that with `multiprocessing`:

* the **parent** owns every piece of scheduler state — the spawn
  cursor, Q_global/Q_local, B_global, the L_big/L_small spill lists,
  steal coordination, and the task-lease table — and drives the same
  :class:`~repro.gthinker.scheduler.SchedulerCore` policy as every
  other executor;
* **workers** hold a read-only copy of the input graph (fork-inherited
  where the platform allows, rebuilt from a
  `multiprocessing.shared_memory` buffer otherwise) plus their own copy
  of the application, receive pickled :class:`Task` batches over a
  per-worker queue, run each task's compute iterations to completion
  (pulls resolve against the local graph copy, so tasks never suspend
  inside a worker), and ship back mined candidates, per-batch
  :class:`EngineMetrics`, forwarded tracer events, and any
  decomposition remainder tasks;
* remainder tasks return to the parent, get fresh task IDs, and re-enter
  the shared routing policy (big → Q_global, small → Q_local), so
  time-delayed decomposition balances load across processes exactly as
  it does across threads.

**Fault tolerance.** Long skewed mining runs are the paper's whole
motivation, and a production run cannot die because one worker did.
Every dispatched batch is recorded in a
:class:`~repro.gthinker.scheduler.TaskLeaseTable` (task ids, per-task
attempt counts, a wall-clock deadline derived from ``tau_time`` plus
``lease_slack``). The parent supervises its pool every loop iteration:

* a worker that **died** (non-zero/None ``Process.exitcode``, broken
  pipe, injected SIGKILL) or whose **lease expired** (wedged — Alg. 10
  promises no task legitimately outruns its budget) is joined,
  its leases are reclaimed, and a fresh worker is respawned in its
  slot;
* reclaimed tasks re-enter the shared routing policy through
  :meth:`SchedulerCore.requeue` after an exponential backoff
  (``retry_backoff × 2^(attempt−1)``);
* a task that has failed ``max_attempts`` dispatches is **quarantined**
  exactly once — surfaced via ``metrics.tasks_quarantined``, the
  ``task_quarantined`` trace event, and ``MultiprocessEngine.
  quarantined`` — instead of crashing the run or retry-storming.

Retry makes execution *at-least-once*, so results must stay exactly
equal to the serial oracle's: candidates are deduplicated by frozenset
in the app's `ResultSink` (the per-task dedup key is the candidate set
itself), and a result message whose lease was already reclaimed is a
*stale duplicate* — its children and metrics are dropped so re-mined
work is never double-counted.

Result channels are isolated per worker *incarnation*: each worker
ships messages over its own one-writer pipe rather than a shared
queue. A shared `multiprocessing.Queue` write lock is a fault-domain
violation — a worker SIGKILLed while its feeder thread holds the lock
dies owning it, wedging every peer's `put` until their leases expire
and the whole pool death-spirals into quarantine. With private pipes a
killed worker can tear only its own channel; the supervisor abandons
it, reclaims the leases, and the rest of the pool never notices.

Because each worker owns a whole-graph replica, pull resolution is
always local: `remote_messages` stays 0 and the vertex cache is idle on
this backend (the partitioned data service is a distribution model, not
a parallelism mechanism). Everything the paper's reforge is about —
routing, pick order, spilling, spawn batching, stealing — still runs,
in the parent.

The application must be picklable: it is shipped once to every worker
at pool start. `MultiprocessEngine` verifies this at construction and
raises a `TypeError` naming the app, instead of letting the first
dispatch die inside a worker.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import pickle
import time
import traceback
import warnings
from array import array
from multiprocessing import connection as mp_connection

from ..core.options import ResultSink
from ..core.postprocess import postprocess_results
from ..graph.adjacency import Graph
from .app_protocol import ComputeContext, GThinkerApp, ensure_app
from .app_quasiclique import QuasiCliqueApp
from .chaos import FaultInjection, die_hard
from .config import EngineConfig
from .engine import MiningRunResult
from .metrics import EngineMetrics
from .scheduler import (
    Lease,
    SchedulerCore,
    TaskLeaseTable,
    build_machines,
    collect_machine_metrics,
)
from .task import Task
from .tracing import NullTracer, Tracer

__all__ = ["FaultInjection", "MultiprocessEngine", "mine_multiprocess"]

#: Trace-event kinds a worker may forward to the parent's tracer.
_WORKER_EVENT_KINDS = ("execute", "finish", "decompose")

#: Batches kept in flight per worker (its queue depth target).
_WINDOW_PER_WORKER = 2


# -- read-only graph shipping ---------------------------------------------


def _graph_to_shm(graph: Graph):
    """Serialize `graph` into a shared-memory int64 buffer.

    Layout: [num_vertices, num_edges, v_0..v_{n-1}, u_0, w_0, ...].
    Vertex IDs are arbitrary non-negative ints (no compaction needed).
    """
    from multiprocessing import shared_memory

    data = array("q", [graph.num_vertices, graph.num_edges])
    data.extend(sorted(graph.vertices()))
    for u, w in graph.edges():
        data.append(u)
        data.append(w)
    payload = data.tobytes()
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    shm.buf[: len(payload)] = payload
    return shm, len(payload)


def _attach_shm_untracked(name: str):
    """Attach to a parent-owned segment without resource tracking.

    The parent owns the segment's lifetime; letting workers register it
    with the (shared) resource tracker causes spurious KeyError noise at
    exit when several workers attach the same name (bpo-38119). Python
    3.13 has `track=False` for exactly this; on older versions the
    standard workaround is suppressing registration around the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= not supported (< 3.13)
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(res_name, rtype):
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _graph_from_shm(name: str, nbytes: int) -> Graph:
    """Rebuild the read-only graph copy inside a spawned worker."""
    shm = _attach_shm_untracked(name)
    try:
        data = array("q")
        data.frombytes(bytes(shm.buf[:nbytes]))
    finally:
        shm.close()
    num_vertices, num_edges = data[0], data[1]
    vertices = data[2 : 2 + num_vertices]
    flat = data[2 + num_vertices : 2 + num_vertices + 2 * num_edges]
    edges = ((flat[i], flat[i + 1]) for i in range(0, len(flat), 2))
    return Graph.from_edges(edges, vertices=vertices)


def _resolve_graph(graph_payload) -> Graph:
    kind = graph_payload[0]
    if kind == "direct":  # fork: the object itself rode through the fork
        return graph_payload[1]
    _, name, nbytes = graph_payload  # spawn/forkserver: rebuild from shm
    return _graph_from_shm(name, nbytes)


# -- the worker process ----------------------------------------------------


def _run_task(app, config, graph, task, next_task_id, metrics, events):
    """Run one task's compute iterations to completion; returns children.

    Pulls resolve against the worker's whole-graph replica, so a task
    never suspends here — the suspend/re-buffer path belongs to the
    executors whose data service is partitioned.
    """
    ctx = ComputeContext(
        config=config, next_task_id=next_task_id, record=metrics.record_task
    )
    children: list[Task] = []
    while True:
        if task.pulls:
            frontier = {
                v: (graph.neighbors(v) if graph.has_vertex(v) else [])
                for v in task.pulls
            }
            task.pulls = []
        else:
            frontier = {}
        if events is not None:
            events.append(("execute", task.task_id, ""))
        outcome = app.compute(task, frontier, ctx)
        if outcome.new_tasks:
            children.extend(outcome.new_tasks)
            if events is not None:
                events.append(
                    ("decompose", task.task_id, f"children={len(outcome.new_tasks)}")
                )
        if outcome.finished:
            if events is not None:
                events.append(("finish", task.task_id, ""))
            return children


def _worker_main(
    worker_id: int,
    graph_payload,
    app_blob: bytes,
    config: EngineConfig,
    injection: FaultInjection | None,
    task_q,
    result_conn,
    trace_enabled: bool,
) -> None:
    """Worker loop: decode batches, mine, ship results back.

    Message protocol (worker → parent, over this incarnation's private
    result pipe — one writer per pipe, so a SIGKILLed worker can never
    leave a shared write lock held and wedge its peers; sends happen on
    this thread, so every completed batch is flushed before the next
    batch is even received):
      ("batch", worker_id, batch_id, finished, child_blobs, candidates,
       metrics, events) per processed batch;
      ("done", worker_id, stats_blob) on sentinel;
      ("error", worker_id, traceback_text) on any failure (the worker
       exits afterwards; the parent's supervisor respawns it).

    `injection` is the chaos hook: when set, this incarnation SIGKILLs
    itself upon receiving a batch after completing `after_batches` of
    them (the parent only passes it to the targeted worker's first
    incarnation).
    """
    try:
        graph = _resolve_graph(graph_payload)
        app = pickle.loads(app_blob)
        # Provisional child IDs; the parent renumbers on receipt, so
        # negative values can never collide with scheduler-issued IDs.
        provisional = itertools.count(1)
        shipped: set[frozenset[int]] = set()
        completed = 0
        while True:
            item = task_q.get()
            if item is None:
                result_conn.send(("done", worker_id, pickle.dumps(app.stats)))
                return
            if injection is not None and completed >= injection.after_batches:
                die_hard()
            batch_id, blobs = item
            metrics = EngineMetrics()
            events: list | None = [] if trace_enabled else None
            children: list[Task] = []
            for blob in blobs:
                task = Task.decode(blob)
                children.extend(
                    _run_task(
                        app, config, graph, task,
                        lambda: -next(provisional), metrics, events,
                    )
                )
            results = app.sink.results()
            fresh = results - shipped
            shipped |= fresh
            result_conn.send(
                (
                    "batch",
                    worker_id,
                    batch_id,
                    len(blobs),
                    [t.encode() for t in children],
                    fresh,
                    metrics,
                    events or [],
                )
            )
            completed += 1
    except BaseException:
        try:
            result_conn.send(("error", worker_id, traceback.format_exc()))
        except OSError:  # parent already closed the pipe mid-shutdown
            pass


# -- the parent-side engine ------------------------------------------------


class MultiprocessEngine:
    """Run one mining job over a supervised pool of worker processes.

    The parent is the only scheduler: it spawns tasks from the vertex
    table, routes and picks through `SchedulerCore`, leases picked
    batches to workers over per-worker queues, and folds worker results
    — candidates, metrics, tracer events, remainder tasks — back in.
    Workers are expendable: death or wedging triggers lease reclaim,
    backoff retry, respawn, and (after `config.max_attempts` failed
    dispatches of a task) quarantine — never a crashed run.
    """

    def __init__(
        self,
        graph: Graph,
        app: GThinkerApp,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
        start_method: str | None = None,
        fault_injection: FaultInjection | None = None,
    ):
        self.graph = graph
        self.app = ensure_app(app)
        self.config = config
        try:
            self._app_blob = pickle.dumps(app, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"the process backend ships the app to every worker, but "
                f"{type(app).__name__} is not picklable: {exc}. Keep engine "
                f"apps free of locks, open files, and lambdas, or use the "
                f"threaded backend."
            ) from exc
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        elif start_method not in available:
            raise ValueError(
                f"start method {start_method!r} not available here "
                f"(have: {', '.join(available)})"
            )
        self.start_method = start_method
        self.num_procs = config.resolved_num_procs
        self.machines = build_machines(graph, config)
        self.metrics = EngineMetrics()
        self._active = 0
        self._peak_active = 0
        self.core = SchedulerCore(
            app, config, self.machines, tracer,
            metrics=self.metrics,
            task_queued=self._task_born,
        )
        self.tracer = self.core.tracer
        # -- fault-tolerance state ----------------------------------------
        self.leases = TaskLeaseTable(config.max_attempts)
        self._injection = fault_injection
        #: Tasks poisoned after max_attempts failed dispatches.
        self.quarantined: list[Task] = []
        #: (task_id, attempt, backoff_delay) per scheduled retry — the
        #: observable backoff sequence, asserted by tests.
        self.retry_schedule: list[tuple[int, int, float]] = []
        #: Tracebacks reported by workers that failed at the app level.
        self.worker_errors: list[str] = []
        self._retry_heap: list[tuple[float, int, int, Task]] = []
        self._retry_seq = itertools.count()
        self._batch_ids = itertools.count()
        self._procs: list = []
        self._task_qs: list = []
        self._result_conns: list = []
        self._generations: list[int] = []
        self._outstanding: list[set[int]] = []

    def _task_born(self, task: Task) -> None:
        self._active += 1
        self._peak_active = max(self._peak_active, self._active)

    # -- parent-side scheduling -------------------------------------------

    def _slots(self):
        return [
            (machine, slot)
            for machine in self.machines
            for slot in machine.threads
        ]

    def _collect_batch(self, slot_cycle, num_slots: int) -> list[Task]:
        """Pick up to one batch of tasks, round-robin across pick sources."""
        batch: list[Task] = []
        for _ in range(num_slots):
            machine, slot = next(slot_cycle)
            while len(batch) < self.config.batch_size:
                task = self.core.pick(machine, slot)
                if task is None:
                    break
                batch.append(task)
            if len(batch) >= self.config.batch_size:
                break
        return batch

    def _route_child(self, blob: bytes) -> None:
        child = Task.decode(blob)
        child.task_id = self.core.next_task_id()
        machine, slot = next(self._route_cycle)
        self.core.route(child, machine, slot)

    def _forward_events(self, worker_id: int, events) -> None:
        for kind, task_id, detail in events:
            if kind in _WORKER_EVENT_KINDS:
                self.tracer.emit(
                    kind, task_id, machine=-1, thread=worker_id, detail=detail
                )

    # -- pool management ----------------------------------------------------

    def _spawn_worker(self, worker_id: int, generation: int) -> None:
        """(Re)start the worker in slot `worker_id` with a fresh queue.

        Each incarnation gets a private result pipe: the worker is the
        pipe's only writer, so there is no cross-worker write lock for a
        SIGKILLed process to die holding, and a partially-written frame
        from a terminated worker corrupts only its own (abandoned)
        channel — never a peer's.
        """
        injection = None
        if (
            self._injection is not None
            and self._injection.worker_id == worker_id
            and generation == 0
        ):
            injection = self._injection
        task_q = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        old_conn = self._result_conns[worker_id]
        if old_conn is not None:
            old_conn.close()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id, self._graph_payload, self._app_blob, self.config,
                injection, task_q, send_conn, self.tracer.enabled,
            ),
            daemon=True,
        )
        self._task_qs[worker_id] = task_q
        self._result_conns[worker_id] = recv_conn
        self._procs[worker_id] = proc
        self._generations[worker_id] = generation
        self._outstanding[worker_id] = set()
        proc.start()
        # The worker holds the write end now; dropping the parent's copy
        # makes worker death observable as EOF on `recv_conn`.
        send_conn.close()

    def _fail_worker(self, worker_id: int, reason: str, now: float) -> None:
        """Handle one dead/wedged worker: reclaim its leases, respawn it."""
        proc = self._procs[worker_id]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        # Results the worker shipped before failing are done work, not
        # retries — fold them in before reclaiming what remains.
        self._drain_results()
        self.metrics.workers_died += 1
        self.tracer.emit(
            "worker_died", -1, machine=-1, thread=worker_id, detail=reason
        )
        # Anything still sitting on the dead worker's queue is covered
        # by its leases; the queue itself is discarded.
        old_q = self._task_qs[worker_id]
        old_q.cancel_join_thread()
        old_q.close()
        for lease in self.leases.leases_for(worker_id):
            self._reclaim(lease, now)
        self._spawn_worker(worker_id, self._generations[worker_id] + 1)

    def _reclaim(self, lease: Lease, now: float) -> None:
        """Requeue-or-quarantine every task of one failed lease."""
        retry, quarantine = self.leases.reclaim(lease)
        self._outstanding[lease.worker_id].discard(lease.batch_id)
        for task, attempts in quarantine:
            self._active -= 1
            self.metrics.tasks_quarantined += 1
            self.quarantined.append(task)
            self.tracer.emit(
                "task_quarantined", task.task_id, machine=-1,
                thread=lease.worker_id, detail=f"attempts={attempts}",
            )
        for task, attempts in retry:
            delay = self.config.retry_delay(attempts)
            self.retry_schedule.append((task.task_id, attempts, delay))
            heapq.heappush(
                self._retry_heap,
                (now + delay, next(self._retry_seq), attempts, task),
            )

    def _flush_due_retries(self, now: float) -> None:
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, attempts, task = heapq.heappop(self._retry_heap)
            machine, slot = next(self._route_cycle)
            self.core.requeue(task, machine, slot, attempt=attempts)

    def _supervise(self, now: float) -> None:
        """Detect dead and wedged workers; reclaim and respawn."""
        for worker_id, proc in enumerate(self._procs):
            if not proc.is_alive():
                self._fail_worker(
                    worker_id, f"exitcode={proc.exitcode}", now
                )
        for lease in self.leases.expired(now):
            # An earlier reclaim this round may have taken it already.
            if self.leases.get(lease.batch_id) is not None:
                self._fail_worker(
                    lease.worker_id,
                    f"lease {lease.batch_id} expired (wedged worker)", now,
                )

    # -- driver ------------------------------------------------------------

    def run(self) -> MiningRunResult:
        start = time.perf_counter()
        self._ctx = multiprocessing.get_context(self.start_method)
        shm = None
        if self.start_method == "fork":
            self._graph_payload = ("direct", self.graph)
        else:
            shm, nbytes = _graph_to_shm(self.graph)
            self._graph_payload = ("shm", shm.name, nbytes)
        self._procs = [None] * self.num_procs
        self._task_qs = [None] * self.num_procs
        self._result_conns = [None] * self.num_procs
        self._generations = [0] * self.num_procs
        self._outstanding = [set() for _ in range(self.num_procs)]
        try:
            for w in range(self.num_procs):
                self._spawn_worker(w, generation=0)
            self._dispatch_loop()
            self._shutdown()
        finally:
            for proc in self._procs:
                if proc is None:
                    continue
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5.0)
            for q in self._task_qs:
                if q is None:
                    continue
                q.cancel_join_thread()
                q.close()
            for conn in self._result_conns:
                if conn is not None:
                    conn.close()
            if shm is not None:
                shm.close()
                shm.unlink()
            for m in self.machines:
                m.cleanup()
        self.metrics.wall_seconds = time.perf_counter() - start
        collect_machine_metrics(self.metrics, self.machines)
        self.metrics.peak_pending_tasks = max(
            self.metrics.peak_pending_tasks, self._peak_active
        )
        self.metrics.mining_stats.merge(self.app.stats)
        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        return MiningRunResult(
            maximal=maximal, candidates=candidates, metrics=self.metrics
        )

    def _fill_windows(self, pick_cycle, num_slots: int, now: float) -> None:
        """Lease fresh batches to every worker with spare window."""
        for worker_id in range(self.num_procs):
            while len(self._outstanding[worker_id]) < _WINDOW_PER_WORKER:
                batch = self._collect_batch(pick_cycle, num_slots)
                if not batch:
                    return  # nothing pickable right now
                self._dispatch(worker_id, batch, now)

    def _dispatch(self, worker_id: int, batch: list[Task], now: float) -> None:
        batch_id = next(self._batch_ids)
        self.leases.grant(
            batch_id, worker_id, batch, now,
            self.config.lease_timeout(len(batch)),
        )
        self._outstanding[worker_id].add(batch_id)
        self._task_qs[worker_id].put((batch_id, [t.encode() for t in batch]))

    def _dispatch_loop(self) -> None:
        config = self.config
        core = self.core
        slots = self._slots()
        pick_cycle = itertools.cycle(slots)
        self._route_cycle = itertools.cycle(slots)
        steal_enabled = config.use_stealing and config.num_machines > 1
        last_steal = time.monotonic()
        while True:
            now = time.monotonic()
            self._flush_due_retries(now)
            self._supervise(now)
            self._fill_windows(pick_cycle, len(slots), now)
            if not self.leases:
                if (
                    core.all_spawned()
                    and self._active == 0
                    and not self._retry_heap
                ):
                    return
                # Nothing dispatchable yet (work on spill files
                # mid-refill, or retries still backing off); let the
                # policy make progress.
                if steal_enabled:
                    core.apply_steals()
                time.sleep(0.001)
                continue
            ready = mp_connection.wait(self._live_conns(), timeout=0.05)
            if not ready:
                continue
            for conn in ready:
                msg = self._recv_from(conn)
                if msg is not None:
                    self._handle_message(msg)
            if steal_enabled:
                now = time.monotonic()
                if now - last_steal >= config.steal_period_seconds:
                    core.apply_steals()
                    last_steal = now

    def _live_conns(self):
        return [c for c in self._result_conns if c is not None and not c.closed]

    def _recv_from(self, conn):
        """Receive one message, tolerating a dead writer.

        EOF (the worker exited) and a torn frame (the worker was
        terminated mid-send) poison only this incarnation's private
        pipe: the channel is closed and abandoned. Anything its
        remaining messages carried is re-run through lease reclaim.
        """
        try:
            return conn.recv()
        except (EOFError, OSError, pickle.UnpicklingError):
            conn.close()
            for slot, held in enumerate(self._result_conns):
                if held is conn:
                    self._result_conns[slot] = None
            return None

    def _drain_results(self) -> None:
        """Fold in every result message already sitting in the pipes."""
        for conn in list(self._result_conns):
            if conn is None:
                continue
            while not conn.closed and conn.poll():
                msg = self._recv_from(conn)
                if msg is None:
                    break
                self._handle_message(msg)

    def _handle_message(self, msg) -> None:
        kind = msg[0]
        if kind == "error":
            # App-level failure: the worker ships its traceback and
            # exits; the supervisor will reclaim and respawn on the next
            # round. Record loudly — a deterministic app bug surfaces
            # here attempt after attempt until quarantine.
            _, worker_id, tb = msg
            self.worker_errors.append(tb)
            last = tb.strip().splitlines()[-1] if tb.strip() else "unknown error"
            warnings.warn(
                f"worker process {worker_id} failed ({last}); its leased "
                f"batches will be retried or quarantined",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        if kind == "done":
            # A shutdown acknowledgement cannot appear mid-dispatch, but
            # tolerate it rather than crash a run that is otherwise fine.
            return
        _, worker_id, batch_id, finished, child_blobs, fresh, wmetrics, events = msg
        # Candidates are deduplicated by the sink, so folding them in is
        # always safe — even from a stale duplicate.
        for candidate in fresh:
            self.app.sink.emit(candidate)
        lease = self.leases.complete(batch_id)
        if lease is None:
            # Stale at-least-once duplicate: the lease was reclaimed and
            # the batch re-dispatched. Its children and metrics belong
            # to the retry; dropping them keeps accounting single-count.
            return
        self._outstanding[lease.worker_id].discard(batch_id)
        # Children first, exactly like the threaded driver: the active
        # counter must never hit zero while a finishing parent still has
        # unrouted offspring.
        for blob in child_blobs:
            self._route_child(blob)
        self._active -= finished
        self.metrics.merge(wmetrics)
        if events:
            self._forward_events(worker_id, events)

    def _shutdown(self) -> None:
        for task_q in self._task_qs:
            try:
                task_q.put(None)
            except (ValueError, OSError):  # queue already closed
                pass
        pending = set(range(self.num_procs))
        deadline = time.monotonic() + 30.0
        while pending and time.monotonic() < deadline:
            ready = mp_connection.wait(self._live_conns(), timeout=1.0)
            if not ready:
                if all(not proc.is_alive() for proc in self._procs):
                    break
                continue
            for conn in ready:
                msg = self._recv_from(conn)
                if msg is None:
                    continue
                if msg[0] == "done":
                    _, worker_id, stats_blob = msg
                    self.metrics.mining_stats.merge(pickle.loads(stats_blob))
                    pending.discard(worker_id)
                elif msg[0] == "batch":
                    # A stale duplicate flushed by a worker we terminated
                    # for lease expiry: every lease was settled before
                    # the dispatch loop returned, so only fold the
                    # (deduplicated) candidates.
                    for candidate in msg[5]:
                        self.app.sink.emit(candidate)
                elif msg[0] == "error":
                    # All mining already completed; losing this worker's
                    # final stats blob is not worth failing the run over.
                    self.worker_errors.append(msg[2])
                    pending.discard(msg[1])
        for proc in self._procs:
            proc.join(timeout=5.0)


def mine_multiprocess(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig | None = None,
    options=None,
    tracer: Tracer | NullTracer | None = None,
    start_method: str | None = None,
    fault_injection: FaultInjection | None = None,
) -> MiningRunResult:
    """Convenience front-end: mine `graph` on the process-pool backend."""
    from ..core.options import DEFAULT_OPTIONS

    config = config or EngineConfig(backend="process")
    app = QuasiCliqueApp(
        gamma=gamma,
        min_size=min_size,
        sink=ResultSink(),
        options=options or DEFAULT_OPTIONS,
    )
    return MultiprocessEngine(
        graph, app, config, tracer=tracer, start_method=start_method,
        fault_injection=fault_injection,
    ).run()
