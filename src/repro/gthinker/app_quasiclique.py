"""Quasi-clique mining as a G-thinker application (paper Algorithms 4–10).

The engine is generic over an *application* exposing two UDFs, exactly
as G-thinker prescribes:

* ``spawn(vertex, adjacency)`` — create (or decline) a task for one
  vertex of the local vertex table;
* ``compute(task, frontier, ctx)`` — run one iteration of a task given
  the adjacency lists it pulled last round.

For quasi-cliques, iterations 1–2 assemble the k-core of the root's
2-hop, larger-ID ego subgraph (Algorithms 6–7); iteration 3 mines it,
decomposing per the configured strategy (Algorithms 8–10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.domain import TaskDomain
from ..core.iterative_bounding import check_and_emit, check_and_emit_masked
from ..core.options import MinerOptions, MiningJob, MiningStats, ResultSink, DEFAULT_OPTIONS
from ..core.quasiclique import kcore_threshold
from ..core.recursive_mine import recursive_mine, recursive_mine_masked
from ..graph.adjacency import Graph
from ..graph.kcore import peel_adjacency
from .app_protocol import ComputeContext, gthinker_app
from .clock import make_budget
from .decompose import (
    size_threshold_split,
    size_threshold_split_masked,
    time_delayed_mine,
    time_delayed_mine_masked,
)
from .metrics import TaskRecord
from .task import ComputeOutcome, Task

__all__ = ["ComputeContext", "QuasiCliqueApp"]


@gthinker_app
@dataclass
class QuasiCliqueApp:
    """The paper's mining application, parameterized by (γ, τ_size)."""

    gamma: float
    min_size: int
    sink: ResultSink
    options: MinerOptions = DEFAULT_OPTIONS
    stats: MiningStats = field(default_factory=MiningStats)

    def __post_init__(self) -> None:
        self.k = kcore_threshold(self.gamma, self.min_size)

    # -- UDF 1: task spawning (Algorithm 4) -----------------------------

    def spawn(self, vertex: int, adjacency: list[int], task_id: int) -> Task | None:
        """Spawn the task mining quasi-cliques whose smallest vertex is `vertex`."""
        if len(adjacency) < self.k:
            return None
        if self.min_size <= 1:
            # A singleton is a valid quasi-clique for any γ; emit the
            # candidate here since Algorithm 2 only ever outputs S ⊋ {v}.
            self.sink.emit([vertex])
        pulls = [u for u in adjacency if u > vertex]
        task = Task(
            task_id=task_id,
            root=vertex,
            iteration=1,
            s=[vertex],
            building={vertex: set(pulls)},
            pulls=pulls,
        )
        return task

    # -- UDF 2: compute (Algorithm 5 dispatch) ---------------------------

    def compute(
        self, task: Task, frontier: dict[int, list[int]], ctx: ComputeContext
    ) -> ComputeOutcome:
        if task.iteration == 1:
            return self._iteration_1(task, frontier)
        if task.iteration == 2:
            return self._iteration_2(task, frontier)
        return self._iteration_3(task, ctx)

    # -- Iteration 1 (Algorithm 6): 1-hop assembly ------------------------

    def _iteration_1(self, task: Task, frontier: dict[int, list[int]]) -> ComputeOutcome:
        v = task.root
        k = self.k
        task.one_hop = {v} | set(frontier)
        low_degree = {u for u, adj in frontier.items() if len(adj) < k}
        building: dict[int, set[int]] = {
            v: {u for u in task.building[v] if u not in low_degree}
        }
        for u, adj in frontier.items():
            if u in low_degree:
                continue
            # Keep destinations w ≥ v not known to be low-degree; 2-hop
            # destinations stay (their degree is unknown until pulled).
            building[u] = {w for w in adj if w >= v and w not in low_degree}
        peel_adjacency(building, k)
        if v not in building:
            cost = len(frontier) + sum(len(adj) for adj in frontier.values())
            return ComputeOutcome(finished=True, cost_ops=cost)
        task.building = building
        pulls: set[int] = set()
        for nbrs in building.values():
            for w in nbrs:
                if w > v and w not in task.one_hop:
                    pulls.add(w)
        task.pulls = sorted(pulls)
        task.iteration = 2
        cost = len(frontier) + sum(len(adj) for adj in frontier.values())
        return ComputeOutcome(finished=False, cost_ops=cost)

    # -- Iteration 2 (Algorithm 7): 2-hop assembly + closure ---------------

    def _iteration_2(self, task: Task, frontier: dict[int, list[int]]) -> ComputeOutcome:
        v = task.root
        k = self.k
        building = task.building
        assert building is not None and task.one_hop is not None
        within_two_hops = set(frontier) | task.one_hop
        for u, adj in frontier.items():
            if len(adj) < k:
                continue
            building[u] = {w for w in adj if w >= v and w in within_two_hops}
        # Close the graph: drop destination-only vertices (2-hop vertices
        # that were pruned or never materialized), then peel to a k-core.
        keys = set(building)
        for u in building:
            building[u] &= keys
        peel_adjacency(building, k)
        cost = len(frontier) + sum(len(adj) for adj in frontier.values())
        cost += sum(len(nbrs) for nbrs in building.values())
        if v not in building:
            return ComputeOutcome(finished=True, cost_ops=cost)
        if self.options.use_bitset_domain:
            # Compact bitmask domain: the pickled task ships two tuples
            # of ints instead of a dict-of-lists + dict-of-sets Graph.
            task.domain = TaskDomain.from_adjacency(building)
        else:
            graph = Graph()
            for u in building:
                graph.add_vertex(u)
            for u, nbrs in building.items():
                for w in nbrs:
                    graph.add_edge(u, w)
            task.graph = graph
        task.building = None
        task.one_hop = None
        task.pulls = []
        task.s = [v]
        task.ext = sorted(u for u in building if u != v)
        task.iteration = 3
        return ComputeOutcome(finished=False, cost_ops=cost)

    # -- Iteration 3 (Algorithms 8–10): mining + decomposition --------------

    def _iteration_3(self, task: Task, ctx: ComputeContext) -> ComputeOutcome:
        config = ctx.config
        domain = task.domain
        graph = task.graph
        assert domain is not None or graph is not None
        stats = MiningStats()
        job = MiningJob(
            graph=domain if domain is not None else graph,
            gamma=self.gamma,
            min_size=self.min_size,
            sink=self.sink,
            options=self.options,
            stats=stats,
        )
        new_tasks: list[Task] = []
        materialize_seconds = 0.0
        materialize_ops = 0

        def spawn_subtask(s_prime: list[int], ext_prime: list[int]) -> None:
            nonlocal materialize_seconds, materialize_ops
            t0 = time.perf_counter()
            members = set(s_prime) | set(ext_prime)
            sub = graph.subgraph(members)
            cost = sub.num_vertices + sub.num_edges
            materialize_seconds += time.perf_counter() - t0
            materialize_ops += cost
            stats.mining_ops += cost
            new_tasks.append(
                Task(
                    task_id=ctx.next_task_id(),
                    root=task.root,
                    iteration=3,
                    s=list(s_prime),
                    ext=list(ext_prime),
                    graph=sub,
                    generation=task.generation + 1,
                )
            )

        def spawn_subtask_masked(s_mask: int, ext_mask: int) -> None:
            nonlocal materialize_seconds, materialize_ops
            t0 = time.perf_counter()
            sub = domain.restrict(s_mask | ext_mask)
            cost = sub.num_vertices + sub.num_edges
            materialize_seconds += time.perf_counter() - t0
            materialize_ops += cost
            stats.mining_ops += cost
            new_tasks.append(
                Task(
                    task_id=ctx.next_task_id(),
                    root=task.root,
                    iteration=3,
                    s=domain.globals_of(s_mask),
                    ext=domain.globals_of(ext_mask),
                    domain=sub,
                    generation=task.generation + 1,
                )
            )

        t_start = time.perf_counter()
        if domain is not None:
            s_mask = domain.mask_of_globals(task.s)
            ext_mask = domain.mask_of_globals(task.ext)
            if not ext_mask:
                # Nothing to extend with; the subgraph collapsed to S.
                if len(task.s) > 1 or self.min_size <= 1:
                    check_and_emit_masked(job, domain, s_mask)
            elif config.decompose == "none":
                recursive_mine_masked(job, domain, s_mask, ext_mask)
            elif config.decompose == "size":
                if len(task.ext) <= config.tau_split:
                    recursive_mine_masked(job, domain, s_mask, ext_mask)
                else:
                    size_threshold_split_masked(
                        job, domain, s_mask, ext_mask, spawn_subtask_masked
                    )
            else:  # 'timed' (Algorithm 9/10)
                budget = make_budget(config.time_unit, config.tau_time, stats)
                time_delayed_mine_masked(
                    job, domain, s_mask, ext_mask, budget, spawn_subtask_masked
                )
        elif not task.ext:
            # Nothing to extend with; the subgraph collapsed to S.
            if len(task.s) > 1 or self.min_size <= 1:
                check_and_emit(job, list(task.s))
        elif config.decompose == "none":
            recursive_mine(job, list(task.s), list(task.ext))
        elif config.decompose == "size":
            if len(task.ext) <= config.tau_split:
                recursive_mine(job, list(task.s), list(task.ext))
            else:
                size_threshold_split(job, list(task.s), list(task.ext), spawn_subtask)
        else:  # 'timed' (Algorithm 9/10)
            budget = make_budget(config.time_unit, config.tau_time, stats)
            time_delayed_mine(job, list(task.s), list(task.ext), budget, spawn_subtask)
        elapsed = time.perf_counter() - t_start

        self.stats.merge(stats)
        if ctx.record is not None:
            sub_source = domain if domain is not None else graph
            ctx.record(
                TaskRecord(
                    task_id=task.task_id,
                    root=task.root,
                    generation=task.generation,
                    subgraph_vertices=sub_source.num_vertices,
                    subgraph_edges=sub_source.num_edges,
                    mining_seconds=max(0.0, elapsed - materialize_seconds),
                    mining_ops=stats.mining_ops - materialize_ops,
                    materialize_seconds=materialize_seconds,
                    materialize_ops=materialize_ops,
                    subtasks_created=len(new_tasks),
                )
            )
        return ComputeOutcome(
            finished=True, new_tasks=new_tasks, cost_ops=max(1, stats.mining_ops)
        )
