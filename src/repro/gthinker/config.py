"""Engine configuration (the paper's hyperparameters plus system knobs)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of one G-thinker job.

    The two hyperparameters the paper sweeps (Tables 3–4):

    * ``tau_split`` — |ext(S)| threshold routing a task to the machine's
      global big-task queue instead of a thread's local queue; in
      size-threshold decomposition mode it is also the split trigger.
    * ``tau_time``  — the time-delayed decomposition budget per task
      execution. Interpreted in seconds when ``time_unit='wall'`` or in
      abstract mining operations when ``time_unit='ops'`` (deterministic;
      default, and mandatory for the simulated cluster).
    """

    num_machines: int = 1
    threads_per_machine: int = 1
    tau_split: int = 64
    tau_time: float = float("inf")
    time_unit: str = "ops"
    #: 'timed' (Alg. 10), 'size' (Alg. 8), or 'none' (never decompose).
    decompose: str = "timed"
    queue_capacity: int = 512
    batch_size: int = 16
    cache_capacity: int = 1 << 16
    spill_dir: str | None = None
    steal_period_seconds: float = 0.02
    #: Reforge ablations: the global big-task queue and big-task stealing.
    use_global_queue: bool = True
    use_stealing: bool = True
    #: Simulated-cluster only: virtual cost added per remote message.
    sim_message_cost: float = 0.0
    #: Vertex-table partition strategy: 'hash' (paper), 'range', or
    #: 'balanced_degree' (see repro.gthinker.partition).
    partition: str = "hash"
    #: Executor selection for dispatching front-ends (mine_parallel, the
    #: CLI): 'auto' keeps the historical rule (serial fast path at 1×1,
    #: threaded otherwise); 'serial'/'threaded' force one driver;
    #: 'process' runs workers in a multiprocessing pool (engine_mp);
    #: 'cluster' runs the TCP master/worker runtime (repro.gthinker.
    #: cluster) on localhost; 'simulated' marks a config for the
    #: virtual-time cluster.
    backend: str = "auto"
    #: Process/cluster-backend worker count; 0 means os.cpu_count().
    num_procs: int = 0
    #: Process-backend fault tolerance: how many times a task may be
    #: dispatched before its batch is quarantined as poisoned.
    max_attempts: int = 3
    #: Wall-clock slack (seconds) added to a batch lease on top of its
    #: tau_time-derived budget; past the deadline the worker is treated
    #: as wedged and its leases are reclaimed.
    lease_slack: float = 10.0
    #: Base (seconds) of the exponential backoff between dispatch
    #: attempts of a reclaimed task.
    retry_backoff: float = 0.05
    #: Leases kept in flight per worker on the distributed backends
    #: (pipelining without hoarding: a dead worker forfeits at most this
    #: many leases' worth of work).
    lease_window: int = 2
    #: Cluster backend: how often a worker reports liveness and its
    #: pending-big count to the master (the stealing planner's input).
    heartbeat_period: float = 0.25
    #: Cluster backend: a worker whose last heartbeat is older than this
    #: is declared dead and its leased work is reclaimed (socket EOF is
    #: the fast path; this is the backup for wedged-but-connected
    #: workers).
    heartbeat_timeout: float = 10.0
    #: Cluster backend: spawn vertices per SpawnRange work unit; 0 sizes
    #: chunks automatically (~8 units per worker) so dead-worker
    #: reassignment has useful granularity.
    cluster_chunk_size: int = 0
    #: Seconds between live-progress snapshots emitted by the process-pool
    #: parent and the cluster master (`progress` trace event + on_progress
    #: callback). 0 = automatic: 1s whenever a callback or tracer is
    #: attached, otherwise off.
    progress_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.num_machines < 1 or self.threads_per_machine < 1:
            raise ValueError("need at least one machine and one thread")
        if self.backend not in (
            "auto", "serial", "threaded", "process", "cluster", "simulated"
        ):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.num_procs < 0:
            raise ValueError("num_procs must be >= 0 (0 = cpu count)")
        if self.decompose not in ("timed", "size", "none"):
            raise ValueError(f"unknown decompose mode {self.decompose!r}")
        if self.time_unit not in ("wall", "ops"):
            raise ValueError(f"unknown time_unit {self.time_unit!r}")
        if self.tau_split < 0:
            raise ValueError("tau_split must be non-negative")
        if self.partition not in ("hash", "range", "balanced_degree"):
            raise ValueError(f"unknown partition strategy {self.partition!r}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.lease_slack < 0:
            raise ValueError("lease_slack must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.lease_window < 1:
            raise ValueError("lease_window must be >= 1")
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.heartbeat_timeout <= self.heartbeat_period:
            raise ValueError("heartbeat_timeout must exceed heartbeat_period")
        if self.cluster_chunk_size < 0:
            raise ValueError("cluster_chunk_size must be >= 0 (0 = auto)")
        if self.progress_interval < 0:
            raise ValueError("progress_interval must be >= 0 (0 = auto)")

    @classmethod
    def from_payload(cls, payload: dict) -> "EngineConfig":
        """Build a config from a JSON-shaped dict (the service submit body).

        Unknown keys are rejected (a typoed knob must not silently run
        with defaults), and ``"inf"`` is accepted for ``tau_time`` since
        JSON has no infinity literal. Field validation then runs in
        ``__post_init__`` as usual.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - names)
        if unknown:
            raise ValueError(f"unknown engine config keys: {', '.join(unknown)}")
        kwargs = dict(payload)
        if isinstance(kwargs.get("tau_time"), str):
            kwargs["tau_time"] = float(kwargs["tau_time"])
        return cls(**kwargs)

    @property
    def total_threads(self) -> int:
        return self.num_machines * self.threads_per_machine

    @property
    def resolved_num_procs(self) -> int:
        """Process-backend worker count with the 0 = cpu-count default."""
        if self.num_procs:
            return self.num_procs
        import os

        return os.cpu_count() or 1

    # -- fault-tolerance arithmetic (process backend) ----------------------

    def retry_delay(self, attempt: int) -> float:
        """Backoff before re-dispatching a task that failed `attempt` times.

        Exponential: ``retry_backoff × 2^(attempt−1)`` seconds, so the
        sequence for the default base is 0.05, 0.1, 0.2, … (delegates to
        the control plane's :func:`~repro.gthinker.runtime.backoff_delay`).
        """
        from .runtime.retry import backoff_delay

        return backoff_delay(self.retry_backoff, attempt)

    def lease_timeout(self, batch_len: int) -> float:
        """Wall-clock lease granted to a dispatched batch of `batch_len` tasks.

        Time-delayed decomposition (Alg. 10) promises no task legitimately
        runs past its tau_time budget, so when tau_time is a wall-clock
        bound the lease is one budget per task plus `lease_slack` for
        shipping and scheduling; with an ops-based or unbounded tau_time
        only the slack applies.
        """
        per_task = (
            self.tau_time
            if self.time_unit == "wall" and self.tau_time != float("inf")
            else 0.0
        )
        return per_task * batch_len + self.lease_slack
