"""Maximum-clique mining as a second G-thinker application.

Demonstrates that the reforged engine (queues, spilling, stealing,
decomposition) is generic over applications, exactly as G-thinker's
UDF design intends — the paper's own flagship G-thinker app is maximum
clique on Friendster. The app follows the standard task shape:

* spawn(v): pull v's larger-ID neighbors (a clique containing v as its
  smallest vertex lives entirely inside Γ_{>v}(v) ∪ {v});
* iteration 1: pull the neighbors' adjacency lists;
* iteration 2: build the induced candidate subgraph and run branch and
  bound against a *shared incumbent*; tasks with big candidate sets
  split one set-enumeration level into subtasks, each carrying its own
  materialized subgraph (size-threshold decomposition — clique tasks
  are cheap enough that the paper's plain G-thinker handled them).

The shared incumbent is the app-level analog of the paper's global
aggregator: a thread-safe monotone size used by every task's bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.maxclique import CliqueSearchStats, branch_max_clique, greedy_color_order
from ..core.options import MiningStats, ResultSink
from ..graph.adjacency import Graph
from .aggregator import MaxSetAggregator
from .app_protocol import gthinker_app
from .task import ComputeOutcome, Task


class SharedIncumbent(MaxSetAggregator):
    """Monotone best-clique tracker shared by all mining threads.

    A named specialization of the generic MaxSetAggregator — the
    G-thinker aggregator facility instantiated for maximum clique.
    """


@gthinker_app
@dataclass
class MaxCliqueApp:
    """G-thinker application computing the maximum clique of the graph."""

    sink: ResultSink = field(default_factory=ResultSink)
    incumbent: SharedIncumbent = field(default_factory=SharedIncumbent)
    search_stats: CliqueSearchStats = field(default_factory=CliqueSearchStats)
    #: Engine compatibility: merged into EngineMetrics at job end.
    stats: MiningStats = field(default_factory=MiningStats)

    def spawn(self, vertex: int, adjacency: list[int], task_id: int) -> Task | None:
        self.incumbent.offer({vertex})
        larger = [u for u in adjacency if u > vertex]
        if not larger:
            return None
        return Task(
            task_id=task_id,
            root=vertex,
            iteration=1,
            s=[vertex],
            building={vertex: set(larger)},
            pulls=larger,
        )

    def compute(self, task: Task, frontier: dict[int, list[int]], ctx) -> ComputeOutcome:
        if task.iteration == 1:
            return self._build(task, frontier)
        return self._mine(task, ctx)

    # -- iteration 1: induced candidate subgraph --------------------------

    def _build(self, task: Task, frontier: dict[int, list[int]]) -> ComputeOutcome:
        v = task.root
        members = {v} | set(frontier)
        graph = Graph()
        for u in members:
            graph.add_vertex(u)
        for u in task.building[v]:
            graph.add_edge(v, u)
        for u, adj in frontier.items():
            for w in adj:
                if w in members and w > v:
                    graph.add_edge(u, w)
        cost = sum(len(adj) for adj in frontier.values()) + len(members)
        # Bound cut before mining: even a perfect clique over the
        # candidates cannot beat the incumbent.
        if len(members) <= self.incumbent.size:
            return ComputeOutcome(finished=True, cost_ops=cost)
        task.graph = graph
        task.building = None
        task.pulls = []
        task.s = [v]
        task.ext = sorted(u for u in members if u != v)
        task.iteration = 3
        return ComputeOutcome(finished=False, cost_ops=cost)

    # -- iteration 3: branch and bound (+ one-level decomposition) -----------

    def _mine(self, task: Task, ctx) -> ComputeOutcome:
        graph = task.graph
        assert graph is not None
        stats = CliqueSearchStats()
        new_tasks: list[Task] = []
        incumbent_size = self.incumbent.size

        if len(task.ext) > ctx.config.tau_split:
            # One-level split: child i owns pivot ext[i] with candidate
            # set ext[i+1:] ∩ Γ(pivot) — the clique-world analog of the
            # quasi-clique size-threshold decomposition.
            colored = greedy_color_order(graph, list(task.ext))
            order = [v for v, _ in colored]
            for i, pivot in enumerate(order):
                nbrs = graph.neighbor_set(pivot)
                child_ext = [u for u in order[i + 1 :] if u in nbrs]
                if len(task.s) + 1 + len(child_ext) <= incumbent_size:
                    continue  # bound cut at split time
                members = set(task.s) | {pivot} | set(child_ext)
                sub = graph.subgraph(members)
                stats.ops += sub.num_vertices + sub.num_edges
                new_tasks.append(
                    Task(
                        task_id=ctx.next_task_id(),
                        root=task.root,
                        iteration=3,
                        s=task.s + [pivot],
                        ext=child_ext,
                        graph=sub,
                        generation=task.generation + 1,
                    )
                )
        else:
            found = branch_max_clique(
                graph, list(task.s), list(task.ext), incumbent_size, stats
            )
            if found and self.incumbent.offer(found):
                self.sink.emit(found)
        self.search_stats.merge(stats)
        self.stats.mining_ops += stats.ops
        self.stats.nodes_expanded += stats.nodes
        return ComputeOutcome(
            finished=True, new_tasks=new_tasks, cost_ops=max(1, stats.ops)
        )


def find_max_clique_parallel(graph: Graph, config=None):
    """Run the max-clique app on the engine; returns (clique, metrics)."""
    from .config import EngineConfig
    from .engine import GThinkerEngine

    config = config or EngineConfig(decompose="size", tau_split=64)
    app = MaxCliqueApp()
    engine = GThinkerEngine(graph, app, config)
    engine.run()
    return app.incumbent.best(), engine.metrics


def find_max_clique_simulated(graph: Graph, config=None):
    """Run the max-clique app on the simulated cluster; returns (clique, SimOutcome)."""
    from .config import EngineConfig
    from .simulation import SimulatedClusterEngine

    config = config or EngineConfig(decompose="size", tau_split=64)
    app = MaxCliqueApp()
    out = SimulatedClusterEngine(graph, app, config).run()
    return app.incumbent.best(), out
