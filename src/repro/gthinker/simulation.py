"""Discrete-event simulated cluster (scalability experiments).

This box has one physical CPU core and a GIL, so the paper's
scalability tables (Table 5) cannot be reproduced with wall-clock
speedups. Instead, every task is executed *once*, serially, while a
virtual clock schedules it onto M machines × T virtual mining threads.

The scheduling policy is not re-implemented here: the simulator drives
the same :class:`repro.gthinker.scheduler.SchedulerCore` as the real
engine — identical big-task routing, B_global → B_local → Q_global →
Q_local pick order, L_small/L_big spilling, refill order, spawn-batch
early stop, and master stealing — over the same machine/thread queue
state, for any application implementing the
:class:`~repro.gthinker.app_protocol.GThinkerApp` protocol. A policy
change in the scheduler therefore applies to every executor at once,
and the simulator emits the same trace-event vocabulary as the
threaded engine.

The virtual cost of a task is its deterministic operation count
(``ComputeOutcome.cost_ops``), so makespans are exactly reproducible:
the same job simulated at 4 and at 32 threads runs the identical task
set, and the makespan ratio *is* the schedulability of the workload —
which is precisely what Table 5 measures.

Event semantics: when a virtual thread picks a task at time t, the task
really runs (we learn its cost c and its children); its children become
visible to the queues only at t+c, so no thread can observe work that
has not yet "happened" in virtual time.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field

from ..core.postprocess import postprocess_results
from ..graph.adjacency import Graph
from .app_protocol import GThinkerApp
from .app_quasiclique import QuasiCliqueApp
from .config import EngineConfig
from .metrics import EngineMetrics
from .scheduler import SchedulerCore, build_machines, collect_machine_metrics
from .task import Task
from .tracing import NullTracer, Tracer


@dataclass
class SimOutcome:
    """Result of a simulated run."""

    maximal: set[frozenset[int]]
    candidates: set[frozenset[int]]
    metrics: EngineMetrics
    makespan: float
    total_work: float
    busy_per_thread: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        if self.makespan <= 0:
            return 1.0
        slots = len(self.busy_per_thread)
        return self.total_work / (self.makespan * max(1, slots))

    def speedup_against(self, baseline_makespan: float) -> float:
        return baseline_makespan / self.makespan if self.makespan else float("inf")


class SimulatedClusterEngine:
    """Virtual-time execution of any G-thinker app on M×T workers."""

    def __init__(
        self,
        graph: Graph,
        app: GThinkerApp,
        config: EngineConfig,
        tracer: Tracer | NullTracer | None = None,
    ):
        if config.time_unit != "ops":
            raise ValueError(
                "the simulated cluster requires time_unit='ops' so task costs "
                "and decomposition points are deterministic"
            )
        self.graph = graph
        self.app = app
        self.config = config
        self.machines = build_machines(graph, config)
        self.metrics = EngineMetrics()
        self._outstanding = 0  # tasks sitting in queues or ready buffers
        self._executing = 0  # tasks between pick and completion event
        self.core = SchedulerCore(
            app, config, self.machines, tracer,
            metrics=self.metrics,
            metrics_lock=threading.Lock(),
            task_queued=self._task_enqueued,
            task_buffered=self._task_enqueued,
            task_picked=self._task_dequeued,
        )
        self.tracer = self.core.tracer

    # -- outstanding-work accounting (virtual-time liveness) ---------------

    def _task_enqueued(self, task: Task) -> None:
        self._outstanding += 1
        self.metrics.peak_pending_tasks = max(
            self.metrics.peak_pending_tasks, self._outstanding
        )

    def _task_dequeued(self, task: Task) -> None:
        self._outstanding -= 1

    # -- main event loop ---------------------------------------------------

    def run(self) -> SimOutcome:
        config = self.config
        core = self.core
        slots = [
            (m, t)
            for m in range(config.num_machines)
            for t in range(config.threads_per_machine)
        ]
        busy: dict[tuple[int, int], float] = {slot: 0.0 for slot in slots}
        #: (time, seq, kind, payload); kinds: 'free' thread slot, 'steal' tick.
        #: payload for 'free': (slot, quantum_result | None, is_completion).
        events: list[tuple[float, int, str, object]] = []
        seq = itertools.count()
        for slot in slots:
            heapq.heappush(events, (0.0, next(seq), "free", (slot, None, False)))
        steal_enabled = config.use_stealing and config.num_machines > 1
        steal_period = max(1.0, config.steal_period_seconds)
        if steal_enabled:
            heapq.heappush(events, (steal_period, next(seq), "steal", None))
        idle: set[tuple[int, int]] = set()
        makespan = 0.0
        total_work = 0.0

        def wake_idle(now: float) -> None:
            for slot in list(idle):
                idle.discard(slot)
                heapq.heappush(events, (now, next(seq), "free", (slot, None, False)))

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == "steal":
                moved = core.apply_steals()
                if (
                    self._outstanding > 0
                    or self._executing > 0
                    or not core.all_spawned()
                ):
                    heapq.heappush(events, (now + steal_period, next(seq), "steal", None))
                if moved or any(m.pending_big() for m in self.machines):
                    wake_idle(now)
                continue

            slot, quantum, is_completion = payload  # type: ignore[misc]
            machine_id, thread_id = slot
            machine = self.machines[machine_id]
            thread = machine.threads[thread_id]
            if is_completion:
                self._executing -= 1
            if quantum is not None:
                # A finished quantum's effects become visible now (t+c).
                for child in quantum.children:
                    core.route(child, machine, thread)
                if quantum.resumed is not None:
                    core.buffer_ready(quantum.resumed, machine, thread)
                if quantum.children or quantum.resumed is not None:
                    wake_idle(now)
            task = core.pick(machine, thread)
            if task is None:
                idle.add(slot)
                continue
            self._executing += 1
            result = core.run_quantum(task, machine, self.metrics.record_task)
            cost = max(result.cost, 1.0)
            busy[slot] += cost
            total_work += cost
            makespan = max(makespan, now + cost)
            heapq.heappush(events, (now + cost, next(seq), "free", (slot, result, True)))

        self.metrics.virtual_makespan = makespan
        collect_machine_metrics(self.metrics, self.machines)
        self.metrics.mining_stats.merge(self.app.stats)
        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        for m in self.machines:
            m.cleanup()
        return SimOutcome(
            maximal=maximal,
            candidates=candidates,
            metrics=self.metrics,
            makespan=makespan,
            total_work=total_work,
            busy_per_thread=busy,
        )


def simulate_app(
    graph: Graph,
    app: GThinkerApp,
    config: EngineConfig,
    tracer: Tracer | NullTracer | None = None,
) -> SimOutcome:
    """Front-end: run any GThinkerApp on the simulated cluster."""
    return SimulatedClusterEngine(graph, app, config, tracer=tracer).run()


def simulate_cluster(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig,
    options=None,
    tracer: Tracer | NullTracer | None = None,
) -> SimOutcome:
    """Front-end: simulate one quasi-clique job; returns results + makespan."""
    from ..core.options import DEFAULT_OPTIONS, ResultSink

    app = QuasiCliqueApp(
        gamma=gamma,
        min_size=min_size,
        sink=ResultSink(),
        options=options or DEFAULT_OPTIONS,
    )
    return SimulatedClusterEngine(graph, app, config, tracer=tracer).run()
