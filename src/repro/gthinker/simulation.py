"""Discrete-event simulated cluster (scalability experiments).

This box has one physical CPU core and a GIL, so the paper's
scalability tables (Table 5) cannot be reproduced with wall-clock
speedups. Instead, every task is executed *once*, serially, while a
virtual clock schedules it onto M machines × T virtual mining threads
following the same reforged policy as the real engine: big tasks route
to a per-machine global queue that all threads drain first, small tasks
to per-thread local queues, idle-spawn happens in batches that stop at
the first big task, and a master rebalances big tasks across machines
every steal period.

The virtual cost of a task is its deterministic operation count
(``ComputeOutcome.cost_ops``), so makespans are exactly reproducible:
the same job simulated at 4 and at 32 threads runs the identical task
set, and the makespan ratio *is* the schedulability of the workload —
which is precisely what Table 5 measures.

Event semantics: when a virtual thread picks a task at time t, the task
really runs (we learn its cost c and its children); its children become
visible to the queues only at t+c, so no thread can observe work that
has not yet "happened" in virtual time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..core.options import ResultSink
from ..core.postprocess import postprocess_results
from ..graph.adjacency import Graph
from .app_quasiclique import ComputeContext, QuasiCliqueApp
from .config import EngineConfig
from .metrics import EngineMetrics, TaskRecord
from .stealing import plan_steals
from .task import Task
from .vertex_store import DataService, LocalVertexTable, RemoteVertexCache


@dataclass
class SimOutcome:
    """Result of a simulated run."""

    maximal: set[frozenset[int]]
    candidates: set[frozenset[int]]
    metrics: EngineMetrics
    makespan: float
    total_work: float
    busy_per_thread: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        if self.makespan <= 0:
            return 1.0
        slots = len(self.busy_per_thread)
        return self.total_work / (self.makespan * max(1, slots))

    def speedup_against(self, baseline_makespan: float) -> float:
        return baseline_makespan / self.makespan if self.makespan else float("inf")


class _SimMachine:
    """Queue state of one virtual machine."""

    def __init__(self, machine_id: int, table: LocalVertexTable, threads: int):
        self.machine_id = machine_id
        self.table = table
        self.qglobal: list[Task] = []
        self.qlocal: list[list[Task]] = [[] for _ in range(threads)]
        self.spawn_order = table.vertices_sorted()
        self.spawn_pos = 0

    def spawn_exhausted(self) -> bool:
        return self.spawn_pos >= len(self.spawn_order)


class SimulatedClusterEngine:
    """Virtual-time execution of a quasi-clique job on M×T workers."""

    def __init__(self, graph: Graph, app: QuasiCliqueApp, config: EngineConfig):
        if config.time_unit != "ops":
            raise ValueError(
                "the simulated cluster requires time_unit='ops' so task costs "
                "and decomposition points are deterministic"
            )
        self.graph = graph
        self.app = app
        self.config = config
        from .partition import make_partitioner

        partitioner = (
            None
            if config.partition == "hash"
            else make_partitioner(config.partition, graph, config.num_machines)
        )
        tables = LocalVertexTable.partition(
            graph, config.num_machines, partitioner=partitioner
        )
        self.machines = [
            _SimMachine(m, tables[m], config.threads_per_machine)
            for m in range(config.num_machines)
        ]
        self.caches = [RemoteVertexCache(config.cache_capacity) for _ in self.machines]
        self.data = [
            DataService(m, tables, self.caches[m], partitioner=partitioner)
            for m in range(config.num_machines)
        ]
        self._task_ids = itertools.count()
        self.metrics = EngineMetrics()
        self._outstanding = 0  # tasks sitting in queues
        self._executing = 0  # tasks between pick and completion event

    # -- helpers -----------------------------------------------------------

    def _next_task_id(self) -> int:
        return next(self._task_ids)

    def _route(self, task: Task, machine: _SimMachine, thread: int) -> None:
        self._outstanding += 1
        self.metrics.peak_pending_tasks = max(
            self.metrics.peak_pending_tasks, self._outstanding
        )
        if self.config.use_global_queue and task.is_big(self.config.tau_split):
            machine.qglobal.append(task)
        else:
            machine.qlocal[thread].append(task)

    def _spawn_batch(self, machine: _SimMachine, thread: int) -> int:
        spawned = 0
        while spawned < self.config.batch_size and not machine.spawn_exhausted():
            v = machine.spawn_order[machine.spawn_pos]
            machine.spawn_pos += 1
            adjacency = machine.table.get(v)
            assert adjacency is not None
            task = self.app.spawn(v, adjacency, self._next_task_id())
            if task is None:
                continue
            self.metrics.tasks_spawned += 1
            self._route(task, machine, thread)
            spawned += 1
            if self.config.use_global_queue and task.is_big(self.config.tau_split):
                break
        return spawned

    def _pick(self, machine: _SimMachine, thread: int) -> Task | None:
        if self.config.use_global_queue and machine.qglobal:
            return machine.qglobal.pop(0)
        q = machine.qlocal[thread]
        if not q:
            self._spawn_batch(machine, thread)
        if q:
            return q.pop(0)
        # Local queue still empty — maybe spawning routed only big tasks.
        if self.config.use_global_queue and machine.qglobal:
            return machine.qglobal.pop(0)
        return None

    def _execute(self, task: Task, machine_id: int) -> tuple[float, list[Task]]:
        """Run one scheduling quantum of the task.

        A quantum resolves the task's pending pulls, then chains compute
        iterations until the task either finishes or issues new pulls —
        the suspend-for-data point where the real engine re-buffers the
        task and re-evaluates its big/small routing. A task that issued
        pulls is returned among the children so the caller re-routes it
        at the quantum's completion time.
        """
        record_box: list[TaskRecord] = []
        ctx = ComputeContext(
            config=self.config,
            next_task_id=self._next_task_id,
            record=record_box.append,
        )
        data = self.data[machine_id]
        cost = 0.0
        children: list[Task] = []
        while True:
            if task.pulls:
                before = data.remote_messages
                frontier = data.resolve(task.pulls)
                cost += (data.remote_messages - before) * self.config.sim_message_cost
                task.pulls = []
            else:
                frontier = {}
            outcome = self.app.compute(task, frontier, ctx)
            cost += outcome.cost_ops
            children.extend(outcome.new_tasks)
            if outcome.finished:
                break
            if task.pulls:
                # Suspend point: the task goes back through the queues
                # with its new pull scope deciding big/small routing.
                children.append(task)
                break
        for rec in record_box:
            self.metrics.record_task(rec)
        return cost, children

    # -- main event loop -------------------------------------------------------

    def run(self) -> SimOutcome:
        config = self.config
        threads = [
            (m, t)
            for m in range(config.num_machines)
            for t in range(config.threads_per_machine)
        ]
        busy: dict[tuple[int, int], float] = {slot: 0.0 for slot in threads}
        #: (time, seq, kind, payload); kinds: 'free' thread slot, 'steal' tick.
        #: payload for 'free': (slot, children, is_completion).
        events: list[tuple[float, int, str, object]] = []
        seq = itertools.count()
        for slot in threads:
            heapq.heappush(events, (0.0, next(seq), "free", (slot, [], False)))
        steal_enabled = config.use_stealing and config.num_machines > 1
        steal_period = max(1.0, config.steal_period_seconds)
        if steal_enabled:
            heapq.heappush(events, (steal_period, next(seq), "steal", None))
        idle: set[tuple[int, int]] = set()
        makespan = 0.0
        total_work = 0.0

        def wake_idle(now: float) -> None:
            for slot in list(idle):
                idle.discard(slot)
                heapq.heappush(events, (now, next(seq), "free", (slot, [], False)))

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == "steal":
                counts = [
                    len(m.qglobal) for m in self.machines
                ]
                for move in plan_steals(counts, config.batch_size):
                    src = self.machines[move.src]
                    dst = self.machines[move.dst]
                    batch = src.qglobal[-move.count :]
                    del src.qglobal[-move.count :]
                    dst.qglobal.extend(batch)
                    if batch:
                        self.metrics.steals += 1
                        self.metrics.stolen_tasks += len(batch)
                if (
                    self._outstanding > 0
                    or self._executing > 0
                    or not all(m.spawn_exhausted() for m in self.machines)
                ):
                    heapq.heappush(events, (now + steal_period, next(seq), "steal", None))
                if any(m.qglobal for m in self.machines):
                    wake_idle(now)
                continue

            slot, finished_children, is_completion = payload  # type: ignore[misc]
            machine_id, thread_id = slot
            machine = self.machines[machine_id]
            if is_completion:
                self._executing -= 1
            if finished_children:
                for child in finished_children:
                    self._route(child, machine, thread_id)
                wake_idle(now)
            task = self._pick(machine, thread_id)
            if task is None:
                idle.add(slot)
                continue
            self._outstanding -= 1
            self._executing += 1
            cost, children = self._execute(task, machine_id)
            cost = max(cost, 1.0)
            busy[slot] += cost
            total_work += cost
            makespan = max(makespan, now + cost)
            heapq.heappush(events, (now + cost, next(seq), "free", (slot, children, True)))

        self.metrics.virtual_makespan = makespan
        for m, data in enumerate(self.data):
            self.metrics.remote_messages += data.remote_messages
            self.metrics.cache_hits += self.caches[m].hits
            self.metrics.cache_misses += self.caches[m].misses
        self.metrics.mining_stats.merge(self.app.stats)
        candidates = self.app.sink.results()
        maximal = postprocess_results(candidates)
        self.metrics.results = len(maximal)
        return SimOutcome(
            maximal=maximal,
            candidates=candidates,
            metrics=self.metrics,
            makespan=makespan,
            total_work=total_work,
            busy_per_thread=busy,
        )


def simulate_cluster(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig,
    options=None,
) -> SimOutcome:
    """Front-end: simulate one job and return results + virtual makespan."""
    from ..core.options import DEFAULT_OPTIONS

    app = QuasiCliqueApp(
        gamma=gamma,
        min_size=min_size,
        sink=ResultSink(),
        options=options or DEFAULT_OPTIONS,
    )
    return SimulatedClusterEngine(graph, app, config).run()
