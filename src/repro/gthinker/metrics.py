"""Run metrics: per-task timing and engine-wide accounting.

The paper's evaluation reads directly off these counters:

* Figures 1–3 — per-task (root, |V(g)|, mining time) records;
* Table 2   — wall time, peak RAM estimate, peak spilled disk bytes,
  result count;
* Table 6   — cumulative mining time vs cumulative subgraph
  materialization time as τ_time varies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..core.options import MiningStats


@dataclass
class TaskRecord:
    """One executed mining task (iteration-3 work only)."""

    task_id: int
    root: int
    generation: int
    subgraph_vertices: int
    subgraph_edges: int
    mining_seconds: float
    mining_ops: int
    materialize_seconds: float
    materialize_ops: int
    subtasks_created: int


@dataclass
class WorkerTiming:
    """Per-worker wall/mine/idle accounting (seconds, monotonic clock).

    ``wall_seconds`` is the worker's observed loop time, split into
    ``mine_seconds`` (inside a task quantum) and ``idle_seconds``
    (waiting for work: queue gets, empty picks, backoff sleeps).
    ``merge`` sums component-wise, so the same key accumulated across
    batches (process workers report per batch) stays consistent:
    wall == mine + idle holds whenever the producer maintained it.
    """

    wall_seconds: float = 0.0
    mine_seconds: float = 0.0
    idle_seconds: float = 0.0

    def merge(self, other: "WorkerTiming") -> None:
        self.wall_seconds += other.wall_seconds
        self.mine_seconds += other.mine_seconds
        self.idle_seconds += other.idle_seconds


@dataclass
class EngineMetrics:
    """Aggregated over one engine run (merge per-thread copies at the end)."""

    wall_seconds: float = 0.0
    virtual_makespan: float = 0.0  # simulated engines only
    tasks_spawned: int = 0
    tasks_executed: int = 0
    subtasks_created: int = 0
    tasks_decomposed: int = 0
    total_mining_seconds: float = 0.0
    total_mining_ops: int = 0
    total_materialize_seconds: float = 0.0
    total_materialize_ops: int = 0
    remote_messages: int = 0
    #: Remote-vertex-cache effectiveness (paper Fig. 8 store): lookups
    #: served from the bounded cache, lookups that had to fetch, and
    #: entries dropped by the LRU bound.
    remote_vertex_hits: int = 0
    remote_vertex_misses: int = 0
    remote_vertex_evictions: int = 0
    spill_batches: int = 0
    spill_bytes: int = 0
    spill_bytes_peak: int = 0
    steals: int = 0
    stolen_tasks: int = 0
    #: Stealing observability (one per planned StealMove / task shipped
    #: from a donor / task delivered to a recipient). On the in-process
    #: executors sent == received; on the cluster runtime they can
    #: diverge transiently while a grant is in flight.
    steals_planned: int = 0
    steals_sent: int = 0
    steals_received: int = 0
    #: Fault tolerance (process + cluster backends, emitted from the
    #: shared control plane in repro.gthinker.runtime): dead/wedged
    #: worker incidents, at-least-once re-dispatches, tasks poisoned
    #: after max_attempts, and stale duplicate results dropped.
    workers_died: int = 0
    tasks_retried: int = 0
    tasks_quarantined: int = 0
    stale_results_dropped: int = 0
    results: int = 0
    peak_pending_tasks: int = 0
    #: Per-worker wall/mine/idle split (repro.gthinker.obs). Keyed by a
    #: backend-native worker index: global thread index on the serial/
    #: threaded engines, worker id on the process pool and cluster.
    #: Empty on the simulated backend (its clock is virtual).
    timing: dict[int, WorkerTiming] = field(default_factory=dict)
    task_records: list[TaskRecord] = field(default_factory=list)
    mining_stats: MiningStats = field(default_factory=MiningStats)

    def record_task(self, record: TaskRecord) -> None:
        self.task_records.append(record)
        self.tasks_executed += 1
        self.total_mining_seconds += record.mining_seconds
        self.total_mining_ops += record.mining_ops
        self.total_materialize_seconds += record.materialize_seconds
        self.total_materialize_ops += record.materialize_ops
        self.subtasks_created += record.subtasks_created
        if record.subtasks_created:
            self.tasks_decomposed += 1

    def merge(self, other: "EngineMetrics") -> None:
        self.tasks_spawned += other.tasks_spawned
        self.tasks_executed += other.tasks_executed
        self.subtasks_created += other.subtasks_created
        self.tasks_decomposed += other.tasks_decomposed
        self.total_mining_seconds += other.total_mining_seconds
        self.total_mining_ops += other.total_mining_ops
        self.total_materialize_seconds += other.total_materialize_seconds
        self.total_materialize_ops += other.total_materialize_ops
        self.remote_messages += other.remote_messages
        self.remote_vertex_hits += other.remote_vertex_hits
        self.remote_vertex_misses += other.remote_vertex_misses
        self.remote_vertex_evictions += other.remote_vertex_evictions
        self.spill_batches += other.spill_batches
        self.spill_bytes += other.spill_bytes
        self.spill_bytes_peak = max(self.spill_bytes_peak, other.spill_bytes_peak)
        self.steals += other.steals
        self.stolen_tasks += other.stolen_tasks
        self.steals_planned += other.steals_planned
        self.steals_sent += other.steals_sent
        self.steals_received += other.steals_received
        self.workers_died += other.workers_died
        self.tasks_retried += other.tasks_retried
        self.tasks_quarantined += other.tasks_quarantined
        self.stale_results_dropped += other.stale_results_dropped
        self.peak_pending_tasks = max(self.peak_pending_tasks, other.peak_pending_tasks)
        for worker, timing in other.timing.items():
            self.timing.setdefault(worker, WorkerTiming()).merge(timing)
        self.task_records.extend(other.task_records)
        self.mining_stats.merge(other.mining_stats)

    # -- evaluation-facing views ------------------------------------------

    def mining_vs_materialization_ratio(self) -> float:
        """Table 6 ratio; ops-based so it is meaningful in simulation too."""
        if self.total_materialize_ops == 0:
            return float("inf")
        return self.total_mining_ops / self.total_materialize_ops

    def per_root_times(self) -> dict[int, float]:
        """Figure 1/2 series: total mining seconds per spawned root."""
        out: dict[int, float] = {}
        for r in self.task_records:
            out[r.root] = out.get(r.root, 0.0) + r.mining_seconds
        return out

    def top_task_times(self, k: int = 100) -> list[float]:
        """Figure 2 series: the k largest per-task mining times, sorted."""
        times = sorted((r.mining_seconds for r in self.task_records), reverse=True)
        return times[:k]

    def size_time_pairs(self) -> list[tuple[int, float]]:
        """Figure 3 series: (subgraph |V|, mining seconds) per task."""
        return [(r.subgraph_vertices, r.mining_seconds) for r in self.task_records]


class ThreadLocalMetrics(threading.local):
    """Per-thread EngineMetrics so hot paths never contend on a lock."""

    def __init__(self) -> None:
        self.metrics = EngineMetrics()
