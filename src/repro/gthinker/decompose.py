"""Task decomposition strategies (paper Algorithms 8 and 10).

Two ways to split a big mining task into subtasks:

* **Size-threshold** (Algorithm 8) — if |ext(S)| > τ_split, do not mine:
  walk one level of the set-enumeration tree and wrap every surviving
  child ⟨S′, ext(S′)⟩ as a new iteration-3 task. Recursive splitting of
  the children continues when they are scheduled. The paper shows this
  under-partitions some tasks and over-partitions others.
* **Time-delayed** (Algorithm 10, the paper's headline technique) — mine
  by ordinary backtracking until a τ_time budget expires, then wrap the
  *remaining* search-tree nodes as subtasks on the way out. Cheap tasks
  finish before the timeout and never pay decomposition overhead;
  expensive tasks are split exactly where the time went (Figure 9).

Both emit candidates that may be non-maximal — the parent loses sight
of a wrapped subtask's results, so G(S′) is checked eagerly (Alg. 8
line 15 / Alg. 10 lines 23–24) and postprocessing prunes the excess.

Each strategy exists in two result-equivalent forms: the classic
list/dict walk and a ``_masked`` twin over a bitmask
:class:`~repro.core.domain.TaskDomain`, whose spawn callback receives
⟨s_mask, ext_mask⟩ so subtasks ship re-compacted domains.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.domain import TaskDomain, is_quasi_clique_masked
from ..core.iterative_bounding import (
    check_and_emit,
    check_and_emit_masked,
    iterative_bounding,
    iterative_bounding_masked,
)
from ..core.options import MiningJob
from ..core.pruning import diameter_filter, diameter_filter_masked
from ..core.quasiclique import is_quasi_clique
from ..core.recursive_mine import (
    order_with_cover_tail,
    select_cover_tail,
    select_cover_tail_masked,
)
from .clock import Budget

#: Callback materializing ⟨S′, ext(S′)⟩ into a new iteration-3 task.
SpawnSubtask = Callable[[list[int], list[int]], None]

#: Mask-native spawn callback: ⟨s_mask, ext_mask⟩ in the parent domain's
#: local IDs — the receiver restricts the domain to s|ext and re-compacts.
SpawnSubtaskMask = Callable[[int, int], None]


def size_threshold_split(
    job: MiningJob, s_list: list[int], ext_list: list[int], spawn_subtask: SpawnSubtask
) -> None:
    """Paper Algorithm 8, lines 3–23: one-level split of a big task."""
    graph = job.graph
    gamma = job.gamma
    min_size = job.min_size
    opts = job.options
    job.stats.nodes_expanded += 1
    job.stats.mining_ops += 1 + len(ext_list)

    order, num_pivots = order_with_cover_tail(
        ext_list, select_cover_tail(job, s_list, ext_list)
    )
    for i in range(num_pivots):
        v = order[i]
        remaining = order[i:]
        if len(s_list) + len(remaining) < min_size:
            return
        if opts.use_lookahead and is_quasi_clique(graph, set(s_list) | set(remaining), gamma):
            job.sink.emit(s_list + remaining)
            job.stats.candidates_emitted += 1
            job.stats.lookahead_hits += 1
            return
        s_prime = s_list + [v]
        ext_base = order[i + 1 :]
        if opts.use_diameter_prune:
            ext_prime = diameter_filter(graph, v, ext_base)
        else:
            ext_prime = list(ext_base)
        # Alg. 8 line 15: the parent will never see the subtask's
        # results, so G(S′) must be checked for validity right now.
        check_and_emit(job, s_prime)
        if not ext_prime:
            continue
        pruned = iterative_bounding(job, s_prime, ext_prime)
        if not pruned and len(s_prime) + len(ext_prime) >= min_size:
            spawn_subtask(s_prime, ext_prime)


def time_delayed_mine(
    job: MiningJob,
    s_list: list[int],
    ext_list: list[int],
    budget: Budget,
    spawn_subtask: SpawnSubtask,
) -> bool:
    """Paper Algorithm 10: backtracking mining with timeout-driven splits.

    Identical to Algorithm 2's walk until the budget expires; from then
    on every surviving child becomes a subtask instead of a recursive
    call. Returns True iff some valid quasi-clique ⊃ S was emitted *by
    this in-process walk* (wrapped subtasks don't report back, which is
    why G(S′) is checked eagerly on the timeout path).
    """
    graph = job.graph
    gamma = job.gamma
    min_size = job.min_size
    opts = job.options
    found = False
    job.stats.nodes_expanded += 1
    job.stats.mining_ops += 1 + len(ext_list)

    order, num_pivots = order_with_cover_tail(
        ext_list, select_cover_tail(job, s_list, ext_list)
    )
    for i in range(num_pivots):
        v = order[i]
        remaining = order[i:]
        if len(s_list) + len(remaining) < min_size:
            return found
        if opts.use_lookahead and is_quasi_clique(graph, set(s_list) | set(remaining), gamma):
            job.sink.emit(s_list + remaining)
            job.stats.candidates_emitted += 1
            job.stats.lookahead_hits += 1
            return True

        s_prime = s_list + [v]
        ext_base = order[i + 1 :]
        if opts.use_diameter_prune:
            ext_prime = diameter_filter(graph, v, ext_base)
        else:
            ext_prime = list(ext_base)

        if not ext_prime:
            if opts.check_empty_ext_candidate and check_and_emit(job, s_prime):
                found = True
            continue

        pruned = iterative_bounding(job, s_prime, ext_prime)
        if budget.expired():
            # Timeout: wrap the remaining workload of this child as a
            # task and keep backtracking (Alg. 10 lines 18–24).
            if not pruned and len(s_prime) + len(ext_prime) >= min_size:
                spawn_subtask(s_prime, ext_prime)
                check_and_emit(job, s_prime)
        elif not pruned and len(s_prime) + len(ext_prime) >= min_size:
            sub_found = time_delayed_mine(job, s_prime, ext_prime, budget, spawn_subtask)
            found = found or sub_found
            if not sub_found and check_and_emit(job, s_prime):
                found = True
    return found


def size_threshold_split_masked(
    job: MiningJob,
    domain: TaskDomain,
    s_mask: int,
    ext_mask: int,
    spawn_subtask: SpawnSubtaskMask,
) -> None:
    """Mask-native Algorithm 8: one-level split over a bitmask domain."""
    gamma = job.gamma
    min_size = job.min_size
    opts = job.options
    job.stats.nodes_expanded += 1
    job.stats.mining_ops += 1 + ext_mask.bit_count()

    covered = select_cover_tail_masked(job, domain, s_mask, ext_mask)
    pending = ext_mask & ~covered
    s_size = s_mask.bit_count()
    while pending:
        low = pending & -pending
        v = low.bit_length() - 1
        remaining = pending | covered
        if s_size + remaining.bit_count() < min_size:
            return
        if opts.use_lookahead and is_quasi_clique_masked(domain, s_mask | remaining, gamma):
            job.sink.emit(domain.globals_of(s_mask | remaining))
            job.stats.candidates_emitted += 1
            job.stats.lookahead_hits += 1
            return
        pending ^= low
        s_prime = s_mask | low
        ext_base = pending | covered
        if opts.use_diameter_prune:
            ext_prime = diameter_filter_masked(domain, v, ext_base)
        else:
            ext_prime = ext_base
        # Alg. 8 line 15: the parent will never see the subtask's
        # results, so G(S′) must be checked for validity right now.
        check_and_emit_masked(job, domain, s_prime)
        if not ext_prime:
            continue
        pruned, s_prime, ext_prime = iterative_bounding_masked(job, domain, s_prime, ext_prime)
        if not pruned and s_prime.bit_count() + ext_prime.bit_count() >= min_size:
            spawn_subtask(s_prime, ext_prime)


def time_delayed_mine_masked(
    job: MiningJob,
    domain: TaskDomain,
    s_mask: int,
    ext_mask: int,
    budget: Budget,
    spawn_subtask: SpawnSubtaskMask,
) -> bool:
    """Mask-native Algorithm 10: timed backtracking with mask-split wraps."""
    gamma = job.gamma
    min_size = job.min_size
    opts = job.options
    found = False
    job.stats.nodes_expanded += 1
    job.stats.mining_ops += 1 + ext_mask.bit_count()

    covered = select_cover_tail_masked(job, domain, s_mask, ext_mask)
    pending = ext_mask & ~covered
    s_size = s_mask.bit_count()
    while pending:
        low = pending & -pending
        v = low.bit_length() - 1
        remaining = pending | covered
        if s_size + remaining.bit_count() < min_size:
            return found
        if opts.use_lookahead and is_quasi_clique_masked(domain, s_mask | remaining, gamma):
            job.sink.emit(domain.globals_of(s_mask | remaining))
            job.stats.candidates_emitted += 1
            job.stats.lookahead_hits += 1
            return True

        pending ^= low
        s_prime = s_mask | low
        ext_base = pending | covered
        if opts.use_diameter_prune:
            ext_prime = diameter_filter_masked(domain, v, ext_base)
        else:
            ext_prime = ext_base

        if not ext_prime:
            if opts.check_empty_ext_candidate and check_and_emit_masked(job, domain, s_prime):
                found = True
            continue

        pruned, s_prime, ext_prime = iterative_bounding_masked(job, domain, s_prime, ext_prime)
        if budget.expired():
            # Timeout: wrap the remaining workload of this child as a
            # task and keep backtracking (Alg. 10 lines 18–24).
            if not pruned and s_prime.bit_count() + ext_prime.bit_count() >= min_size:
                spawn_subtask(s_prime, ext_prime)
                check_and_emit_masked(job, domain, s_prime)
        elif not pruned and s_prime.bit_count() + ext_prime.bit_count() >= min_size:
            sub_found = time_delayed_mine_masked(
                job, domain, s_prime, ext_prime, budget, spawn_subtask
            )
            found = found or sub_found
            if not sub_found and check_and_emit_masked(job, domain, s_prime):
                found = True
    return found
