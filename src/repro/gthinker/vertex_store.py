"""Partitioned vertex table and remote vertex cache (paper Fig. 8).

The input graph is hash-partitioned across machines by vertex ID: each
machine's *local vertex table* owns the adjacency lists of its
vertices, and the tables together form a distributed key-value store.
A task may request any vertex; remote hits are served by the owner and
memoized in the requester's bounded *remote vertex cache* so concurrent
tasks share fetched lists.

Two :class:`~repro.graph.access.GraphAccess` implementations live
here, one per distribution regime:

* :class:`SharedGraphAccess` — a whole-graph replica (the process
  pool's fork/shared-memory shipping); every read is local.
* :class:`RemoteGraphAccess` — one partition's table plus the bounded
  cache; non-owned vertices must be *admitted* from the wire first
  (``unresolved`` → VertexRequest → :meth:`RemoteGraphAccess.admit`),
  with pin counts standing in for the paper's in-flight-task refcounts
  so a parked task's fetched entries can never be evicted under it.

:class:`DataService` is the in-process resolver over all tables at
once (serial/threaded/simulated executors); it satisfies the same
protocol, resolving "remote" reads synchronously while preserving
ownership, caching, and message counting so the communication
behaviour of a run is observable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence

from ..graph.access import InMemoryGraphAccess
from ..graph.adjacency import Graph


def owner_of(vertex: int, num_machines: int) -> int:
    """Hash partitioning: machine that owns `vertex`'s adjacency list."""
    return vertex % num_machines


class LocalVertexTable:
    """Adjacency lists of the vertices one machine owns."""

    def __init__(self, machine_id: int, num_machines: int):
        self.machine_id = machine_id
        self.num_machines = num_machines
        self.partitioner = None  # set by partition(); None = hash scheme
        self._table: dict[int, Sequence[int]] = {}

    @classmethod
    def partition(
        cls, graph: Graph, num_machines: int, partitioner=None
    ) -> list["LocalVertexTable"]:
        """Split `graph` into per-machine tables (the HDFS load step).

        `partitioner` defaults to the paper's hash scheme; see
        `repro.gthinker.partition` for alternatives. Tables store
        zero-copy adjacency *views* (`Graph.neighbors_view` /
        `CSRGraph.neighbors_view`), so partitioning never duplicates
        the graph's adjacency memory — only the per-vertex references.
        """
        tables = [cls(m, num_machines) for m in range(num_machines)]
        if partitioner is None:
            owner = lambda v: owner_of(v, num_machines)  # noqa: E731
        else:
            owner = partitioner.owner
        view = getattr(graph, "neighbors_view", graph.neighbors)
        for v in graph.vertices():
            tables[owner(v)]._table[v] = view(v)
        for t in tables:
            t.partitioner = partitioner
        return tables

    @classmethod
    def from_entries(
        cls,
        machine_id: int,
        num_machines: int,
        entries: Mapping[int, Sequence[int]],
    ) -> "LocalVertexTable":
        """Build one partition's table from shipped ``{vertex: adjacency}``
        entries (the cluster Welcome's ``table_blob``)."""
        table = cls(machine_id, num_machines)
        table._table = {v: tuple(adj) for v, adj in entries.items()}
        return table

    def entries(self) -> dict[int, tuple[int, ...]]:
        """Owned adjacency as a plain picklable dict (wire shipping)."""
        return {v: tuple(adj) for v, adj in self._table.items()}

    def get(self, vertex: int) -> Sequence[int] | None:
        return self._table.get(vertex)

    def owns(self, vertex: int) -> bool:
        return vertex in self._table

    def vertices_sorted(self) -> list[int]:
        """Owned vertex IDs in ascending order (task-spawn order)."""
        return sorted(self._table)

    def __len__(self) -> int:
        return len(self._table)


class RemoteVertexCache:
    """Bounded LRU cache of remotely-owned adjacency lists.

    The paper evicts entries once no in-flight task references them; an
    LRU bound is the classic refcount-free approximation and keeps the
    same property that matters — bounded memory with cross-task reuse.
    (The cluster's :class:`RemoteGraphAccess` layers the refcounts back
    on top as pins for entries a parked task is waiting on.)
    """

    def __init__(self, capacity: int):
        self.capacity = max(1, capacity)
        self._entries: OrderedDict[int, Sequence[int]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, vertex: int) -> Sequence[int] | None:
        with self._lock:
            entry = self._entries.get(vertex)
            if entry is not None:
                self._entries.move_to_end(vertex)
                self.hits += 1
            else:
                self.misses += 1
            return entry

    def peek(self, vertex: int) -> Sequence[int] | None:
        """Probe without touching hit/miss counters or LRU order (used
        by availability checks that precede a real lookup)."""
        with self._lock:
            return self._entries.get(vertex)

    def put(self, vertex: int, adjacency: Sequence[int]) -> None:
        with self._lock:
            self._entries[vertex] = adjacency
            self._entries.move_to_end(vertex)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SharedGraphAccess(InMemoryGraphAccess):
    """Whole-graph replica access (the process pool's workers).

    Semantically identical to :class:`~repro.graph.access.
    InMemoryGraphAccess`; `origin` records how the replica reached this
    process ('fork' inheritance or 'shm' shared-memory attach), which
    is observability-only.
    """

    def __init__(self, graph, origin: str = "fork"):
        super().__init__(graph)
        self.origin = origin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedGraphAccess(origin={self.origin!r}, {self.graph!r})"


class RemoteGraphAccess:
    """:class:`GraphAccess` over one partition plus the remote cache.

    The cluster worker's view of the graph: reads hit the local vertex
    table first, then pinned entries, then the bounded cache. A vertex
    in none of those is *unresolved* — the worker must fetch it
    (VertexRequest → the master → :meth:`admit`) before any task that
    pulls it can run. Under hash partitioning, a vertex this partition
    owns but never loaded provably does not exist and resolves to an
    empty adjacency locally, saving the round trip.

    Pins are the paper's in-flight refcounts: entries a parked task is
    waiting on are held outside the LRU bound until :meth:`unpin`, so
    a cache smaller than one task's pull list can never livelock it.
    """

    def __init__(
        self,
        table: LocalVertexTable,
        cache: RemoteVertexCache,
        *,
        partition_id: int = 0,
        num_partitions: int = 1,
        hash_partitioned: bool = True,
    ):
        self._table = table
        self.cache = cache
        self.partition_id = partition_id
        self.num_partitions = num_partitions
        self._hash = hash_partitioned
        self._pinned: dict[int, Sequence[int]] = {}
        self._pin_refs: dict[int, int] = {}
        #: Adjacency entries admitted off the wire (the cluster analog
        #: of DataService.remote_messages).
        self.remote_messages = 0
        self.local_reads = 0

    # -- availability ------------------------------------------------------

    def known_absent(self, vertex: int) -> bool:
        """True when the vertex provably does not exist: under hash
        partitioning, a vertex this partition owns but never loaded was
        never in the graph (destination-only ID), so no fetch is needed."""
        return (
            self._hash
            and owner_of(vertex, self.num_partitions) == self.partition_id
            and not self._table.owns(vertex)
        )

    def cached(self, vertex: int) -> Sequence[int] | None:
        """Pinned-or-cached adjacency for a non-owned vertex, or None
        (counts a cache miss — a None here always precedes a fetch)."""
        pinned = self._pinned.get(vertex)
        if pinned is not None:
            return pinned
        return self.cache.get(vertex)

    def _lookup(self, vertex: int) -> Sequence[int] | None:
        local = self._table.get(vertex)
        if local is not None:
            self.local_reads += 1
            return local
        pinned = self._pinned.get(vertex)
        if pinned is not None:
            return pinned
        if self.known_absent(vertex):
            # We are the owner and never loaded it: the vertex does not
            # exist in the graph (destination-only ID).
            return ()
        return self.cache.get(vertex)

    def unresolved(self, vertex_ids: Iterable[int]) -> list[int]:
        missing: list[int] = []
        seen: set[int] = set()
        for v in vertex_ids:
            if v in seen:
                continue
            seen.add(v)
            if self._table.owns(v) or v in self._pinned or self.known_absent(v):
                continue
            # A counted get, not a peek: a cached entry here is an
            # avoided fetch (hit, refreshed to MRU since a read follows)
            # and a missing one always precedes a VertexRequest (miss).
            if self.cache.get(v) is None:
                missing.append(v)
        return missing

    # -- reads -------------------------------------------------------------

    def neighbors(self, vertex: int) -> Sequence[int]:
        adj = self._lookup(vertex)
        if adj is None:
            raise KeyError(
                f"vertex {vertex} is not resolvable on partition "
                f"{self.partition_id}; fetch it first (unresolved/admit)"
            )
        return adj

    def degree(self, vertex: int) -> int:
        return len(self.neighbors(vertex))

    def resolve(self, vertex_ids: Iterable[int]) -> dict[int, Sequence[int]]:
        frontier: dict[int, Sequence[int]] = {}
        for v in vertex_ids:
            adj = self._lookup(v)
            if adj is None:
                raise RuntimeError(
                    f"unresolved remote vertex {v} in a pull batch; the "
                    f"worker must park the task and fetch before resolving"
                )
            frontier[v] = adj
        return frontier

    def prefetch(self, vertex_ids: Iterable[int]) -> None:
        """Hint only: the worker reactor batches real fetches itself."""

    def adjacency_mask(self, vertex: int, members: Sequence[int]) -> int:
        nbr_set = set(self.neighbors(vertex))
        mask = 0
        for i, m in enumerate(members):
            if m in nbr_set:
                mask |= 1 << i
        return mask

    # -- wire admission + pinning ------------------------------------------

    def admit(
        self,
        entries: Iterable[tuple[int, Sequence[int]]],
        pin: bool = False,
    ) -> int:
        """Install fetched ``(vertex, adjacency)`` entries; returns how
        many were admitted. With ``pin=True`` each admitted entry is
        also pinned (one reference) for the task that requested it."""
        admitted = 0
        for v, adj in entries:
            if self._table.owns(v):
                continue  # raced with nothing: we already own it
            adj = tuple(adj)
            self.remote_messages += 1
            admitted += 1
            self.cache.put(v, adj)
            if pin:
                self._pinned[v] = adj
                self._pin_refs[v] = self._pin_refs.get(v, 0) + 1
        return admitted

    def pin(self, vertex_ids: Iterable[int]) -> None:
        """Take one reference on each currently-cached entry so it
        survives until :meth:`unpin` (parked-task protection)."""
        for v in vertex_ids:
            if self._table.owns(v) or self.known_absent(v):
                continue
            entry = self._pinned.get(v)
            if entry is None:
                entry = self.cache.peek(v)
            if entry is None:
                continue  # will arrive via admit(pin=True)
            self._pinned[v] = entry
            self._pin_refs[v] = self._pin_refs.get(v, 0) + 1

    def unpin(self, vertex_ids: Iterable[int]) -> None:
        for v in vertex_ids:
            refs = self._pin_refs.get(v)
            if refs is None:
                continue
            if refs <= 1:
                del self._pin_refs[v]
                del self._pinned[v]
            else:
                self._pin_refs[v] = refs - 1

    # -- footprint ---------------------------------------------------------

    def resident_entries(self) -> int:
        """Adjacency entries held right now: partition + cache + pins.

        The memory-bounded claim of the distributed vertex store: this
        stays ≈ |V|/num_partitions + cache capacity, never |V|. Pinned
        entries that also sit in the cache are counted once.
        """
        pinned_only = sum(
            1 for v in self._pinned if self.cache.peek(v) is None
        )
        return len(self._table) + len(self.cache) + pinned_only


class DataService:
    """Per-machine pull resolver over the distributed vertex tables.

    The in-process :class:`GraphAccess`: all partitions share one
    address space (serial/threaded/simulated executors), so "remote"
    reads are synchronous dictionary hops that preserve the ownership,
    caching, and message accounting of the real distributed store.
    """

    def __init__(
        self,
        machine_id: int,
        tables: list[LocalVertexTable],
        cache: RemoteVertexCache,
        partitioner=None,
    ):
        self.machine_id = machine_id
        self._tables = tables
        self._local = tables[machine_id]
        self._cache = cache
        self._partitioner = partitioner
        self.remote_messages = 0
        self.local_reads = 0

    def _owner_of(self, vertex: int) -> int:
        if self._partitioner is not None:
            return self._partitioner.owner(vertex)
        return owner_of(vertex, len(self._tables))

    def neighbors(self, vertex: int) -> Sequence[int]:
        return self.resolve([vertex])[vertex]

    def degree(self, vertex: int) -> int:
        return len(self.neighbors(vertex))

    def unresolved(self, vertex_ids: Iterable[int]) -> list[int]:
        return []  # every table is one dictionary hop away

    def prefetch(self, vertex_ids: Iterable[int]) -> None:
        pass

    def adjacency_mask(self, vertex: int, members: Sequence[int]) -> int:
        nbr_set = set(self.neighbors(vertex))
        mask = 0
        for i, m in enumerate(members):
            if m in nbr_set:
                mask |= 1 << i
        return mask

    def resolve(self, vertex_ids: Iterable[int]) -> dict[int, Sequence[int]]:
        """Serve a task's pull batch; returns {vertex: adjacency list}.

        Vertices absent from the graph resolve to empty lists (a task
        may name a destination-only vertex that was never loaded).
        """
        frontier: dict[int, Sequence[int]] = {}
        for v in vertex_ids:
            local = self._local.get(v)
            if local is not None:
                self.local_reads += 1
                frontier[v] = local
                continue
            owner_id = self._owner_of(v)
            if owner_id == self.machine_id:
                # We are the owner and don't have it: the vertex simply
                # does not exist in the graph (destination-only ID).
                frontier[v] = []
                continue
            cached = self._cache.get(v)
            if cached is not None:
                frontier[v] = cached
                continue
            self.remote_messages += 1
            adjacency = self._tables[owner_id].get(v)
            if adjacency is None:
                adjacency = []
            self._cache.put(v, adjacency)
            frontier[v] = adjacency
        return frontier
