"""Partitioned vertex table and remote vertex cache (paper Fig. 8).

The input graph is hash-partitioned across machines by vertex ID: each
machine's *local vertex table* owns the adjacency lists of its
vertices, and the tables together form a distributed key-value store.
A task may request any vertex; remote hits are served by the owner and
memoized in the requester's bounded *remote vertex cache* so concurrent
tasks share fetched lists. The in-process reproduction resolves pulls
synchronously but preserves ownership, caching, and message counting so
the communication behaviour of a run is observable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..graph.adjacency import Graph


def owner_of(vertex: int, num_machines: int) -> int:
    """Hash partitioning: machine that owns `vertex`'s adjacency list."""
    return vertex % num_machines


class LocalVertexTable:
    """Adjacency lists of the vertices one machine owns."""

    def __init__(self, machine_id: int, num_machines: int):
        self.machine_id = machine_id
        self.num_machines = num_machines
        self.partitioner = None  # set by partition(); None = hash scheme
        self._table: dict[int, list[int]] = {}

    @classmethod
    def partition(
        cls, graph: Graph, num_machines: int, partitioner=None
    ) -> list["LocalVertexTable"]:
        """Split `graph` into per-machine tables (the HDFS load step).

        `partitioner` defaults to the paper's hash scheme; see
        `repro.gthinker.partition` for alternatives.
        """
        tables = [cls(m, num_machines) for m in range(num_machines)]
        if partitioner is None:
            owner = lambda v: owner_of(v, num_machines)  # noqa: E731
        else:
            owner = partitioner.owner
        for v in graph.vertices():
            tables[owner(v)]._table[v] = graph.neighbors(v)
        for t in tables:
            t.partitioner = partitioner
        return tables

    def get(self, vertex: int) -> list[int] | None:
        return self._table.get(vertex)

    def owns(self, vertex: int) -> bool:
        return vertex in self._table

    def vertices_sorted(self) -> list[int]:
        """Owned vertex IDs in ascending order (task-spawn order)."""
        return sorted(self._table)

    def __len__(self) -> int:
        return len(self._table)


class RemoteVertexCache:
    """Bounded LRU cache of remotely-owned adjacency lists.

    The paper evicts entries once no in-flight task references them; an
    LRU bound is the classic refcount-free approximation and keeps the
    same property that matters — bounded memory with cross-task reuse.
    """

    def __init__(self, capacity: int):
        self._capacity = max(1, capacity)
        self._entries: OrderedDict[int, list[int]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, vertex: int) -> list[int] | None:
        with self._lock:
            entry = self._entries.get(vertex)
            if entry is not None:
                self._entries.move_to_end(vertex)
                self.hits += 1
            else:
                self.misses += 1
            return entry

    def put(self, vertex: int, adjacency: list[int]) -> None:
        with self._lock:
            self._entries[vertex] = adjacency
            self._entries.move_to_end(vertex)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DataService:
    """Per-machine pull resolver over the distributed vertex tables."""

    def __init__(
        self,
        machine_id: int,
        tables: list[LocalVertexTable],
        cache: RemoteVertexCache,
        partitioner=None,
    ):
        self.machine_id = machine_id
        self._tables = tables
        self._local = tables[machine_id]
        self._cache = cache
        self._partitioner = partitioner
        self.remote_messages = 0
        self.local_reads = 0

    def _owner_of(self, vertex: int) -> int:
        if self._partitioner is not None:
            return self._partitioner.owner(vertex)
        return owner_of(vertex, len(self._tables))

    def resolve(self, vertex_ids: list[int]) -> dict[int, list[int]]:
        """Serve a task's pull batch; returns {vertex: adjacency list}.

        Vertices absent from the graph resolve to empty lists (a task
        may name a destination-only vertex that was never loaded).
        """
        frontier: dict[int, list[int]] = {}
        for v in vertex_ids:
            local = self._local.get(v)
            if local is not None:
                self.local_reads += 1
                frontier[v] = local
                continue
            owner_id = self._owner_of(v)
            if owner_id == self.machine_id:
                # We are the owner and don't have it: the vertex simply
                # does not exist in the graph (destination-only ID).
                frontier[v] = []
                continue
            cached = self._cache.get(v)
            if cached is not None:
                frontier[v] = cached
                continue
            self.remote_messages += 1
            adjacency = self._tables[owner_id].get(v)
            if adjacency is None:
                adjacency = []
            self._cache.put(v, adjacency)
            frontier[v] = adjacency
        return frontier
