"""Vertex partitioning strategies for the distributed vertex table.

The paper assigns vertices to machines "by hashing their vertex IDs".
That is the default here too, but partitioning interacts with load
balance (spawn order follows ownership), so alternative strategies are
provided for experiments:

* ``hash``  — v mod M (the paper's choice; spreads hubs uniformly);
* ``range`` — contiguous equal-count ranges of the sorted vertex list
  (data locality, but low-ID-heavy workloads skew machine 0);
* ``balanced_degree`` — greedy bin packing by degree so every machine
  owns roughly the same number of *edges* (adjacency bytes), the
  storage-balance criterion real deployments care about.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

from ..graph.adjacency import Graph


class Partitioner:
    """Maps vertex IDs to machine IDs; immutable once built."""

    def __init__(self, assignment: Mapping[int, int], num_partitions: int,
                 name: str):
        self._assignment = dict(assignment)
        self.num_partitions = num_partitions
        self.name = name

    def owner(self, vertex: int) -> int:
        """Owning machine; unknown IDs fall back to hash (destination-only)."""
        got = self._assignment.get(vertex)
        if got is not None:
            return got
        return vertex % self.num_partitions

    def parts(self) -> list[list[int]]:
        """Vertices per machine, each list sorted."""
        out: list[list[int]] = [[] for _ in range(self.num_partitions)]
        for v, m in self._assignment.items():
            out[m].append(v)
        for part in out:
            part.sort()
        return out


def hash_partitioner(graph: Graph, num_partitions: int) -> Partitioner:
    """The paper's scheme: owner(v) = v mod M."""
    return Partitioner(
        {v: v % num_partitions for v in graph.vertices()},
        num_partitions, "hash",
    )


def range_partitioner(graph: Graph, num_partitions: int) -> Partitioner:
    """Contiguous, equal-count ranges of the sorted vertex IDs."""
    vertices = sorted(graph.vertices())
    n = len(vertices)
    assignment: dict[int, int] = {}
    if n == 0:
        return Partitioner({}, num_partitions, "range")
    per = -(-n // num_partitions)  # ceil division
    for i, v in enumerate(vertices):
        assignment[v] = min(i // per, num_partitions - 1)
    return Partitioner(assignment, num_partitions, "range")


def balanced_degree_partitioner(graph: Graph, num_partitions: int) -> Partitioner:
    """Greedy LPT packing: heaviest-degree vertices to the lightest machine."""
    order = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    heap = [(0, m) for m in range(num_partitions)]
    heapq.heapify(heap)
    assignment: dict[int, int] = {}
    for v in order:
        load, m = heapq.heappop(heap)
        assignment[v] = m
        heapq.heappush(heap, (load + graph.degree(v) + 1, m))
    return Partitioner(assignment, num_partitions, "balanced_degree")


_STRATEGIES = {
    "hash": hash_partitioner,
    "range": range_partitioner,
    "balanced_degree": balanced_degree_partitioner,
}


def make_partitioner(strategy: str, graph: Graph, num_partitions: int) -> Partitioner:
    try:
        factory = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"available: {', '.join(_STRATEGIES)}"
        ) from None
    return factory(graph, num_partitions)


def edge_balance(graph: Graph, partitioner: Partitioner) -> list[int]:
    """Adjacency-entry count per machine (storage-balance diagnostic)."""
    loads = [0] * partitioner.num_partitions
    for v in graph.vertices():
        loads[partitioner.owner(v)] += graph.degree(v)
    return loads
