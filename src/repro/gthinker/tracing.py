"""Structured tracing of engine scheduling decisions.

For debugging and for *testing the scheduler itself*: with a tracer
attached, the engine emits one event per lifecycle step (spawn, queue
routing, pop origin, execution, decomposition, steal), so tests can
assert policy properties — e.g. "a task is never executed before it was
routed" or "global pops precede local pops while big tasks exist" —
instead of inferring them from aggregate counters.

The tracer is bounded (ring buffer) and lock-guarded; a NullTracer with
no-op emit keeps the hot path free when tracing is off (the default).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import warnings
from collections import deque
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One scheduling decision."""

    seq: int
    kind: str
    task_id: int
    machine: int
    thread: int
    detail: str = ""


#: Event kinds the engine emits.
KINDS = (
    "spawn",  # task created from the vertex table
    "route_global",  # task added to a machine's global big-task queue
    "route_local",  # task added to a thread's local queue
    "pop_global",  # task taken from the global queue
    "pop_local",  # task taken from a local queue
    "ready_global",  # data-ready big task buffered (B_global)
    "ready_local",  # data-ready small task buffered (B_local)
    "execute",  # one compute round starts
    "finish",  # task completed
    "decompose",  # task produced subtasks
    "steal",  # batch moved between machines
    "steal_planned",  # master planned one big-task move (per StealMove)
    "steal_sent",  # big tasks left the donor machine's global queue
    "steal_received",  # big tasks arrived at the recipient machine
    "worker_died",  # a worker process died or was declared wedged
    "task_retried",  # reclaimed task re-entered the routing policy
    "task_quarantined",  # task poisoned after max_attempts failures
    "span_begin",  # a timed hot-path span opened (detail: name= t=)
    "span_end",  # a timed hot-path span closed (detail: name= t= dur=)
    "progress",  # periodic live-progress snapshot (coordinator only)
    "vertex_requested",  # worker asked the owner for remote adjacency
    "vertex_served",  # master answered a vertex fetch (detail: size=)
)

#: Kinds emitted by the stealing path. They fire on wall-clock timing in
#: the threaded engine, on virtual time in the simulator, and on real
#: network round-trips in the cluster runtime, so cross-executor
#: vocabulary comparisons must treat them as timing-dependent.
STEAL_KINDS = frozenset({"steal", "steal_planned", "steal_sent", "steal_received"})

#: Kinds emitted by the observability layer (repro.gthinker.obs): timed
#: span pairs around the hot-path phases and the coordinator's periodic
#: progress snapshot. Like STEAL_KINDS they are timing-dependent — which
#: spans fire depends on wall-clock spill/steal/fault behaviour — so
#: cross-executor vocabulary comparisons must exclude them too.
SPAN_KINDS = frozenset({"span_begin", "span_end"})
OBS_KINDS = SPAN_KINDS | {"progress"}

#: Unknown kinds already warned about (production mode warns once per kind).
_warned_kinds: set[str] = set()


def _validate_kind(kind: str) -> None:
    """Check an emitted kind against the KINDS vocabulary.

    Under pytest (or with ``REPRO_STRICT_TRACE=1``) an unknown kind is a
    hard error — a typo'd kind would silently vanish from every
    ``events(kind=...)`` filter and cross-executor vocabulary check.
    In production it degrades to a once-per-kind warning and the event
    is still recorded: tracing must never take down a mining run.
    """
    if kind in KINDS:
        return
    strict = (
        "PYTEST_CURRENT_TEST" in os.environ
        or os.environ.get("REPRO_STRICT_TRACE") == "1"
    )
    if strict:
        raise ValueError(
            f"unknown trace kind {kind!r}; add it to tracing.KINDS"
        )
    if kind not in _warned_kinds:
        _warned_kinds.add(kind)
        warnings.warn(
            f"unknown trace kind {kind!r} (not in tracing.KINDS); "
            f"recording it anyway",
            RuntimeWarning,
            stacklevel=3,
        )


class Tracer:
    """Bounded, thread-safe event recorder."""

    def __init__(self, capacity: int = 100_000):
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = itertools.count()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return True

    def emit(
        self, kind: str, task_id: int, machine: int = -1, thread: int = -1,
        detail: str = "",
    ) -> None:
        _validate_kind(kind)
        with self._lock:
            self._events.append(
                TraceEvent(
                    seq=next(self._seq), kind=kind, task_id=task_id,
                    machine=machine, thread=thread, detail=detail,
                )
            )

    def events(self, kind: str | None = None, task_id: int | None = None) -> list[TraceEvent]:
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if task_id is not None:
            out = [e for e in out if e.task_id == task_id]
        return out

    def counts(self) -> dict[str, int]:
        summary: dict[str, int] = {}
        for e in self.events():
            summary[e.kind] = summary.get(e.kind, 0) + 1
        return summary

    def dump_jsonl(self, path: str | os.PathLike) -> int:
        """Write events as JSON lines; returns the count written."""
        events = self.events()
        with open(path, "w") as f:
            for e in events:
                f.write(json.dumps(asdict(e)) + "\n")
        return len(events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullTracer:
    """No-op tracer (the default; keeps the scheduling hot path clean)."""

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, *args, **kwargs) -> None:
        return None

    def events(self, *args, **kwargs) -> list[TraceEvent]:
        return []

    def counts(self) -> dict[str, int]:
        return {}

    def __len__(self) -> int:
        return 0
