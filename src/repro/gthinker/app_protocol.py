"""The formal G-thinker application protocol (paper Section 5 UDFs).

The engines are generic over an *application* — exactly the programming
model of the original G-thinker (Yan et al.): a small object exposing
two UDFs plus two result/accounting attributes:

* ``spawn(vertex, adjacency, task_id)`` — create (or decline) the task
  seeded at one vertex of the local vertex table;
* ``compute(task, frontier, ctx)`` — run one iteration of a task given
  the adjacency lists it pulled last round;
* ``sink``  — a :class:`~repro.core.options.ResultSink` the executor
  collects at job end;
* ``stats`` — a :class:`~repro.core.options.MiningStats` merged into
  the run's :class:`~repro.gthinker.metrics.EngineMetrics`.

Every executor (serial, threaded, simulated cluster) schedules apps
through the same :mod:`repro.gthinker.scheduler` core, so an app
written against this protocol runs on all of them unchanged.

Apps *declare* conformance with the :func:`gthinker_app` class
decorator, which checks the UDF surface at import time and registers
the class so the test suite can sweep every declared application.
Executors validate instances with :func:`ensure_app` at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, TypeVar, runtime_checkable

from ..core.options import MiningStats, ResultSink
from .config import EngineConfig
from .metrics import TaskRecord
from .task import ComputeOutcome, Task


@dataclass
class ComputeContext:
    """Per-execution services the scheduler hands to ``compute()``."""

    config: EngineConfig
    next_task_id: Callable[[], int]
    record: Callable[[TaskRecord], None] | None = None


@runtime_checkable
class GThinkerApp(Protocol):
    """Structural type of a G-thinker application."""

    sink: ResultSink
    stats: MiningStats

    def spawn(self, vertex: int, adjacency: list[int], task_id: int) -> Task | None:
        """Seed (or decline: ``None``) the task rooted at ``vertex``."""
        ...

    def compute(
        self, task: Task, frontier: dict[int, list[int]], ctx: ComputeContext
    ) -> ComputeOutcome:
        """Run one iteration; ``frontier`` maps pulled IDs to adjacency."""
        ...


#: Required instance surface, used by both the decorator and ensure_app.
_UDFS = ("spawn", "compute")
_ATTRS = ("sink", "stats")

_REGISTERED_APPS: list[type] = []

T = TypeVar("T", bound=type)


def gthinker_app(cls: T) -> T:
    """Class decorator: declare that ``cls`` implements :class:`GThinkerApp`.

    The two UDFs are checked at import time; ``sink`` / ``stats`` are
    usually per-instance (dataclass fields), so they are validated on
    instances by :func:`ensure_app` when an executor is built.
    """
    for name in _UDFS:
        if not callable(getattr(cls, name, None)):
            raise TypeError(
                f"{cls.__name__} declares GThinkerApp but does not "
                f"implement {name}()"
            )
    _REGISTERED_APPS.append(cls)
    return cls


def registered_apps() -> tuple[type, ...]:
    """All classes that declared the protocol via :func:`gthinker_app`."""
    return tuple(_REGISTERED_APPS)


def ensure_app(app: object) -> GThinkerApp:
    """Validate an app instance against the protocol; returns it typed."""
    missing = [
        name for name in (*_UDFS, *_ATTRS) if not hasattr(app, name)
    ]
    if missing:
        raise TypeError(
            f"{type(app).__name__} does not implement the GThinkerApp "
            f"protocol (missing: {', '.join(missing)})"
        )
    return app  # type: ignore[return-value]
