"""The work ledger: at-least-once lease bookkeeping for distributed work.

One implementation of the paper's coordination discipline, shared by
every distributed backend. A *lease* records work shipped to a worker:
the process backend leases batches of :class:`~repro.gthinker.task.
Task` objects (many members per lease, attempts tracked per task id),
the cluster backend leases work units — spawn-vertex chunks and
encoded-task batches — one member per lease, attempts tracked per work
id. Both are the same ledger parameterized by a member *key*:

* **grant**    — a lease ships to a worker; every member's dispatch
  count bumps, and granting past ``max_attempts`` or past the
  per-worker ``lease_window`` is a programming error, not a policy
  decision, so the ledger refuses it;
* **complete** — the worker's result arrived; the lease retires and its
  members' attempt records drop. A completion for an unknown lease —
  or, when the caller identifies itself, for a lease now owned by a
  different worker — is a *stale at-least-once duplicate* and returns
  None so the caller can drop everything but the (idempotent)
  candidates;
* **reclaim**  — the worker died or the lease's deadline passed; the
  members split into those to retry (dispatched fewer than
  ``max_attempts`` times) and those to quarantine as poisoned. A
  quarantined member is never granted again.

Conservation is the invariant everything hangs from: every member ever
granted is, at all times, exactly one of *leased*, *awaiting retry*
(its attempt record survives reclaim), *completed*, or *quarantined*.
:meth:`WorkLedger.check_invariants` asserts the ledger-internal part;
the stateful Hypothesis model in ``tests/gthinker/
test_property_stateful.py`` checks the whole cycle against an
in-memory model through both grant styles.

Single-owner by design: only the coordinating loop (the engine_mp
dispatch loop, the cluster master's run loop) touches a ledger, exactly
as only that loop owns the rest of the scheduler state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generic, TypeVar

if TYPE_CHECKING:
    from ..task import Task

T = TypeVar("T")

__all__ = ["Lease", "TaskLeaseTable", "WorkLedger"]


@dataclass
class Lease(Generic[T]):
    """One unit of leased work shipped to a worker, awaiting its result."""

    lease_id: int
    worker_id: int
    items: list[T]
    #: Highest per-member dispatch count in the lease at grant time (1-based).
    attempt: int
    #: Monotonic-clock deadline; past it the worker is presumed wedged.
    deadline: float
    keys: tuple[int, ...] = field(default_factory=tuple)

    # -- historical spellings (the process backend grew up calling a
    # -- lease a batch of tasks) ------------------------------------------

    @property
    def batch_id(self) -> int:
        return self.lease_id

    @property
    def tasks(self) -> list[T]:
        return self.items

    @property
    def task_ids(self) -> tuple[int, ...]:
        return self.keys


class WorkLedger(Generic[T]):
    """Coordinator-side ledger of work in flight to workers.

    Parameterized by ``key`` (member → stable int identity; attempts
    are counted per key) and ``size`` (member → task count, feeding the
    task-granular metrics both backends report). ``lease_window``, when
    set, caps concurrent leases per worker — pipelining without
    hoarding: a dead worker forfeits at most window × lease-size work.
    """

    def __init__(
        self,
        max_attempts: int,
        *,
        key: Callable[[T], int],
        size: Callable[[T], int] | None = None,
        lease_window: int | None = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if lease_window is not None and lease_window < 1:
            raise ValueError("lease_window must be >= 1")
        self.max_attempts = max_attempts
        self.lease_window = lease_window
        self._key = key
        self._size: Callable[[T], int] = size if size is not None else (lambda _item: 1)
        self._leases: dict[int, Lease[T]] = {}
        self._attempts: dict[int, int] = {}  # member key -> dispatch count
        self._open: dict[int, set[int]] = {}  # worker_id -> open lease ids
        self.tasks_completed = 0
        self.tasks_quarantined = 0
        self.quarantined_ids: list[int] = []

    # -- views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leases)

    def __bool__(self) -> bool:
        return bool(self._leases)

    @property
    def outstanding(self) -> set[int]:
        """Lease ids currently granted."""
        return set(self._leases)

    def get(self, lease_id: int) -> Lease[T] | None:
        return self._leases.get(lease_id)

    def key_of(self, item: T) -> int:
        return self._key(item)

    def size_of(self, item: T) -> int:
        return self._size(item)

    def leased_task_ids(self) -> set[int]:
        """Member keys currently under lease."""
        return {k for lease in self._leases.values() for k in lease.keys}

    def leased_task_count(self) -> int:
        return sum(len(lease.items) for lease in self._leases.values())

    def attempts(self, key: int) -> int:
        """Dispatch count of a live member (0 once completed/quarantined)."""
        return self._attempts.get(key, 0)

    def attempts_snapshot(self) -> dict[int, int]:
        return dict(self._attempts)

    def open_leases(self, worker_id: int) -> set[int]:
        """Ids of the leases `worker_id` currently holds."""
        return set(self._open.get(worker_id, ()))

    def open_count(self, worker_id: int) -> int:
        return len(self._open.get(worker_id, ()))

    def has_window(self, worker_id: int) -> bool:
        """True iff `worker_id` may be granted another lease."""
        if self.lease_window is None:
            return True
        return self.open_count(worker_id) < self.lease_window

    # -- lifecycle ---------------------------------------------------------

    def grant(
        self,
        lease_id: int,
        worker_id: int,
        items: list[T],
        now: float,
        timeout: float,
        *,
        enforce_window: bool = True,
    ) -> Lease[T]:
        """Record work shipping to `worker_id`; bumps per-member attempts.

        ``enforce_window=False`` lets a caller deliberately over-commit
        a worker's window — the cluster master does this when forwarding
        a steal grant, because a stolen batch must land on its planned
        recipient rather than wait in the pending pool it was stolen to
        escape.
        """
        if lease_id in self._leases:
            raise ValueError(f"lease {lease_id} is already granted")
        if enforce_window and not self.has_window(worker_id):
            raise ValueError(
                f"worker {worker_id} is at its lease window "
                f"({self.lease_window})"
            )
        attempt = 0
        keys = []
        for item in items:
            key = self._key(item)
            count = self._attempts.get(key, 0) + 1
            if count > self.max_attempts:
                raise ValueError(
                    f"member {key} granted beyond max_attempts={self.max_attempts}"
                )
            self._attempts[key] = count
            keys.append(key)
            attempt = max(attempt, count)
        lease = Lease(
            lease_id=lease_id,
            worker_id=worker_id,
            items=list(items),
            attempt=attempt,
            deadline=now + timeout,
            keys=tuple(keys),
        )
        self._leases[lease_id] = lease
        self._open.setdefault(worker_id, set()).add(lease_id)
        return lease

    def complete(self, lease_id: int, worker_id: int | None = None) -> Lease[T] | None:
        """Mark a lease's result received; None if it is stale.

        Stale means the lease was reclaimed earlier (unknown id) or —
        when the caller identifies itself — it has since been re-leased
        to a different worker. Either way the result is an
        at-least-once duplicate the caller must drop (candidates
        excepted: the sink deduplicates those).
        """
        lease = self._leases.get(lease_id)
        if lease is None:
            return None
        if worker_id is not None and lease.worker_id != worker_id:
            return None
        del self._leases[lease_id]
        self._open.get(lease.worker_id, set()).discard(lease_id)
        self.tasks_completed += sum(self._size(item) for item in lease.items)
        for key in lease.keys:
            self._attempts.pop(key, None)
        return lease

    def leases_for(self, worker_id: int) -> list[Lease[T]]:
        return [
            self._leases[lease_id]
            for lease_id in sorted(self._open.get(worker_id, ()))
            if lease_id in self._leases
        ]

    def expired(self, now: float) -> list[Lease[T]]:
        return [lease for lease in self._leases.values() if now >= lease.deadline]

    def reclaim(self, lease: Lease[T]) -> tuple[list[tuple[T, int]], list[tuple[T, int]]]:
        """Take back a failed lease; returns (to_retry, to_quarantine).

        Both lists pair each member with its dispatch count so far.
        Members at `max_attempts` are quarantined (counted once, dropped
        from the attempts ledger); the rest stay live for re-dispatch —
        their attempt records survive, so conservation holds while they
        sit in a retry queue.
        """
        if self._leases.pop(lease.lease_id, None) is None:
            return [], []
        self._open.get(lease.worker_id, set()).discard(lease.lease_id)
        retry: list[tuple[T, int]] = []
        quarantine: list[tuple[T, int]] = []
        for item in lease.items:
            key = self._key(item)
            count = self._attempts.get(key, 0)
            if count >= self.max_attempts:
                self._attempts.pop(key, None)
                self.tasks_quarantined += self._size(item)
                self.quarantined_ids.append(key)
                quarantine.append((item, count))
            else:
                retry.append((item, count))
        return retry, quarantine

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert ledger-internal consistency (tests call this freely).

        Leased members always carry an attempt record in
        ``1..max_attempts``; the per-worker open sets partition exactly
        the outstanding leases; no quarantined key is ever live again.
        """
        open_ids = {lid for ids in self._open.values() for lid in ids}
        assert open_ids == set(self._leases), "open sets disagree with leases"
        # No window assertion here: enforce_window=False grants (steal
        # forwarding) may legitimately over-commit a worker.
        for lease in self._leases.values():
            for key in lease.keys:
                count = self._attempts.get(key, 0)
                assert 1 <= count <= self.max_attempts, (
                    f"leased member {key} has attempt count {count}"
                )
        live = set(self._attempts)
        assert not (live & set(self.quarantined_ids)), "quarantined key is live"


class TaskLeaseTable(WorkLedger["Task"]):
    """Task-batch ledger of the process backend (the historical name).

    A :class:`WorkLedger` keyed by ``task.task_id`` with one task = one
    unit of accounting — exactly the table `engine_mp` always used, now
    the shared implementation.
    """

    def __init__(self, max_attempts: int, lease_window: int | None = None):
        super().__init__(
            max_attempts,
            key=lambda task: task.task_id,
            lease_window=lease_window,
        )
