"""At-least-once result folding.

Retry makes execution at-least-once, so the coordinator will sooner or
later see the same work twice: a worker presumed dead flushes a result
for a lease already reclaimed and re-dispatched, or an ack arrives from
a previous incarnation's era. :class:`ResultFolder` is the one place
both distributed backends decide what survives a duplicate:

* **candidates always fold** — the dedup key is the candidate vertex
  set itself (:meth:`ResultFolder.fold` normalizes every candidate to a
  ``frozenset`` before it reaches the sink), so folding a stale batch
  is idempotent and mined truth is never thrown away;
* **everything else folds once** — children, per-batch metrics, and
  completion credit ride on :meth:`ResultFolder.complete`, which
  returns None for a stale lease (reclaimed, or re-leased to a
  different worker) and counts the drop in
  ``metrics.stale_results_dropped``;
* **worker trace events forward through one gate** —
  :meth:`ResultFolder.forward_events` replays a worker's scheduler
  events into the coordinator's tracer, optionally filtered to an
  allow-list, attributed by the one worker-origin rule
  (:func:`~.registry.worker_attribution`): ``machine=worker id`` on
  every backend, ``thread`` the worker-local thread when the backend
  ships one (cluster 4-tuples) and -1 otherwise (pool 3-tuples).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Collection, Generic, Iterable, TypeVar

from ..obs.spans import emit_span
from .ledger import Lease, WorkLedger
from .registry import worker_attribution

if TYPE_CHECKING:
    from ..metrics import EngineMetrics

T = TypeVar("T")

__all__ = ["ResultFolder"]


class ResultFolder(Generic[T]):
    """Folds worker results into the job under at-least-once delivery."""

    def __init__(
        self,
        sink: Any,
        ledger: WorkLedger[T],
        *,
        metrics: EngineMetrics,
        tracer: Any,
    ):
        self.sink = sink
        self.ledger = ledger
        self.metrics = metrics
        self.tracer = tracer

    def fold(self, candidates: Iterable[Collection[int]]) -> int:
        """Fold mined candidates into the sink; returns how many were new.

        Always safe, even from a stale duplicate or a failing worker's
        last gasp: the sink keys on ``frozenset(candidate)``, so the
        same vertex set folded twice is one result.
        """
        trace = self.tracer.enabled
        t0 = time.monotonic() if trace else 0.0
        before = len(self.sink)
        folded = 0
        for candidate in candidates:
            self.sink.emit(frozenset(candidate))
            folded += 1
        new = len(self.sink) - before
        if trace and folded:
            emit_span(
                self.tracer, "result_fold", t0, time.monotonic(),
                detail=f"candidates={folded} new={new}",
            )
        return new

    def complete(self, lease_id: int, worker_id: int | None = None) -> Lease[T] | None:
        """Retire a lease on its result; None (and a counted drop) if stale.

        A None return tells the driver the rest of the message —
        children, metrics, completion credit — belongs to the retry
        that superseded this attempt and must be dropped to keep
        accounting single-count.
        """
        lease = self.ledger.complete(lease_id, worker_id)
        if lease is None:
            self.metrics.stale_results_dropped += 1
        return lease

    def forward_events(
        self,
        worker_id: int,
        events: Iterable[tuple],
        allowed: Collection[str] | None = None,
    ) -> None:
        """Replay worker-forwarded trace events into the job tracer."""
        if not self.tracer.enabled:
            return
        for event in events:
            if len(event) == 4:
                kind, task_id, thread, detail = event
                machine, thread_id = worker_attribution(worker_id, thread)
            else:
                kind, task_id, detail = event
                machine, thread_id = worker_attribution(worker_id)
            if allowed is not None and kind not in allowed:
                continue
            self.tracer.emit(
                kind, task_id, machine=machine, thread=thread_id, detail=detail
            )
