"""Transport abstraction for the coordination control plane.

The control plane (:mod:`repro.gthinker.runtime`) never talks to a
transport directly — it sees a :class:`Channel`: something that can
``send`` a message, ``recv`` one, report readability, and die. Two
implementations cover the two distributed backends:

* :class:`PipeChannel` — the process backend's parent-side view of one
  worker *incarnation*: sends go to the worker's private task queue,
  receives come off its private one-writer result pipe. EOF and torn
  frames (the worker was SIGKILLed mid-send) poison only this channel.
* :class:`StreamChannel` — the cluster backend's framed-pickle TCP
  stream (:class:`repro.gthinker.cluster.protocol.MessageStream`), with
  the same failure contract: protocol errors and socket teardown both
  surface as :class:`ChannelClosed`.

The shared contract is the fault-domain rule PR 5 bought with private
pipes: one writer per channel, so a dead peer can corrupt its own
channel and nothing else. Every failure mode a peer can inflict —
clean EOF, torn frame, reset socket — surfaces as the single
:class:`ChannelClosed` exception, and the channel marks itself closed,
so supervision code has exactly one "this peer is gone" signal to
handle regardless of transport.
"""

from __future__ import annotations

import pickle
from typing import Any, Protocol, runtime_checkable

__all__ = ["Channel", "ChannelClosed", "PipeChannel", "StreamChannel"]


class ChannelClosed(Exception):
    """The peer is unreachable: EOF, torn frame, or reset transport."""


@runtime_checkable
class Channel(Protocol):
    """One coordination link to a single worker (one writer per side)."""

    def send(self, message: Any) -> None:
        """Ship a message to the peer; raises ChannelClosed if it is gone."""
        ...

    def recv(self) -> Any:
        """Block for the peer's next message; raises ChannelClosed on
        EOF or a torn frame (the channel is closed as a side effect)."""
        ...

    def poll(self) -> bool:
        """True if a recv() would not block."""
        ...

    def close(self) -> None:
        """Tear down this side of the transport (idempotent)."""
        ...

    @property
    def closed(self) -> bool: ...


class PipeChannel:
    """Process-backend channel: task queue out, private result pipe in.

    The parent holds one of these per worker *incarnation*. The worker
    is the pipe's only writer, so a SIGKILL can never leave a shared
    write lock held (the fault-domain violation a shared
    ``multiprocessing.Queue`` used to have) — a killed worker tears
    only its own channel.
    """

    def __init__(self, task_queue: Any, result_conn: Any):
        self._task_queue = task_queue
        self._conn = result_conn
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def fileno(self) -> int:
        """The result pipe's descriptor, for multiplexed waits."""
        return self._conn.fileno()  # type: ignore[no-any-return]

    @property
    def waitable(self) -> Any:
        """The raw object `multiprocessing.connection.wait` accepts."""
        return self._conn

    def send(self, message: Any) -> None:
        if self._closed:
            raise ChannelClosed("channel already closed")
        try:
            self._task_queue.put(message)
        except (ValueError, OSError) as exc:
            raise ChannelClosed(str(exc)) from exc

    def recv(self) -> Any:
        if self._closed:
            raise ChannelClosed("channel already closed")
        try:
            return self._conn.recv()
        except (EOFError, OSError, pickle.UnpicklingError) as exc:
            # EOF: the worker exited. Torn frame: it died mid-send.
            # Either way only this incarnation's channel is poisoned.
            self.close()
            raise ChannelClosed(str(exc) or type(exc).__name__) from exc

    def poll(self) -> bool:
        if self._closed:
            return False
        try:
            return bool(self._conn.poll())
        except (OSError, ValueError):
            self.close()
            return False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.close()
        except OSError:
            pass

    def discard_task_queue(self) -> None:
        """Abandon the outbound queue of a dead incarnation.

        Anything still sitting on it is covered by the worker's leases;
        the queue itself must not block interpreter shutdown.
        """
        try:
            self._task_queue.cancel_join_thread()
            self._task_queue.close()
        except (OSError, ValueError):
            pass


class StreamChannel:
    """Cluster-backend channel over one framed-pickle TCP stream."""

    def __init__(self, stream: Any):
        self._stream = stream
        self._closed = False

    @property
    def stream(self) -> Any:
        return self._stream

    @property
    def peer(self) -> str:
        return str(getattr(self._stream, "peer", "<unknown>"))

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message: Any) -> None:
        if self._closed:
            raise ChannelClosed("channel already closed")
        try:
            self._stream.send(message)
        except OSError as exc:
            self.close()
            raise ChannelClosed(str(exc) or type(exc).__name__) from exc

    def recv(self) -> Any:
        """One framed message; None (clean shutdown) stays None, while a
        truncated or invalid frame raises ChannelClosed — both mean the
        peer's era is over, but only the latter is abnormal."""
        if self._closed:
            raise ChannelClosed("channel already closed")
        try:
            msg = self._stream.recv()
        except Exception as exc:  # ProtocolError or socket teardown
            self.close()
            raise ChannelClosed(str(exc) or type(exc).__name__) from exc
        if msg is None:
            self.close()
        return msg

    def poll(self) -> bool:
        # Framed TCP streams are consumed by a dedicated reader thread
        # (see ClusterMaster._read_loop); polling is not part of their
        # usage pattern.
        return False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stream.close()
