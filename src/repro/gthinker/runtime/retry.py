"""Retry-backoff-quarantine policy for reclaimed work.

One policy, both backends: work reclaimed from a dead or wedged worker
is re-dispatched after an exponential backoff — ``retry_backoff *
2^(attempt-1)`` seconds, so a task that keeps landing on sick workers
backs off doubling — until it has been dispatched ``max_attempts``
times, at which point the :class:`~.ledger.WorkLedger` quarantines it
as poisoned instead of letting it death-spiral the pool.

:class:`RetryPolicy` owns the *scheduling* half (a due-time heap plus
the audit ``history`` the engines expose as ``retry_schedule``); the
ledger owns the *quarantine threshold*; :func:`reclaim_lease` glues
them together and is the single place the ``task_retried`` and
``task_quarantined`` trace kinds are emitted — both distributed
backends get identical fault observability because they share this
function, not because they agree to mimic each other.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import TYPE_CHECKING, Any, Callable, Generic, TypeVar

from ..obs.spans import emit_span
from .ledger import Lease, WorkLedger

if TYPE_CHECKING:
    from ..metrics import EngineMetrics

T = TypeVar("T")

__all__ = ["RetryPolicy", "backoff_delay", "reclaim_lease"]


def backoff_delay(base: float, attempt: int) -> float:
    """Exponential backoff before re-dispatching a failed attempt.

    ``base * 2^(attempt-1)``: attempt is the 1-based dispatch count that
    just failed, so the first retry waits ``base``, the next ``2*base``…
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    return base * (2 ** (attempt - 1))


class RetryPolicy(Generic[T]):
    """Backoff scheduler for reclaimed work awaiting re-dispatch.

    A min-heap of (due-time, item); the owning loop pops due entries
    with :meth:`pop_due` and routes them back into its dispatch queue.
    Items in the heap are *live but unleased* — their attempt records in
    the ledger persist, which is what keeps the conservation invariant
    airtight while they wait out the backoff.
    """

    def __init__(self, backoff: float):
        self.backoff = backoff
        #: Audit log of every scheduled retry: (member key, failed
        #: attempt number, delay applied). Engines expose this as
        #: ``retry_schedule``.
        self.history: list[tuple[int, int, float]] = []
        self._heap: list[tuple[float, int, int, T]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def delay(self, attempt: int) -> float:
        return backoff_delay(self.backoff, attempt)

    def schedule(self, key: int, item: T, attempts: int, now: float) -> float:
        """Queue `item` for re-dispatch after its backoff; returns the delay."""
        delay = self.delay(attempts)
        heapq.heappush(self._heap, (now + delay, next(self._seq), attempts, item))
        self.history.append((key, attempts, delay))
        return delay

    def next_due(self) -> float | None:
        """Due time of the soonest retry, or None when the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now: float) -> list[tuple[T, int]]:
        """All retries whose backoff has elapsed, as (item, attempts)."""
        due: list[tuple[T, int]] = []
        while self._heap and self._heap[0][0] <= now:
            _, _, attempts, item = heapq.heappop(self._heap)
            due.append((item, attempts))
        return due


def reclaim_lease(
    ledger: WorkLedger[T],
    lease: Lease[T],
    policy: RetryPolicy[T],
    now: float,
    *,
    metrics: EngineMetrics,
    tracer: Any,
    on_quarantine: Callable[[T, int], None] | None = None,
) -> tuple[list[tuple[T, int]], list[tuple[T, int]]]:
    """Take back a failed lease: schedule retries, quarantine poison.

    The one reclaim path both distributed backends run — worker death
    and lease expiry alike land here. Splits the lease via
    :meth:`WorkLedger.reclaim`, schedules every retryable member on
    `policy`'s backoff heap, and emits the ``task_retried`` /
    ``task_quarantined`` trace events and metrics for each member.
    `on_quarantine(item, attempts)` lets the driver record the poisoned
    member for post-mortem (e.g. ``engine.quarantined``).
    """
    trace = tracer.enabled
    t0 = time.monotonic() if trace else 0.0
    retry, quarantine = ledger.reclaim(lease)
    retried_tasks = quarantined_tasks = 0
    for item, attempts in quarantine:
        size = ledger.size_of(item)
        quarantined_tasks += size
        metrics.tasks_quarantined += size
        # size= lets trace analysis reproduce the run's task-granular
        # counters exactly (a cluster work unit covers several tasks).
        tracer.emit(
            "task_quarantined", ledger.key_of(item), machine=-1,
            thread=lease.worker_id, detail=f"attempts={attempts} size={size}",
        )
        if on_quarantine is not None:
            on_quarantine(item, attempts)
    for item, attempts in retry:
        delay = policy.schedule(ledger.key_of(item), item, attempts, now)
        size = ledger.size_of(item)
        retried_tasks += size
        metrics.tasks_retried += size
        tracer.emit(
            "task_retried", ledger.key_of(item), machine=-1,
            thread=lease.worker_id,
            detail=f"attempt={attempts} delay={delay:.4g} size={size}",
        )
    if trace:
        emit_span(
            tracer, "lease_reclaim", t0, time.monotonic(),
            thread=lease.worker_id,
            detail=f"retried={retried_tasks} quarantined={quarantined_tasks}",
        )
    return retry, quarantine
