"""Worker registry: slots, incarnations, liveness, death accounting.

The coordinator's view of its pool, shared by both distributed
backends. A :class:`WorkerSlot` is one logical worker identity; the
process underneath it may die and be replaced — each replacement bumps
the slot's *generation* (incarnation number), which is what lets chaos
injection arm only a worker's first life and lets stale results from a
previous incarnation be recognized as such.

Liveness has two signals, and the registry handles both:

* **channel EOF** — the transport itself reports the peer gone
  (:class:`~.channel.ChannelClosed`); the driver calls :meth:`
  WorkerRegistry.fail`;
* **silence** — a wedged-but-connected worker stops heartbeating (the
  cluster) or outruns its lease deadline (the process pool);
  :meth:`WorkerRegistry.stale` surfaces the silent ones for the driver
  to fail.

:meth:`WorkerRegistry.fail` is the single place a worker death is
accounted: ``metrics.workers_died`` and the ``worker_died`` trace event
(machine=-1, thread=worker id) come from here for every backend, so
fault observability cannot drift between them. What happens *next* —
reclaiming the dead worker's leases (:func:`~.retry.reclaim_lease`) and
whether the slot is revived with a fresh process (the pool respawns;
the cluster does not) — is the driver's transport policy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from .channel import Channel

if TYPE_CHECKING:
    from ..metrics import EngineMetrics

__all__ = ["WorkerRegistry", "WorkerSlot", "worker_attribution"]


def worker_attribution(worker_id: int, thread: int = -1) -> tuple[int, int]:
    """(machine, thread) of a trace event that *originated on* a worker.

    One rule for every backend: worker-origin events (forwarded
    scheduler events, spans measured inside a worker) are attributed
    ``machine=worker id``, with ``thread`` the worker-local thread when
    the backend ships one and -1 otherwise. Control-plane events *about*
    a worker (``worker_died``, ``task_retried``, …) are the mirror
    image — ``machine=-1, thread=worker id`` (see
    :meth:`WorkerRegistry.fail`) — so the two origins can never be
    confused in a trace. The process pool's 3-tuple events historically
    landed as ``machine=-1, thread=worker`` (indistinguishable from
    control-plane rows); routing both backends through this helper is
    what closed that gap.
    """
    return worker_id, thread


@dataclass
class WorkerSlot:
    """One logical worker identity, across all its incarnations."""

    worker_id: int
    channel: Channel | None = None
    #: Backend handle for the current incarnation: a
    #: ``multiprocessing.Process`` (pool) or the registration ``Hello``
    #: (cluster). The registry never touches it.
    transport: Any = None
    alive: bool = True
    #: Incarnation number: 0 for the first process in this slot, +1 per
    #: respawn. Chaos injection arms generation 0 only.
    generation: int = 0
    last_seen: float = 0.0
    # -- load-report fields (heartbeats feed the steal planner) ------------
    pending_big: int = 0
    active: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


class WorkerRegistry:
    """The coordinator's pool roster and its single death-accounting path."""

    def __init__(self, *, metrics: EngineMetrics, tracer: Any):
        self.metrics = metrics
        self.tracer = tracer
        self._slots: dict[int, WorkerSlot] = {}
        self._ids = itertools.count()

    # -- membership --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[WorkerSlot]:
        return iter(self._slots.values())

    def new_id(self) -> int:
        """The next free worker id (for callers building their own slots)."""
        return next(self._ids)

    def add(self, slot: WorkerSlot) -> WorkerSlot:
        if slot.worker_id in self._slots:
            raise ValueError(f"worker slot {slot.worker_id} already registered")
        self._slots[slot.worker_id] = slot
        return slot

    def create(
        self,
        *,
        channel: Channel | None = None,
        transport: Any = None,
        now: float = 0.0,
    ) -> WorkerSlot:
        """Register a newly-connected worker under the next free id."""
        return self.add(
            WorkerSlot(
                worker_id=next(self._ids),
                channel=channel,
                transport=transport,
                last_seen=now,
            )
        )

    def get(self, worker_id: int) -> WorkerSlot | None:
        return self._slots.get(worker_id)

    def slots(self) -> list[WorkerSlot]:
        return list(self._slots.values())

    def alive(self) -> list[WorkerSlot]:
        return [s for s in self._slots.values() if s.alive]

    def channels(self) -> list[Channel]:
        """Every open channel, regardless of slot liveness.

        A just-failed slot's channel is closed (excluded here), but a
        dead-but-undetected worker's channel must stay readable — its
        final messages are done work the driver still folds in.
        """
        return [
            s.channel
            for s in self._slots.values()
            if s.channel is not None and not s.channel.closed
        ]

    # -- liveness ----------------------------------------------------------

    def heartbeat(self, slot: WorkerSlot, now: float) -> None:
        slot.last_seen = now

    def stale(self, now: float, timeout: float) -> list[tuple[WorkerSlot, str]]:
        """Live slots silent past `timeout`, with a human-readable reason."""
        return [
            (slot, f"no heartbeat for {now - slot.last_seen:.1f}s")
            for slot in self.alive()
            if now - slot.last_seen > timeout
        ]

    def fail(self, slot: WorkerSlot, reason: str) -> bool:
        """Account one worker death; False if the slot was already dead.

        The one emission point for ``workers_died`` and the
        ``worker_died`` trace kind on every backend. Closes the slot's
        channel; lease reclaim and any respawn are the caller's move.
        """
        if not slot.alive:
            return False
        slot.alive = False
        self.metrics.workers_died += 1
        self.tracer.emit(
            "worker_died", -1, machine=-1, thread=slot.worker_id, detail=reason
        )
        if slot.channel is not None:
            slot.channel.close()
        return True

    def revive(
        self,
        slot: WorkerSlot,
        *,
        channel: Channel | None = None,
        transport: Any = None,
    ) -> WorkerSlot:
        """Bring a slot back with a fresh incarnation (generation + 1)."""
        slot.generation += 1
        slot.alive = True
        if channel is not None:
            slot.channel = channel
        if transport is not None:
            slot.transport = transport
        return slot
