"""The fault-tolerant coordination control plane.

The paper's system contribution is one coordination design — task
leasing, big-task stealing, and at-least-once result folding — and this
package is its single implementation, shared by every distributed
backend. The process pool (:mod:`repro.gthinker.engine_mp`) and the
cluster master (:mod:`repro.gthinker.cluster.master`) are thin drivers:
they own transport wiring (pipes and process handles; TCP sockets and
launchers) and dispatch policy, while everything fault-semantic lives
here:

* :class:`~.ledger.WorkLedger` — grant/complete/expired/reclaim lease
  bookkeeping with per-worker windows, per-member attempt counts, and
  conservation invariants (:class:`~.ledger.TaskLeaseTable` is its
  task-keyed spelling);
* :class:`~.registry.WorkerRegistry` — worker slots, incarnation
  numbers, heartbeat/EOF liveness, and the single ``worker_died``
  accounting path;
* :class:`~.retry.RetryPolicy` + :func:`~.retry.reclaim_lease` — the
  ``retry_backoff * 2^(attempt-1)`` backoff schedule and the one
  reclaim path that emits ``task_retried`` / ``task_quarantined``;
* :class:`~.folding.ResultFolder` — at-least-once folding: frozenset
  candidate dedup, stale-lease drops, worker trace-event forwarding;
* :class:`~.channel.Channel` — the transport protocol both backends
  implement (:class:`~.channel.PipeChannel`,
  :class:`~.channel.StreamChannel`), with every peer-loss mode
  surfacing as one :class:`~.channel.ChannelClosed` signal.

Both backends get identical fault observability *by construction*: the
``worker_died``, ``task_retried``, and ``task_quarantined`` trace kinds
and their metrics counters are emitted only from this package.
"""

from .channel import Channel, ChannelClosed, PipeChannel, StreamChannel
from .folding import ResultFolder
from .ledger import Lease, TaskLeaseTable, WorkLedger
from .registry import WorkerRegistry, WorkerSlot, worker_attribution
from .retry import RetryPolicy, backoff_delay, reclaim_lease

__all__ = [
    "Channel",
    "ChannelClosed",
    "Lease",
    "PipeChannel",
    "ResultFolder",
    "RetryPolicy",
    "StreamChannel",
    "TaskLeaseTable",
    "WorkLedger",
    "WorkerRegistry",
    "WorkerSlot",
    "backoff_delay",
    "reclaim_lease",
    "worker_attribution",
]
