"""The task abstraction ⟨S, ext(S)⟩ plus its subgraph (paper Section 5).

A G-thinker task carries the state of one unit of mining work. Tasks
spawned from a vertex walk three iterations (paper Algorithms 4–7):

1. pull the root's larger-ID neighbors, start building the subgraph;
2. pull the 2-hop frontier, finish the k-core ego subgraph;
3. mine — possibly decomposing into iteration-3 subtasks that carry a
   materialized subgraph of their own.

Tasks must survive disk spilling and (in the real system) network
shipping for work stealing, so they are plain picklable records.

Iteration-3 mining tasks carry their subgraph as a compact bitmask
:class:`~repro.core.domain.TaskDomain` by default: two tuples of ints
(the local→global ID table once per task, plus one adjacency mask per
vertex), which pickles far smaller than a ``Graph`` — the blobs shipped
by the process-pool batches and the cluster wire protocol shrink
accordingly. The ``graph`` field remains for the classic dict/set
mining path and for apps that need mutable adjacency.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from ..core.domain import TaskDomain
from ..graph.adjacency import Graph


@dataclass
class Task:
    """One unit of mining work flowing through the engine."""

    task_id: int
    root: int
    iteration: int = 1
    s: list[int] = field(default_factory=list)
    ext: list[int] = field(default_factory=list)
    #: Materialized subgraph for iteration-3 tasks; during iterations
    #: 1–2 `building` holds the half-built adjacency (may reference
    #: destination-only vertices — see kcore.peel_adjacency).
    graph: Graph | None = None
    #: Compact bitmask subgraph for iteration-3 tasks on the bitset
    #: mining path (exactly one of `graph`/`domain` is set post-build).
    domain: TaskDomain | None = None
    building: dict[int, set[int]] | None = None
    one_hop: set[int] | None = None  # t.N: root + its pulled neighbors
    pulls: list[int] = field(default_factory=list)  # pending vertex requests
    #: Decomposition depth: 0 for spawned roots, +1 per split generation.
    generation: int = 0

    def is_big(self, tau_split: int) -> bool:
        """Queue routing rule: |ext(S)| > τ_split → global big-task queue.

        Pre-mining tasks (iterations 1–2) are sized by the larger of
        their pending pull batch and their half-built subgraph — a task
        about to pull a huge 2-hop frontier is big work in flight and
        must be visible to every thread of the machine.
        """
        if self.iteration < 3:
            scope = max(len(self.pulls), len(self.building or ()))
            return scope > tau_split
        return len(self.ext) > tau_split

    def encode(self) -> bytes:
        """Serialize for disk spill / steal shipping."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def decode(blob: bytes) -> "Task":
        task = pickle.loads(blob)
        if not isinstance(task, Task):
            raise TypeError(f"spill blob decoded to {type(task).__name__}, not Task")
        return task

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.domain is not None:
            size = self.domain.num_vertices
        else:
            size = self.graph.num_vertices if self.graph else 0
        return (
            f"Task(id={self.task_id}, root={self.root}, it={self.iteration}, "
            f"|S|={len(self.s)}, |ext|={len(self.ext)}, |g|={size})"
        )


@dataclass
class ComputeOutcome:
    """Result of one compute() call on a task."""

    finished: bool
    new_tasks: list[Task] = field(default_factory=list)
    #: Abstract work performed by this call — the virtual-clock cost
    #: model of the simulated cluster (deterministic, machine-independent).
    cost_ops: int = 0

    @property
    def continues(self) -> bool:
        return not self.finished
