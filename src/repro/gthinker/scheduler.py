"""Backend-agnostic scheduler core (the paper's reforged policy, §5).

One implementation of the reforged G-thinker scheduling rules, shared
by every executor — the serial fast path and the threaded driver in
:mod:`repro.gthinker.engine`, and the virtual-time driver in
:mod:`repro.gthinker.simulation`:

1. *routing*  — a new task goes to the machine's global big-task queue
   (Q_global, spilling to L_big) iff it is big, else to the picking
   thread's local queue (Q_local, spilling to L_small);
2. *pick order* — B_global → B_local → Q_global (try-lock, refilled
   from L_big) → Q_local;
3. *refill order* — a low Q_local refills from L_small first, then
   drains B_local, then spawns new tasks from the vertex table;
4. *spawn batch* — at most one batch of C tasks per refill, stopping
   early the moment a spawned task is big (the guard against flooding
   Q_global);
5. *stealing* — a master plans big-task moves from per-machine pending
   counts and applies them between the machines' global queues.

The core is policy only: it owns no threads and no clock. Executors
drive it (`pick` → `run_quantum` → route children / re-buffer the
suspended task) and observe queue transitions through three optional
hooks (`task_queued`, `task_buffered`, `task_picked`) so each backend
can keep its own liveness accounting — an active-task counter for the
real engine, an outstanding-work counter for the simulator — without
duplicating any scheduling decision.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..graph.access import GraphAccess
from ..graph.adjacency import Graph
from .app_protocol import ComputeContext, GThinkerApp, ensure_app
from .config import EngineConfig
from .metrics import EngineMetrics, TaskRecord
from .obs.spans import emit_span
from .spill import SpillableQueue, SpillFileList
from .stealing import plan_steals
from .task import Task
from .tracing import NullTracer, Tracer
from .vertex_store import DataService, LocalVertexTable, RemoteVertexCache


class ThreadSlot:
    """Per-mining-thread queue state: its local queue and ready buffer."""

    def __init__(self, config: EngineConfig, lsmall: SpillFileList, slot_id: int = 0):
        #: Index of this slot on its machine (span/timing attribution).
        self.slot_id = slot_id
        self.qlocal = SpillableQueue(config.queue_capacity, config.batch_size, lsmall)
        self.blocal: deque[Task] = deque()


class MachineState:
    """One machine: vertex table slice, caches, queues, spawn cursor.

    The same state object backs the real engine (where its locks are
    contended) and the simulated cluster (single-threaded; the locks
    are uncontended but harmless), so the simulator exercises the
    identical queue/spill structures as the threaded runtime.
    """

    def __init__(
        self,
        machine_id: int,
        tables: list[LocalVertexTable],
        config: EngineConfig,
        *,
        data: GraphAccess | None = None,
    ):
        self.machine_id = machine_id
        self.config = config
        self.table = tables[machine_id]
        if data is not None:
            # Executor-provided GraphAccess (the cluster worker passes a
            # RemoteGraphAccess over its shipped partition); reuse its
            # cache so the metrics fold sees one set of counters.
            self.data = data
            self.cache = getattr(
                data, "cache", RemoteVertexCache(config.cache_capacity)
            )
        else:
            self.cache = RemoteVertexCache(config.cache_capacity)
            self.data = DataService(
                machine_id, tables, self.cache,
                partitioner=getattr(tables[machine_id], "partitioner", None),
            )
        self.lsmall = SpillFileList(config.spill_dir, f"m{machine_id}-small")
        self.lbig = SpillFileList(config.spill_dir, f"m{machine_id}-big")
        self.qglobal = SpillableQueue(config.queue_capacity, config.batch_size, self.lbig)
        self.bglobal: deque[Task] = deque()
        self.bglobal_lock = threading.Lock()
        self.threads = [
            ThreadSlot(config, self.lsmall, slot_id=i)
            for i in range(config.threads_per_machine)
        ]
        self.spawn_order = self.table.vertices_sorted()
        self.spawn_pos = 0
        self.spawn_lock = threading.Lock()

    def spawn_exhausted(self) -> bool:
        with self.spawn_lock:
            return self.spawn_pos >= len(self.spawn_order)

    def next_spawn_vertices(self, count: int) -> list[int]:
        with self.spawn_lock:
            chunk = self.spawn_order[self.spawn_pos : self.spawn_pos + count]
            self.spawn_pos += len(chunk)
            return chunk

    def pop_bglobal(self) -> Task | None:
        with self.bglobal_lock:
            return self.bglobal.popleft() if self.bglobal else None

    def push_bglobal(self, task: Task) -> None:
        with self.bglobal_lock:
            self.bglobal.append(task)

    def pending_big(self) -> int:
        with self.bglobal_lock:
            ready = len(self.bglobal)
        return ready + self.qglobal.pending_estimate()

    def cleanup(self) -> None:
        self.lsmall.cleanup()
        self.lbig.cleanup()


def build_machines(graph: Graph, config: EngineConfig) -> list[MachineState]:
    """Partition `graph` per `config` and build each machine's state."""
    from .partition import make_partitioner

    partitioner = (
        None
        if config.partition == "hash"
        else make_partitioner(config.partition, graph, config.num_machines)
    )
    tables = LocalVertexTable.partition(
        graph, config.num_machines, partitioner=partitioner
    )
    return [MachineState(m, tables, config) for m in range(config.num_machines)]


def collect_machine_metrics(metrics: EngineMetrics, machines: list[MachineState]) -> None:
    """Fold per-machine data-service, cache, and spill counters into `metrics`."""
    for machine in machines:
        # DataService/RemoteGraphAccess count wire pulls; other
        # GraphAccess implementations have nothing remote to count.
        metrics.remote_messages += getattr(machine.data, "remote_messages", 0)
        metrics.remote_vertex_hits += machine.cache.hits
        metrics.remote_vertex_misses += machine.cache.misses
        metrics.remote_vertex_evictions += machine.cache.evictions
        for spill in (machine.lsmall, machine.lbig):
            metrics.spill_batches += spill.batches_spilled
            metrics.spill_bytes += spill.bytes_written
            metrics.spill_bytes_peak = max(metrics.spill_bytes_peak, spill.bytes_peak)


@dataclass
class QuantumResult:
    """Effects of one scheduling quantum of a task.

    A quantum resolves the task's pending pulls, then chains compute
    iterations until the task either finishes or issues new pulls (the
    suspend-for-data point where it re-enters the ready buffers with
    its big/small status re-evaluated). The executor applies the
    effects: route `children`, re-buffer `resumed` — in that order, so
    a parent's children are visible before its completion is counted.
    """

    finished: bool
    cost: float = 0.0
    children: list[Task] = field(default_factory=list)
    #: The task itself iff it suspended awaiting data (None if finished).
    resumed: Task | None = None


class SchedulerCore:
    """The reforged scheduling policy over a set of machine states."""

    def __init__(
        self,
        app: GThinkerApp,
        config: EngineConfig,
        machines: list[MachineState],
        tracer: Tracer | NullTracer | None = None,
        *,
        metrics: EngineMetrics | None = None,
        metrics_lock: threading.Lock | None = None,
        task_queued: Callable[[Task], None] | None = None,
        task_buffered: Callable[[Task], None] | None = None,
        task_picked: Callable[[Task], None] | None = None,
    ):
        self.app = ensure_app(app)
        self.config = config
        self.machines = machines
        # `is not None`, not truthiness: an empty Tracer is falsy (len 0).
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self._metrics_lock = metrics_lock or threading.Lock()
        self._task_queued = task_queued
        self._task_buffered = task_buffered
        self._task_picked = task_picked
        self._task_ids = itertools.count()
        self._task_id_lock = threading.Lock()

    # -- shared counters ---------------------------------------------------

    def next_task_id(self) -> int:
        with self._task_id_lock:
            return next(self._task_ids)

    def all_spawned(self) -> bool:
        return all(m.spawn_exhausted() for m in self.machines)

    # -- task routing ------------------------------------------------------

    def route(self, task: Task, machine: MachineState, slot: ThreadSlot) -> None:
        """Queue a task: big → machine's global queue, small → the thread's."""
        if self._task_queued is not None:
            self._task_queued(task)
        self._enqueue(task, machine, slot)

    def requeue(self, task: Task, machine: MachineState, slot: ThreadSlot) -> None:
        """Re-route a reclaimed task for another dispatch attempt.

        The retry twin of :meth:`route`: same big/small policy, but the
        task was already counted when first queued, so the `task_queued`
        liveness hook must not fire again — a retry is the same unit of
        work re-entering the queues, not new work. Retry accounting
        (``tasks_retried``, the ``task_retried`` trace event) happened
        at reclaim time in :func:`repro.gthinker.runtime.reclaim_lease`;
        this is pure re-enqueue.
        """
        self._enqueue(task, machine, slot)

    def _enqueue(self, task: Task, machine: MachineState, slot: ThreadSlot) -> None:
        if self.config.use_global_queue and task.is_big(self.config.tau_split):
            machine.qglobal.push(task)
            self.tracer.emit("route_global", task.task_id, machine.machine_id)
        else:
            slot.qlocal.push(task)
            self.tracer.emit("route_local", task.task_id, machine.machine_id)

    def buffer_ready(self, task: Task, machine: MachineState, slot: ThreadSlot) -> None:
        """Re-buffer a data-ready task, preserving big-task priority."""
        if self._task_buffered is not None:
            self._task_buffered(task)
        if self.config.use_global_queue and task.is_big(self.config.tau_split):
            machine.push_bglobal(task)
            self.tracer.emit("ready_global", task.task_id, machine.machine_id)
        else:
            slot.blocal.append(task)
            self.tracer.emit("ready_local", task.task_id, machine.machine_id)

    # -- spawning ----------------------------------------------------------

    def spawn_batch(self, machine: MachineState, slot: ThreadSlot) -> int:
        """Spawn up to one batch of tasks; stop early once one is big.

        Vertices are taken from the cursor one at a time so the early
        stop (the paper's guard against flooding the global queue with
        big tasks) never skips a vertex. Returns the number spawned.
        """
        trace = self.tracer.enabled
        t0 = time.monotonic() if trace else 0.0
        spawned = 0
        while spawned < self.config.batch_size:
            vertices = machine.next_spawn_vertices(1)
            if not vertices:
                break
            v = vertices[0]
            adjacency = machine.table.get(v)
            assert adjacency is not None
            task = self.app.spawn(v, adjacency, self.next_task_id())
            if task is None:
                continue
            with self._metrics_lock:
                self.metrics.tasks_spawned += 1
            self.tracer.emit("spawn", task.task_id, machine.machine_id, detail=f"root={v}")
            self.route(task, machine, slot)
            spawned += 1
            if self.config.use_global_queue and task.is_big(self.config.tau_split):
                break
        if trace and spawned:
            emit_span(
                self.tracer, "root_spawn", t0, time.monotonic(),
                machine=machine.machine_id, thread=slot.slot_id,
                detail=f"spawned={spawned}",
            )
        return spawned

    def refill_qlocal(self, machine: MachineState, slot: ThreadSlot) -> None:
        """Refill priority: L_small, then B_local, then spawn new tasks."""
        trace = self.tracer.enabled
        t0 = time.monotonic() if trace else 0.0
        loaded = slot.qlocal.refill_from_spill()
        if loaded:
            if trace:
                emit_span(
                    self.tracer, "spill_refill", t0, time.monotonic(),
                    machine=machine.machine_id, thread=slot.slot_id,
                    detail=f"queue=qlocal loaded={loaded}",
                )
            return
        if slot.blocal:
            while slot.blocal and len(slot.qlocal) < self.config.batch_size:
                slot.qlocal.push(slot.blocal.popleft())
            return
        self.spawn_batch(machine, slot)

    # -- picking -----------------------------------------------------------

    def pick(self, machine: MachineState, slot: ThreadSlot) -> Task | None:
        """One pick under the reforged priority; None iff no work is visible.

        Phase 1 (push): data-ready tasks, big ones first. Phase 2
        (pop): the machine's global queue (try-lock; refill a batch
        from L_big when low), then the thread's local queue (refilled
        per `refill_qlocal`). If the local refill spawned only big
        tasks the global queue is re-checked, so a lone thread can
        never strand its own spawn.
        """
        task = machine.pop_bglobal() if self.config.use_global_queue else None
        if task is None and slot.blocal:
            task = slot.blocal.popleft()
        if task is None:
            task = self._pop_global(machine, slot)
        if task is None:
            if slot.qlocal.needs_refill():
                self.refill_qlocal(machine, slot)
            task = slot.qlocal.pop()
            if task is not None:
                self.tracer.emit("pop_local", task.task_id, machine.machine_id)
            else:
                task = self._pop_global(machine, slot)
        if task is not None and self._task_picked is not None:
            self._task_picked(task)
        return task

    def _pop_global(
        self, machine: MachineState, slot: ThreadSlot | None = None
    ) -> Task | None:
        if not self.config.use_global_queue:
            return None
        if machine.qglobal.needs_refill():
            trace = self.tracer.enabled
            t0 = time.monotonic() if trace else 0.0
            loaded = machine.qglobal.refill_from_spill()
            if trace and loaded:
                emit_span(
                    self.tracer, "spill_refill", t0, time.monotonic(),
                    machine=machine.machine_id,
                    thread=slot.slot_id if slot is not None else -1,
                    detail=f"queue=qglobal loaded={loaded}",
                )
        acquired, task = machine.qglobal.try_pop()
        if acquired and task is not None:
            self.tracer.emit("pop_global", task.task_id, machine.machine_id)
            return task
        return None

    # -- execution ---------------------------------------------------------

    def run_quantum(
        self,
        task: Task,
        machine: MachineState,
        record: Callable[[TaskRecord], None] | None = None,
        slot: ThreadSlot | None = None,
    ) -> QuantumResult:
        """Run compute iterations until the task finishes or suspends.

        Pull resolution is synchronous through the machine's data
        service; the quantum's abstract cost (compute ops plus
        `sim_message_cost` per remote message) feeds the simulator's
        virtual clock and is computed identically — for free — on the
        real engine.

        With tracing on, the quantum is wrapped in a ``batch_mine``
        span (attributed to `slot` when the executor passes one), so a
        trace reconstructs per-task mining time without the metrics
        side channel.
        """
        trace = self.tracer.enabled
        t0 = time.monotonic() if trace else 0.0
        result = self._run_quantum(task, machine, record)
        if trace:
            emit_span(
                self.tracer, "batch_mine", t0, time.monotonic(),
                task_id=task.task_id, machine=machine.machine_id,
                thread=slot.slot_id if slot is not None else -1,
                detail=f"finished={int(result.finished)} "
                f"children={len(result.children)}",
            )
        return result

    def _run_quantum(
        self,
        task: Task,
        machine: MachineState,
        record: Callable[[TaskRecord], None] | None = None,
    ) -> QuantumResult:
        ctx = ComputeContext(config=self.config, next_task_id=self.next_task_id, record=record)
        data = machine.data
        cost = 0.0
        children: list[Task] = []
        while True:
            if task.pulls:
                before = data.remote_messages
                frontier = data.resolve(task.pulls)
                cost += (data.remote_messages - before) * self.config.sim_message_cost
                task.pulls = []
            else:
                frontier = {}
            self.tracer.emit("execute", task.task_id, machine.machine_id)
            outcome = self.app.compute(task, frontier, ctx)
            cost += outcome.cost_ops
            if outcome.new_tasks:
                self.tracer.emit(
                    "decompose", task.task_id, machine.machine_id,
                    detail=f"children={len(outcome.new_tasks)}",
                )
                children.extend(outcome.new_tasks)
            if outcome.finished:
                self.tracer.emit("finish", task.task_id, machine.machine_id)
                return QuantumResult(finished=True, cost=cost, children=children)
            if task.pulls:
                return QuantumResult(
                    finished=False, cost=cost, children=children, resumed=task
                )
            # No pulls pending (e.g. iteration 2 → 3): continue inline,
            # mirroring G-thinker scheduling the next iteration right away.

    # -- stealing ----------------------------------------------------------

    def apply_steals(self) -> int:
        """Plan and apply one stealing period; returns tasks moved."""
        trace = self.tracer.enabled
        t_start = time.monotonic() if trace else 0.0
        counts = [m.pending_big() for m in self.machines]
        moves = plan_steals(counts, self.config.batch_size)
        moved = 0
        for move in moves:
            self.tracer.emit(
                "steal_planned", -1, move.src,
                detail=f"dst=m{move.dst} count={move.count}",
            )
            with self._metrics_lock:
                self.metrics.steals_planned += 1
            batch = self.machines[move.src].qglobal.pop_batch(move.count)
            if not batch:
                continue
            self.machines[move.dst].qglobal.push_batch(batch)
            for stolen in batch:
                self.tracer.emit(
                    "steal_sent", stolen.task_id, move.src,
                    detail=f"dst=m{move.dst}",
                )
                self.tracer.emit(
                    "steal_received", stolen.task_id, move.dst,
                    detail=f"from=m{move.src}",
                )
                self.tracer.emit(
                    "steal", stolen.task_id, move.dst,
                    detail=f"from=m{move.src}",
                )
            with self._metrics_lock:
                self.metrics.steals += 1
                self.metrics.stolen_tasks += len(batch)
                self.metrics.steals_sent += len(batch)
                self.metrics.steals_received += len(batch)
            moved += len(batch)
        if trace and moved:
            emit_span(
                self.tracer, "steal_transfer", t_start, time.monotonic(),
                detail=f"moves={len(moves)} moved={moved}",
            )
        return moved


# -- fault tolerance: the task-lease table ---------------------------------
#
# The lease/retry/quarantine bookkeeping lives in the shared
# coordination control plane now; these names are re-exported because
# the task-batch ledger grew up here and the process backend's public
# surface (``engine.leases``) is a TaskLeaseTable.
from .runtime.ledger import Lease, TaskLeaseTable, WorkLedger  # noqa: E402,F401
