"""Synthetic analogs of the paper's evaluation datasets."""

from .cache import get_or_build, is_cached, load_dataset, save_dataset
from .registry import DatasetSpec, build_dataset, dataset_names, get_dataset

__all__ = [
    "DatasetSpec",
    "build_dataset",
    "dataset_names",
    "get_dataset",
    "get_or_build",
    "is_cached",
    "load_dataset",
    "save_dataset",
]
