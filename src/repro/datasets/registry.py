"""Synthetic analogs of the paper's eight evaluation datasets (Table 1).

The originals (SNAP / KONECT / GEO downloads) are unavailable offline,
so each entry pairs the *paper-side* facts — |V|, |E|, the (γ, τ_size,
τ_split, τ_time) run parameters, reported time and result count — with
an *analog recipe*: a seeded generator producing a graph with the same
qualitative anatomy at a Python-tractable scale. What the recipes
preserve, because the paper's evaluation depends on it:

* heavy-tailed degree background (preferential attachment / ER for the
  gene-expression graphs);
* a handful of planted dense modules that pass the γ threshold — the
  mined quasi-cliques, and the source of the paper's orders-of-magnitude
  per-task time variance (Figures 1–3);
* overlap between modules for the hard datasets (Hyves, YouTube), which
  is what makes their dense cores "so expensive to mine that higher
  concurrency always helps" (paper Section 7).

Analogs run at roughly 1/100–1/500 of paper |V|; EXPERIMENTS.md keeps
the scale mapping explicit when comparing numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..graph.generators import PlantedGraph, coexpression_like, planted_quasicliques


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 1 row plus the recipe for its synthetic analog."""

    name: str
    # -- facts from the paper (Tables 1 and 2) -------------------------
    paper_vertices: int
    paper_edges: int
    paper_gamma: float
    paper_min_size: int
    paper_tau_split: int
    paper_tau_time: float  # seconds in the paper
    paper_time_seconds: float
    paper_result_count: int
    # -- analog recipe ---------------------------------------------------
    kind: str  # 'coexpression' or 'planted'
    analog_vertices: int
    analog_avg_degree: float
    analog_plants: int
    analog_plant_size: int
    analog_overlap: int
    analog_background: str
    # -- mining parameters for the analog ---------------------------------
    gamma: float
    min_size: int
    tau_split: int
    tau_time_ops: float  # ops-budget analog of the paper's τ_time
    seed: int
    #: Extra *giant* plants (sizes) on top of the uniform ones — the
    #: "vertex 363 of YouTube" anatomy: a few cores whose mining tasks
    #: dwarf everything else (paper Figures 1-3).
    analog_giant_plants: tuple[int, ...] = ()

    def build(self) -> PlantedGraph:
        """Materialize the analog graph (deterministic per spec)."""
        if self.kind == "coexpression":
            return coexpression_like(
                n_genes=self.analog_vertices,
                n_modules=self.analog_plants,
                module_size=self.analog_plant_size,
                gamma=max(self.gamma, 0.8),
                noise_avg_degree=self.analog_avg_degree,
                seed=self.seed,
            )
        if self.kind == "planted":
            sizes = [self.analog_plant_size] * self.analog_plants
            sizes += list(self.analog_giant_plants)
            return planted_quasicliques(
                n=self.analog_vertices,
                avg_degree=self.analog_avg_degree,
                num_plants=self.analog_plants,
                plant_size=self.analog_plant_size,
                gamma=max(self.gamma + 0.02, 0.6),
                seed=self.seed,
                background=self.analog_background,
                overlap=self.analog_overlap,
                plant_sizes=sizes,
            )
        raise ValueError(f"unknown dataset kind {self.kind!r}")


_SPECS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _SPECS[spec.name] = spec


_register(DatasetSpec(
    name="cx_gse1730",
    paper_vertices=998, paper_edges=5_096,
    paper_gamma=0.9, paper_min_size=30, paper_tau_split=200, paper_tau_time=20,
    paper_time_seconds=19.82, paper_result_count=1_072,
    kind="coexpression", analog_vertices=500, analog_avg_degree=6.0,
    analog_plants=8, analog_plant_size=12, analog_overlap=0, analog_background="er",
    gamma=0.9, min_size=10, tau_split=200, tau_time_ops=100_000, seed=1730,
))

_register(DatasetSpec(
    name="cx_gse10158",
    paper_vertices=1_621, paper_edges=7_079,
    paper_gamma=0.8, paper_min_size=28, paper_tau_split=500, paper_tau_time=20,
    paper_time_seconds=16.10, paper_result_count=396,
    kind="coexpression", analog_vertices=800, analog_avg_degree=5.0,
    analog_plants=6, analog_plant_size=12, analog_overlap=0, analog_background="er",
    gamma=0.8, min_size=10, tau_split=500, tau_time_ops=100_000, seed=10158,
))

_register(DatasetSpec(
    name="ca_grqc",
    paper_vertices=5_242, paper_edges=14_496,
    paper_gamma=0.8, paper_min_size=10, paper_tau_split=1_000, paper_tau_time=10,
    paper_time_seconds=9.68, paper_result_count=7_398,
    kind="planted", analog_vertices=2_000, analog_avg_degree=4.0,
    analog_plants=12, analog_plant_size=9, analog_overlap=0, analog_background="plc",
    gamma=0.8, min_size=8, tau_split=1_000, tau_time_ops=50_000, seed=42,
))

_register(DatasetSpec(
    name="enron",
    paper_vertices=36_692, paper_edges=183_831,
    paper_gamma=0.9, paper_min_size=23, paper_tau_split=100, paper_tau_time=0.01,
    paper_time_seconds=154.02, paper_result_count=449,
    kind="planted", analog_vertices=3_000, analog_avg_degree=8.0,
    analog_plants=20, analog_plant_size=15, analog_overlap=2, analog_background="plc",
    analog_giant_plants=(17,) * 10,
    gamma=0.9, min_size=11, tau_split=20, tau_time_ops=2_000, seed=777,
))

_register(DatasetSpec(
    name="dblp",
    paper_vertices=317_080, paper_edges=1_049_866,
    paper_gamma=0.8, paper_min_size=70, paper_tau_split=100, paper_tau_time=10,
    paper_time_seconds=11.87, paper_result_count=118,
    kind="planted", analog_vertices=4_000, analog_avg_degree=6.0,
    analog_plants=5, analog_plant_size=14, analog_overlap=0, analog_background="plc",
    gamma=0.8, min_size=12, tau_split=100, tau_time_ops=50_000, seed=317,
))

_register(DatasetSpec(
    name="amazon",
    paper_vertices=334_863, paper_edges=925_872,
    paper_gamma=0.5, paper_min_size=12, paper_tau_split=500, paper_tau_time=10,
    paper_time_seconds=11.52, paper_result_count=9,
    kind="planted", analog_vertices=4_000, analog_avg_degree=3.0,
    analog_plants=3, analog_plant_size=12, analog_overlap=0, analog_background="ba",
    gamma=0.6, min_size=10, tau_split=500, tau_time_ops=50_000, seed=334,
))

_register(DatasetSpec(
    name="hyves",
    paper_vertices=1_402_673, paper_edges=2_777_419,
    paper_gamma=0.9, paper_min_size=22, paper_tau_split=50, paper_tau_time=0.01,
    paper_time_seconds=130.16, paper_result_count=3_850,
    kind="planted", analog_vertices=5_000, analog_avg_degree=4.0,
    analog_plants=12, analog_plant_size=14, analog_overlap=6, analog_background="ba",
    analog_giant_plants=(24, 26),
    gamma=0.9, min_size=12, tau_split=30, tau_time_ops=5_000, seed=1402,
))

_register(DatasetSpec(
    name="youtube",
    paper_vertices=1_134_890, paper_edges=2_987_624,
    paper_gamma=0.9, paper_min_size=18, paper_tau_split=100, paper_tau_time=0.01,
    paper_time_seconds=11_226.48, paper_result_count=1_320,
    kind="planted", analog_vertices=6_000, analog_avg_degree=5.0,
    analog_plants=12, analog_plant_size=14, analog_overlap=8, analog_background="ba",
    analog_giant_plants=(26, 28, 30),
    gamma=0.9, min_size=13, tau_split=50, tau_time_ops=5_000, seed=777,
))


def dataset_names() -> list[str]:
    """All registered dataset names, in paper (Table 1) order."""
    return list(_SPECS)


def get_dataset(name: str) -> DatasetSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(_SPECS)}"
        ) from None


@lru_cache(maxsize=None)
def build_dataset(name: str) -> PlantedGraph:
    """Build (and memoize) the analog graph for `name`."""
    return get_dataset(name).build()
