"""On-disk caching of dataset analogs (the SNAP-download workflow, offline).

The registry's generators are deterministic and fast, but a file-based
workflow matters for interop: external tools want the analog as a plain
edge list, and repeated CLI runs shouldn't regenerate. The cache lays a
dataset out the way its SNAP original would arrive:

    <cache_dir>/<name>/edges.txt     # SNAP-style edge list
    <cache_dir>/<name>/planted.txt   # ground-truth planted sets
    <cache_dir>/<name>/meta.txt      # spec fingerprint for invalidation

A spec change (different seed, sizes, …) invalidates the cached copy
automatically via the fingerprint.
"""

from __future__ import annotations

import os
from dataclasses import asdict

from ..graph.generators import PlantedGraph
from ..graph.io import read_edge_list, write_edge_list
from .registry import DatasetSpec, get_dataset


def _fingerprint(spec: DatasetSpec) -> str:
    items = sorted(asdict(spec).items())
    return ";".join(f"{k}={v}" for k, v in items)


def dataset_dir(cache_dir: str, name: str) -> str:
    return os.path.join(cache_dir, name)


def is_cached(cache_dir: str, name: str) -> bool:
    """True iff a valid (fingerprint-matching) cached copy exists."""
    spec = get_dataset(name)
    d = dataset_dir(cache_dir, name)
    meta = os.path.join(d, "meta.txt")
    if not os.path.exists(meta):
        return False
    with open(meta) as f:
        return f.read().strip() == _fingerprint(spec)


def save_dataset(cache_dir: str, name: str, pg: PlantedGraph) -> str:
    """Write one analog to the cache; returns its directory."""
    spec = get_dataset(name)
    d = dataset_dir(cache_dir, name)
    os.makedirs(d, exist_ok=True)
    write_edge_list(
        pg.graph, os.path.join(d, "edges.txt"),
        header=f"synthetic analog of {name} (paper |V|={spec.paper_vertices:,})",
    )
    with open(os.path.join(d, "planted.txt"), "w") as f:
        for plant in pg.planted:
            f.write(" ".join(str(v) for v in sorted(plant)) + "\n")
    with open(os.path.join(d, "meta.txt"), "w") as f:
        f.write(_fingerprint(spec) + "\n")
    return d


def load_dataset(cache_dir: str, name: str) -> PlantedGraph:
    """Read a cached analog back (graph + planted ground truth)."""
    d = dataset_dir(cache_dir, name)
    graph = read_edge_list(os.path.join(d, "edges.txt"))
    planted: list[set[int]] = []
    with open(os.path.join(d, "planted.txt")) as f:
        for line in f:
            line = line.strip()
            if line:
                planted.append({int(tok) for tok in line.split()})
    return PlantedGraph(graph=graph, planted=planted)


def get_or_build(cache_dir: str, name: str) -> PlantedGraph:
    """Load from cache when valid, else build, save, and return."""
    if is_cached(cache_dir, name):
        return load_dataset(cache_dir, name)
    pg = get_dataset(name).build()
    save_dataset(cache_dir, name, pg)
    return pg
