"""The mining service: a durable job daemon and result-query API.

The paper treats mining as a batch job; the service turns it into a
workload you can *operate*: submit jobs over HTTP, watch their
progress, kill the daemon mid-run and restart it without losing work,
and serve read-heavy community queries (top-k communities of a vertex,
à la "Enumerating Top-k Quasi-Cliques") from mined results without
re-mining. Stdlib only — ``http.server.ThreadingHTTPServer`` + JSON.

Modules
-------
``runner``   chunked resumable execution of one job over any backend
             (:func:`repro.gthinker.engine.mine_parallel` per chunk,
             ResumableMiner-style checkpoints between chunks);
``jobs``     :class:`JobManager` — the durable job registry: states
             ``pending → running → completed/failed/cancelled``,
             per-job working directories, FIFO admission under a
             bounded running-job limit, crash recovery on restart;
``store``    :class:`ResultStore` — vertex → containing-communities
             index over completed runs with an LRU query cache;
``server``   the HTTP API (``POST /jobs``, ``GET /jobs/{id}``,
             ``DELETE /jobs/{id}``, ``GET /results/{id}/communities``,
             ``/healthz``, ``/metricsz``);
``client``   typed stdlib client used by the CLI and the tests;
``cli``      ``serve`` / ``submit`` / ``jobs`` / ``communities``
             subcommands of the main CLI.

See docs/SERVICE.md for the full API reference and durability
semantics.
"""

from __future__ import annotations

from .client import ServiceClient, ServiceError
from .jobs import JobManager, JobSpec
from .runner import JobOutcome, run_checkpointed
from .server import MiningService, build_server
from .store import ResultStore

__all__ = [
    "JobManager",
    "JobOutcome",
    "JobSpec",
    "MiningService",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "build_server",
    "run_checkpointed",
]
