"""Typed stdlib client for the mining service HTTP API.

Used by the CLI subcommands and the test suite; also the reference for
how to talk to the service from any HTTP client. One class, one method
per endpoint, JSON in/out; errors surface as :class:`ServiceError`
carrying the server's status and message (status 0 = could not reach
the server at all).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from collections.abc import Iterable

from .jobs import TERMINAL, ServiceError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceClient:
    """Talk to one mining-service daemon at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- job lifecycle -----------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """POST /jobs — returns the created job document."""
        return self._request("POST", "/jobs", body=spec)

    def job(self, job_id: str) -> dict:
        """GET /jobs/{id}."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """GET /jobs — all job documents."""
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        """DELETE /jobs/{id} — request cancellation, return the document."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 120.0, poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state; returns its document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in TERMINAL:
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{job_id} still {doc['state']} after {timeout}s"
                )
            time.sleep(poll)

    # -- result queries ----------------------------------------------------

    def communities(
        self,
        job_id: str,
        vertices: Iterable[int] = (),
        top: int | None = None,
    ) -> dict:
        """GET /results/{id}/communities?vertex=…&top=k."""
        return self._request(
            "GET", f"/results/{job_id}/communities{_query(vertices, top)}"
        )

    def best(self, job_id: str, vertices: Iterable[int]) -> list[int] | None:
        """GET /results/{id}/best — the largest containing community."""
        return self._request(
            "GET", f"/results/{job_id}/best{_query(vertices, None)}"
        )["community"]

    # -- daemon introspection ----------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metricsz(self) -> dict:
        return self._request("GET", "/metricsz")

    # -- wire plumbing -----------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        url = self.base_url + path
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                envelope = json.loads(exc.read())
                message = envelope["error"]["message"]
            except Exception:  # noqa: BLE001 — non-JSON error body
                message = str(exc)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {url}: {exc.reason}") from exc


def _query(vertices: Iterable[int], top: int | None) -> str:
    pairs = [("vertex", str(v)) for v in vertices]
    if top is not None:
        pairs.append(("top", str(top)))
    return "?" + urllib.parse.urlencode(pairs) if pairs else ""
