"""The durable job registry: admission, execution, crash recovery.

A *job* is one mining run — graph source, γ, τ_size, and an engine
config — owned end-to-end by the daemon. Each job gets a working
directory ``<root>/jobs/<id>/`` holding everything the daemon knows
about it:

* ``job.json``        the job document (spec, state, timestamps,
                      error), rewritten atomically on every state
                      transition;
* ``candidates.txt``  streamed candidates (the runner's checkpoint);
* ``roots.journal``   completed spawn roots (the runner's checkpoint);
* ``result.txt``      final maximal communities (written atomically on
                      completion — the :class:`~repro.service.store.
                      ResultStore` serves queries from this file);
* ``metrics.json``    the run's merged :class:`EngineMetrics`.

Lifecycle: ``pending → running → completed | failed | cancelled``.
Admission is FIFO under a bounded running-job limit (``max_running``
worker threads drain one shared queue). Cancellation is cooperative:
a pending job cancels immediately, a running one at its next
checkpoint boundary.

Crash recovery: the daemon can die at any instant (``kill -9``). On
restart :meth:`JobManager.recover` scans the job directories; jobs
found ``pending`` or ``running`` are re-queued in ID (= submission)
order and resume from their checkpoint via the runner — completed
roots are never re-mined.
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.resultsio import write_results
from ..datasets.registry import build_dataset, dataset_names
from ..graph.adjacency import Graph
from ..graph.io import read_edge_list
from ..gthinker.config import EngineConfig
from ..gthinker.metrics import EngineMetrics
from ..gthinker.obs.progress import ProgressSnapshot, progress_json
from .runner import DEFAULT_CHUNK_ROOTS, run_checkpointed

PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (PENDING, RUNNING, COMPLETED, FAILED, CANCELLED)
TERMINAL = (COMPLETED, FAILED, CANCELLED)


class ServiceError(RuntimeError):
    """Service-level failure with an HTTP status code attached."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class JobSpec:
    """A validated submit payload.

    Exactly one graph source: ``dataset`` (a built-in synthetic analog
    name), ``graph_path`` (a server-side edge-list file), or ``edges``
    (an inline edge list, optionally with an explicit ``vertices``
    list so isolated vertices exist). ``engine`` carries
    :class:`EngineConfig` fields verbatim — backend, num_procs,
    tau_split, …  — so a job can target any executor.
    """

    gamma: float
    min_size: int
    dataset: str | None = None
    graph_path: str | None = None
    edges: tuple[tuple[int, int], ...] | None = None
    vertices: tuple[int, ...] | None = None
    engine: dict = field(default_factory=dict)
    chunk_roots: int | None = None
    label: str = ""

    _KEYS = (
        "gamma", "min_size", "dataset", "graph_path", "edges", "vertices",
        "engine", "chunk_roots", "label",
    )

    @classmethod
    def parse(cls, payload: Any) -> "JobSpec":
        """Validate a JSON submit body; raises ServiceError(400) on junk."""
        if not isinstance(payload, dict):
            raise ServiceError(400, "submit body must be a JSON object")
        unknown = sorted(set(payload) - set(cls._KEYS))
        if unknown:
            raise ServiceError(400, f"unknown job fields: {', '.join(unknown)}")
        for req in ("gamma", "min_size"):
            if req not in payload:
                raise ServiceError(400, f"missing required field {req!r}")
        try:
            gamma = float(payload["gamma"])
            min_size = int(payload["min_size"])
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, f"bad gamma/min_size: {exc}") from exc
        if not 0.0 < gamma <= 1.0:
            raise ServiceError(400, f"gamma must be in (0, 1], got {gamma}")
        if min_size < 1:
            raise ServiceError(400, f"min_size must be >= 1, got {min_size}")

        sources = [k for k in ("dataset", "graph_path", "edges") if payload.get(k) is not None]
        if len(sources) != 1:
            raise ServiceError(
                400, "exactly one graph source required: dataset | graph_path | edges"
            )
        dataset = payload.get("dataset")
        if dataset is not None and dataset not in dataset_names():
            raise ServiceError(
                400, f"unknown dataset {dataset!r}; known: {', '.join(dataset_names())}"
            )
        edges = payload.get("edges")
        if edges is not None:
            try:
                edges = tuple((int(u), int(v)) for u, v in edges)
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    400, f"edges must be a list of [u, v] integer pairs: {exc}"
                ) from exc
        vertices = payload.get("vertices")
        if vertices is not None:
            if edges is None:
                raise ServiceError(400, "vertices is only valid with inline edges")
            try:
                vertices = tuple(int(v) for v in vertices)
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, f"bad vertices list: {exc}") from exc

        engine = payload.get("engine") or {}
        try:
            EngineConfig.from_payload(engine)  # reject bad knobs at admission
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, f"bad engine config: {exc}") from exc

        chunk_roots = payload.get("chunk_roots")
        if chunk_roots is not None:
            chunk_roots = int(chunk_roots)
            if chunk_roots < 1:
                raise ServiceError(400, "chunk_roots must be >= 1")

        return cls(
            gamma=gamma,
            min_size=min_size,
            dataset=dataset,
            graph_path=payload.get("graph_path"),
            edges=edges,
            vertices=vertices,
            engine=dict(engine),
            chunk_roots=chunk_roots,
            label=str(payload.get("label") or ""),
        )

    def to_payload(self) -> dict:
        """The JSON-shaped spec persisted in job.json (round-trips parse)."""
        out: dict[str, Any] = {"gamma": self.gamma, "min_size": self.min_size}
        if self.dataset is not None:
            out["dataset"] = self.dataset
        if self.graph_path is not None:
            out["graph_path"] = self.graph_path
        if self.edges is not None:
            out["edges"] = [list(e) for e in self.edges]
        if self.vertices is not None:
            out["vertices"] = list(self.vertices)
        if self.engine:
            out["engine"] = self.engine
        if self.chunk_roots is not None:
            out["chunk_roots"] = self.chunk_roots
        if self.label:
            out["label"] = self.label
        return out

    def build_graph(self) -> Graph:
        """Materialize the graph (raises ServiceError 400 on a bad path)."""
        if self.dataset is not None:
            return build_dataset(self.dataset).graph
        if self.graph_path is not None:
            if not os.path.isfile(self.graph_path):
                raise ServiceError(400, f"graph file not found: {self.graph_path}")
            return read_edge_list(self.graph_path)
        assert self.edges is not None
        return Graph.from_edges(self.edges, vertices=self.vertices)

    def build_config(self) -> EngineConfig:
        return EngineConfig.from_payload(self.engine)


@dataclass
class Job:
    """In-memory mirror of one job (the durable copy is job.json)."""

    job_id: str
    spec: JobSpec
    work_dir: str
    state: str = PENDING
    error: str | None = None
    submitted: float = 0.0
    started: float | None = None
    finished: float | None = None
    resumed: bool = False
    results: int | None = None
    roots_total: int | None = None
    roots_done: int = 0
    progress: ProgressSnapshot | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event)

    @property
    def result_path(self) -> str:
        return os.path.join(self.work_dir, "result.txt")

    @property
    def metrics_path(self) -> str:
        return os.path.join(self.work_dir, "metrics.json")


def _write_json_atomic(path: str, doc: dict) -> None:
    """Durable single-file JSON write: temp + fsync + os.replace."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class JobManager:
    """Durable FIFO job registry with a bounded running-job limit."""

    def __init__(
        self,
        root_dir: str,
        *,
        max_running: int = 2,
        chunk_roots: int = DEFAULT_CHUNK_ROOTS,
    ):
        if max_running < 1:
            raise ValueError("max_running must be >= 1")
        self.root_dir = root_dir
        self.jobs_dir = os.path.join(root_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.max_running = max_running
        self.chunk_roots = chunk_roots
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._queue: queue.Queue[str] = queue.Queue()
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()
        self._next_id = 1
        #: Engine metrics aggregated over jobs completed by this daemon
        #: process (per-job metrics live in each job dir). TaskRecords
        #: are dropped from the aggregate to keep /metricsz bounded.
        self._metrics = EngineMetrics()

    # -- lifecycle ---------------------------------------------------------

    def recover(self) -> list[str]:
        """Load job.json files; re-queue interrupted jobs. Returns their IDs."""
        requeued: list[str] = []
        with self._lock:
            for name in sorted(os.listdir(self.jobs_dir)):
                path = os.path.join(self.jobs_dir, name, "job.json")
                if not os.path.isfile(path):
                    continue
                try:
                    with open(path) as f:
                        doc = json.load(f)
                    job = self._job_from_doc(doc, os.path.join(self.jobs_dir, name))
                except (ValueError, KeyError, ServiceError):
                    continue  # unreadable doc: leave the dir for forensics
                self._jobs[job.job_id] = job
                num = _id_number(job.job_id)
                if num is not None:
                    self._next_id = max(self._next_id, num + 1)
                if job.state in (PENDING, RUNNING):
                    # Interrupted by a crash (or never started): resume
                    # from the checkpoint, counting prior progress.
                    job.resumed = job.state == RUNNING or job.roots_done > 0
                    job.state = PENDING
                    self._persist(job)
                    self._queue.put(job.job_id)
                    requeued.append(job.job_id)
        return requeued

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        with self._lock:
            if self._workers:
                return
            for i in range(self.max_running):
                t = threading.Thread(
                    target=self._worker_loop, name=f"job-worker-{i}", daemon=True
                )
                t.start()
                self._workers.append(t)

    def shutdown(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop the workers; running jobs stop at their next checkpoint."""
        self._stop.set()
        if wait:
            for t in self._workers:
                t.join(timeout=timeout)

    # -- public registry API ----------------------------------------------

    def submit(self, payload: Any) -> dict:
        spec = JobSpec.parse(payload)
        with self._lock:
            job_id = f"job-{self._next_id:06d}"
            self._next_id += 1
            work_dir = os.path.join(self.jobs_dir, job_id)
            os.makedirs(work_dir, exist_ok=True)
            job = Job(
                job_id=job_id, spec=spec, work_dir=work_dir,
                submitted=time.time(),
            )
            self._jobs[job_id] = job
            self._persist(job)
            self._queue.put(job_id)
            return self._doc(job)

    def get(self, job_id: str) -> dict:
        with self._lock:
            return self._doc(self._require(job_id))

    def list(self) -> list[dict]:
        with self._lock:
            return [self._doc(j) for j in sorted(
                self._jobs.values(), key=lambda j: j.job_id
            )]

    def cancel(self, job_id: str) -> dict:
        with self._lock:
            job = self._require(job_id)
            if job.state == PENDING:
                job.state = CANCELLED
                job.finished = time.time()
                self._persist(job)
            elif job.state == RUNNING:
                job.cancel_event.set()
            # Terminal states: cancel is a no-op, return the doc as-is.
            return self._doc(job)

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {state: 0 for state in STATES}
            for job in self._jobs.values():
                out[job.state] += 1
            return out

    def merged_metrics(self) -> dict:
        """Aggregate EngineMetrics (JSON-shaped) over completed jobs."""
        with self._lock:
            doc = dataclasses.asdict(self._metrics)
        doc.pop("task_records", None)
        return doc

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Block until the job reaches a terminal state (test/CLI helper)."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.get(job_id)
            if doc["state"] in TERMINAL:
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(f"{job_id} still {doc['state']} after {timeout}s")
            time.sleep(poll)

    # -- worker machinery --------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != PENDING:
                    continue  # cancelled while queued
                if job.cancel_event.is_set():
                    job.state = CANCELLED
                    job.finished = time.time()
                    self._persist(job)
                    continue
                job.state = RUNNING
                job.started = time.time()
                self._persist(job)
            self._execute(job)

    def _execute(self, job: Job) -> None:
        try:
            graph = job.spec.build_graph()
            config = job.spec.build_config()

            def on_progress(snapshot: ProgressSnapshot) -> None:
                with self._lock:
                    job.progress = snapshot
                    job.roots_done = snapshot.tasks_done
                    job.roots_total = (
                        snapshot.tasks_done + snapshot.tasks_pending
                        + snapshot.tasks_leased
                    )

            outcome = run_checkpointed(
                graph, job.spec.gamma, job.spec.min_size, config,
                work_dir=job.work_dir,
                chunk_roots=job.spec.chunk_roots or self.chunk_roots,
                should_stop=lambda: (
                    job.cancel_event.is_set() or self._stop.is_set()
                ),
                on_progress=on_progress,
            )
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            with self._lock:
                job.state = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished = time.time()
                self._persist(job)
            return

        with self._lock:
            job.roots_done = outcome.roots_done
            job.roots_total = outcome.roots_total
            job.resumed = job.resumed or outcome.roots_recovered > 0
            if outcome.completed:
                write_results(
                    outcome.maximal, job.result_path,
                    header=(
                        f"{job.job_id} gamma={job.spec.gamma} "
                        f"min_size={job.spec.min_size}"
                    ),
                )
                _write_json_atomic(
                    job.metrics_path,
                    _metrics_doc(outcome.metrics),
                )
                outcome.metrics.task_records.clear()
                self._metrics.merge(outcome.metrics)
                # merge() treats these as per-run gauges; the daemon
                # aggregate sums them across jobs.
                self._metrics.results += outcome.metrics.results
                self._metrics.wall_seconds += outcome.metrics.wall_seconds
                job.state = COMPLETED
                job.results = len(outcome.maximal)
                job.finished = time.time()
            elif job.cancel_event.is_set():
                job.state = CANCELLED
                job.finished = time.time()
            else:
                # Daemon shutdown mid-job: leave the durable state as
                # "running" so the next recover() resumes it.
                job.state = RUNNING
            self._persist(job)

    # -- documents and persistence ----------------------------------------

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(404, f"no such job: {job_id}")
        return job

    def _doc(self, job: Job) -> dict:
        return {
            "id": job.job_id,
            "state": job.state,
            "label": job.spec.label,
            "spec": job.spec.to_payload(),
            "submitted": job.submitted,
            "started": job.started,
            "finished": job.finished,
            "error": job.error,
            "resumed": job.resumed,
            "cancel_requested": job.cancel_event.is_set(),
            "roots_total": job.roots_total,
            "roots_done": job.roots_done,
            "results": job.results,
            "progress": progress_json(job.progress) if job.progress else None,
        }

    def _persist(self, job: Job) -> None:
        doc = self._doc(job)
        doc.pop("progress", None)  # live-only; reconstructed from the journal
        doc.pop("cancel_requested", None)
        _write_json_atomic(os.path.join(job.work_dir, "job.json"), doc)

    def _job_from_doc(self, doc: dict, work_dir: str) -> Job:
        spec = JobSpec.parse(doc["spec"])
        state = doc.get("state", PENDING)
        if state not in STATES:
            raise ValueError(f"bad state {state!r}")
        return Job(
            job_id=str(doc["id"]),
            spec=spec,
            work_dir=work_dir,
            state=state,
            error=doc.get("error"),
            submitted=float(doc.get("submitted") or 0.0),
            started=doc.get("started"),
            finished=doc.get("finished"),
            resumed=bool(doc.get("resumed", False)),
            results=doc.get("results"),
            roots_total=doc.get("roots_total"),
            roots_done=int(doc.get("roots_done") or 0),
        )


def _id_number(job_id: str) -> int | None:
    if job_id.startswith("job-"):
        try:
            return int(job_id[4:])
        except ValueError:
            return None
    return None


def _metrics_doc(metrics: EngineMetrics) -> dict:
    doc = dataclasses.asdict(metrics)
    # TaskRecords are per-task tuples useful for figures, not ops; the
    # service keeps job metrics summary-sized.
    doc.pop("task_records", None)
    return doc
