"""ResultStore: serve community queries from mined results, no re-mining.

Top-k community retrieval ("which communities contain vertex v, show
me the k largest") is a *read* workload: once a job has mined every
maximal γ-quasi-clique, queries are lookups over the result file. The
store keeps, per completed job, an in-memory index

    vertex  →  indices of the communities containing it

over the size-descending community list, plus a bounded LRU cache of
answered queries, so the hot path of a popular vertex is one dict hit.

Query semantics mirror :mod:`repro.core.query` shapes over the mined
family: ``communities(job, Q)`` returns every mined maximal community
containing all of ``Q`` — exactly ``{S ∈ maximal : Q ⊆ S}``, which
equals ``mine_containing(graph, Q, …).maximal`` because a maximal
quasi-clique containing Q is maximal among the Q-containing family
and vice versa. ``best(job, Q)`` returns the largest with
lexicographic tie-break — :func:`repro.core.query.best_community`'s
ordering — without touching the graph.

Indexes are loaded lazily from ``result.txt`` and capped (LRU over
jobs); everything is invalidated per job id, so a store outlives any
number of daemon restarts.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from collections.abc import Iterable

from ..core.resultsio import read_results


class CommunityIndex:
    """One job's communities, sorted size-descending, indexed by vertex."""

    def __init__(self, communities: Iterable[frozenset[int]]):
        self.communities: list[frozenset[int]] = sorted(
            set(communities), key=lambda s: (-len(s), sorted(s))
        )
        self.by_vertex: dict[int, list[int]] = {}
        for i, comm in enumerate(self.communities):
            for v in comm:
                self.by_vertex.setdefault(v, []).append(i)

    def containing(self, query: tuple[int, ...]) -> list[frozenset[int]]:
        """Communities ⊇ query, largest first (lexicographic tie-break)."""
        if not query:
            return list(self.communities)
        # Intersect the per-vertex posting lists, rarest first.
        postings = [self.by_vertex.get(v) for v in set(query)]
        if any(p is None for p in postings):
            return []
        postings.sort(key=len)
        hits = set(postings[0])
        for p in postings[1:]:
            hits &= set(p)
            if not hits:
                return []
        return [self.communities[i] for i in sorted(hits)]


class ResultStore:
    """Vertex → containing-communities lookups with an LRU query cache."""

    def __init__(
        self,
        jobs_dir: str,
        *,
        max_indexes: int = 8,
        cache_size: int = 1024,
    ):
        if max_indexes < 1 or cache_size < 0:
            raise ValueError("max_indexes >= 1 and cache_size >= 0 required")
        self.jobs_dir = jobs_dir
        self.max_indexes = max_indexes
        self.cache_size = cache_size
        self._lock = threading.Lock()
        self._indexes: OrderedDict[str, CommunityIndex] = OrderedDict()
        self._cache: OrderedDict[tuple, list[frozenset[int]]] = OrderedDict()
        # Observability counters, dumped by /metricsz.
        self.cache_hits = 0
        self.cache_misses = 0
        self.index_loads = 0
        self.index_evictions = 0

    # -- index management --------------------------------------------------

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id, "result.txt")

    def index(self, job_id: str) -> CommunityIndex:
        """The job's index, loading (and LRU-evicting) as needed."""
        with self._lock:
            idx = self._indexes.get(job_id)
            if idx is not None:
                self._indexes.move_to_end(job_id)
                return idx
        path = self.result_path(job_id)
        if not os.path.isfile(path):
            raise KeyError(job_id)
        loaded = CommunityIndex(read_results(path))
        with self._lock:
            self._indexes[job_id] = loaded
            self._indexes.move_to_end(job_id)
            self.index_loads += 1
            while len(self._indexes) > self.max_indexes:
                evicted, _ = self._indexes.popitem(last=False)
                self.index_evictions += 1
                self._drop_cached(evicted)
            return self._indexes[job_id]

    def invalidate(self, job_id: str) -> None:
        """Forget a job's index and cached answers (e.g. job deleted)."""
        with self._lock:
            self._indexes.pop(job_id, None)
            self._drop_cached(job_id)

    # -- queries -----------------------------------------------------------

    def communities(
        self,
        job_id: str,
        query: Iterable[int] = (),
        top: int | None = None,
    ) -> tuple[list[frozenset[int]], bool]:
        """(communities ⊇ query largest-first, cache_hit). KeyError if absent.

        ``top=k`` truncates to the k largest; ``query=()`` lists all.
        A vertex in no community (or not in the graph at all) simply
        matches nothing — the result file cannot tell those apart.
        """
        key = (job_id, tuple(sorted(set(query))), top)
        with self._lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return list(self._cache[key]), True
        idx = self.index(job_id)
        out = idx.containing(key[1])
        if top is not None:
            out = out[: max(top, 0)]
        with self._lock:
            self.cache_misses += 1
            if self.cache_size:
                self._cache[key] = list(out)
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return out, False

    def best(self, job_id: str, query: Iterable[int]) -> frozenset[int] | None:
        """Largest community ⊇ query (ties lexicographic), or None."""
        out, _ = self.communities(job_id, query, top=1)
        return out[0] if out else None

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "index_loads": self.index_loads,
                "index_evictions": self.index_evictions,
                "indexes_loaded": len(self._indexes),
                "cached_queries": len(self._cache),
            }

    def _drop_cached(self, job_id: str) -> None:
        for key in [k for k in self._cache if k[0] == job_id]:
            del self._cache[key]
