"""Checkpointed job execution: any backend, ResumableMiner durability.

One service job = one full mining run. The daemon must survive
``kill -9`` mid-job without restarting the job from scratch, and jobs
must be able to run on any existing executor (serial, threaded,
process pool, cluster) via :func:`repro.gthinker.engine.mine_parallel`.
Those two requirements meet in *chunked* execution over the spawn-root
decomposition:

* Roots are the vertices of the (k-core of the) input graph in
  ascending ID order — exactly :class:`~repro.core.resumable.
  ResumableMiner`'s enumeration, so a finished run equals the serial
  oracle.
* A *chunk* of consecutive roots is mined in one ``mine_parallel``
  call over the induced subgraph on the union of the chunk roots'
  spawn subgraphs. This is exact: root ``r``'s spawn subgraph only
  ever reaches IDs ``> r`` (the set-enumeration dedup), a member of a
  quasi-clique ``S ∋ r`` keeps degree ≥ k inside the union (its ≥
  γ(|S|−1) neighbors in S are all there), and any two members of S
  are ≤ 2 apart *within S* (γ ≥ ½), so every maximal quasi-clique
  whose minimum vertex lies in the chunk survives the restriction.
  Extra candidates from truncated higher-ID roots are valid
  quasi-cliques of the full graph (induced subgraphs preserve
  internal edges) and fall to dedup + maximality postprocessing.
* Between chunks the runner flushes candidates (fsync) and *then*
  journals the chunk's roots — the same candidates.txt/roots.journal
  layout as ``ResumableMiner``, at chunk granularity. A crash at any
  point loses at most the in-flight chunk, which the restarted run
  re-mines (emissions are idempotent: the result file is deduplicated
  on load, and a torn trailing line is repaired by the sink).

Cancellation rides the same seam: ``should_stop`` is polled between
chunks, so a cancel lands at the next checkpoint boundary with the
checkpoint intact.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from ..core.options import DEFAULT_OPTIONS, MinerOptions
from ..core.postprocess import postprocess_results
from ..core.quasiclique import kcore_threshold
from ..core.resultsio import FileResultSink
from ..core.resumable import load_checkpoint
from ..graph.adjacency import Graph
from ..graph.kcore import k_core
from ..graph.subgraph import spawn_subgraph
from ..gthinker.config import EngineConfig
from ..gthinker.engine import mine_parallel
from ..gthinker.metrics import EngineMetrics
from ..gthinker.obs.progress import ProgressSnapshot

#: Default roots per checkpointed chunk. Small enough that a killed
#: daemon loses little work, large enough to amortize per-chunk engine
#: setup (a process pool per chunk on backend='process').
DEFAULT_CHUNK_ROOTS = 64


@dataclass
class JobOutcome:
    """What one (possibly partial) checkpointed run produced."""

    #: True when every root is journaled; False on a should_stop exit.
    completed: bool
    #: Maximality-postprocessed results (empty unless ``completed``).
    maximal: set[frozenset[int]] = field(default_factory=set)
    #: All persisted candidates, including recovered ones.
    candidates: set[frozenset[int]] = field(default_factory=set)
    #: Engine metrics merged over every chunk this run executed.
    metrics: EngineMetrics = field(default_factory=EngineMetrics)
    #: Root accounting: total roots of the job, journaled-as-done count,
    #: and how many were already done when this run started (resume).
    roots_total: int = 0
    roots_done: int = 0
    roots_recovered: int = 0


def run_checkpointed(
    graph: Graph,
    gamma: float,
    min_size: int,
    config: EngineConfig | None = None,
    *,
    work_dir: str,
    chunk_roots: int = DEFAULT_CHUNK_ROOTS,
    options: MinerOptions = DEFAULT_OPTIONS,
    should_stop: Callable[[], bool] | None = None,
    on_progress: Callable[[ProgressSnapshot], None] | None = None,
) -> JobOutcome:
    """Mine `graph`, checkpointing into `work_dir`; resume if it has state.

    Returns a :class:`JobOutcome`. When ``should_stop()`` turns true the
    run exits at the next chunk boundary with ``completed=False`` and a
    consistent checkpoint; calling again continues where it left off.
    """
    if chunk_roots < 1:
        raise ValueError("chunk_roots must be >= 1")
    config = config or EngineConfig()
    os.makedirs(work_dir, exist_ok=True)
    results_path = os.path.join(work_dir, "candidates.txt")
    journal_path = os.path.join(work_dir, "roots.journal")

    state = load_checkpoint(results_path, journal_path)
    k = kcore_threshold(gamma, min_size)
    base = k_core(graph, k) if options.kcore_preprocess else graph
    all_roots = sorted(base.vertices())
    remaining = [v for v in all_roots if v not in state.completed_roots]
    recovered = len(all_roots) - len(remaining)

    outcome = JobOutcome(
        completed=True,
        roots_total=len(all_roots),
        roots_done=recovered,
        roots_recovered=recovered,
    )
    sink = FileResultSink(results_path, mode="a", seen=state.candidates)
    journal = open(journal_path, "a")
    start = time.monotonic()

    def snapshot(leased: int) -> ProgressSnapshot:
        return ProgressSnapshot(
            wall_seconds=time.monotonic() - start,
            tasks_pending=outcome.roots_total - outcome.roots_done - leased,
            tasks_leased=leased,
            tasks_done=outcome.roots_done,
            candidates=len(sink),
            workers_alive=1,
        )

    try:
        if on_progress is not None:
            on_progress(snapshot(0))
        for lo in range(0, len(remaining), chunk_roots):
            if should_stop is not None and should_stop():
                outcome.completed = False
                break
            chunk = remaining[lo : lo + chunk_roots]
            if on_progress is not None:
                on_progress(snapshot(len(chunk)))
            members: set[int] = set()
            for r in chunk:
                sub = spawn_subgraph(base, r, k)
                if r in sub:
                    members.update(sub.vertices())
                elif min_size <= 1:
                    sink.emit([r])
            if members:
                out = mine_parallel(
                    base.subgraph(members), gamma, min_size, config,
                    options=options,
                )
                for cand in out.candidates:
                    sink.emit(cand)
                outcome.metrics.merge(out.metrics)
            # Durability order: candidates fsynced before their roots
            # are journaled, so a crash in between re-mines the chunk
            # instead of losing its results.
            sink.flush()
            journal.write("".join(f"{r}\n" for r in chunk))
            journal.flush()
            os.fsync(journal.fileno())
            outcome.roots_done += len(chunk)
            if on_progress is not None:
                on_progress(snapshot(0))
    finally:
        journal.close()
        sink.close()

    outcome.candidates = sink.results()
    if outcome.completed:
        outcome.maximal = postprocess_results(outcome.candidates)
        outcome.metrics.results = len(outcome.maximal)
    outcome.metrics.wall_seconds = time.monotonic() - start
    return outcome
