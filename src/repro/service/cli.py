"""Service subcommands of the main CLI.

::

    quasiclique-mine serve --root /var/lib/qc --port 7477
    quasiclique-mine submit --url http://host:7477 graph.txt \
        --gamma 0.9 --min-size 10 --wait
    quasiclique-mine jobs --url http://host:7477 [JOB_ID]
    quasiclique-mine communities --url http://host:7477 JOB_ID \
        --vertex 42 --top 5

``serve`` runs the daemon in the foreground; everything else is a thin
:class:`~repro.service.client.ServiceClient` wrapper. ``--port 0``
binds an ephemeral port, and ``--port-file`` publishes whichever port
was bound (the same rendezvous the cluster-master subcommand uses), so
scripts and CI never race on a fixed port.
"""

from __future__ import annotations

import argparse
import os
import sys

from .client import ServiceClient, ServiceError

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2


def service_cli(command: str, argv: list[str]) -> int:
    handlers = {
        "serve": serve_cli,
        "submit": submit_cli,
        "jobs": jobs_cli,
        "communities": communities_cli,
    }
    try:
        return handlers[command](argv)
    except ServiceError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return EXIT_ERROR


# -- serve -----------------------------------------------------------------


def serve_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine serve",
        description="Run the mining service daemon (jobs + result queries).",
    )
    parser.add_argument("--root", required=True,
                        help="service state directory (job working dirs live "
                        "under <root>/jobs/); reused across restarts")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7477,
                        help="listen port (0 = ephemeral; see --port-file)")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file once "
                        "listening (rendezvous for scripts using --port 0)")
    parser.add_argument("--max-running", type=int, default=2, metavar="N",
                        help="admission control: jobs mined concurrently; "
                        "the rest queue FIFO (default: 2)")
    parser.add_argument("--chunk-roots", type=int, default=None, metavar="N",
                        help="spawn roots per checkpointed chunk (default: "
                        "64; smaller = finer-grained crash recovery)")
    args = parser.parse_args(argv)

    from .runner import DEFAULT_CHUNK_ROOTS
    from .server import MiningService, build_server

    service = MiningService(
        args.root,
        max_running=args.max_running,
        chunk_roots=args.chunk_roots or DEFAULT_CHUNK_ROOTS,
    )
    requeued = service.recover_and_start()
    httpd = build_server(service, args.host, args.port)
    host, port = httpd.server_address[:2]
    if args.port_file:
        tmp = f"{args.port_file}.tmp"
        with open(tmp, "w") as f:
            f.write(f"{port}\n")
        os.replace(tmp, args.port_file)
    resumed = f" resumed={len(requeued)}" if requeued else ""
    print(
        f"service listening on http://{host}:{port} "
        f"root={args.root} max_running={args.max_running}{resumed}",
        flush=True,
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.shutdown()
        service.shutdown()
    return EXIT_OK


# -- submit ----------------------------------------------------------------


def submit_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine submit",
        description="Submit a mining job to a running service.",
    )
    parser.add_argument("--url", required=True, help="service base URL")
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("graph", nargs="?",
                     help="edge-list file (path as seen by the *server*)")
    src.add_argument("--dataset", help="built-in synthetic dataset analog")
    parser.add_argument("--gamma", type=float, required=True)
    parser.add_argument("--min-size", type=int, required=True)
    parser.add_argument("--backend", default=None,
                        choices=["auto", "serial", "threaded", "process",
                                 "cluster"],
                        help="executor for this job's chunks")
    parser.add_argument("--num-procs", type=int, default=None, metavar="N")
    parser.add_argument("--threads", type=int, default=None, metavar="N",
                        help="threads per machine (threaded backend)")
    parser.add_argument("--chunk-roots", type=int, default=None, metavar="N",
                        help="override the service's checkpoint chunk size")
    parser.add_argument("--label", default="")
    parser.add_argument("--wait", action="store_true",
                        help="block until the job finishes; exit nonzero on "
                        "failure/cancellation")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds (default: 600)")
    args = parser.parse_args(argv)

    engine: dict = {}
    if args.backend:
        engine["backend"] = args.backend
    if args.num_procs is not None:
        engine["num_procs"] = args.num_procs
    if args.threads is not None:
        engine["threads_per_machine"] = args.threads
    spec: dict = {"gamma": args.gamma, "min_size": args.min_size}
    if args.dataset:
        spec["dataset"] = args.dataset
    else:
        spec["graph_path"] = os.path.abspath(args.graph)
    if engine:
        spec["engine"] = engine
    if args.chunk_roots is not None:
        spec["chunk_roots"] = args.chunk_roots
    if args.label:
        spec["label"] = args.label

    client = ServiceClient(args.url)
    doc = client.submit(spec)
    print(f"submitted {doc['id']} state={doc['state']}")
    if not args.wait:
        return EXIT_OK
    doc = client.wait(doc["id"], timeout=args.timeout)
    print(_job_line(doc))
    return EXIT_OK if doc["state"] == "completed" else EXIT_ERROR


# -- jobs ------------------------------------------------------------------


def jobs_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine jobs",
        description="List service jobs, or show one job in detail.",
    )
    parser.add_argument("--url", required=True)
    parser.add_argument("job_id", nargs="?", default=None)
    args = parser.parse_args(argv)

    client = ServiceClient(args.url)
    if args.job_id:
        doc = client.job(args.job_id)
        print(_job_line(doc))
        if doc.get("progress"):
            p = doc["progress"]
            print(
                f"  progress: done={p['tasks_done']} "
                f"pending={p['tasks_pending']} leased={p['tasks_leased']} "
                f"candidates={p['candidates']} wall={p['wall_seconds']:.1f}s"
            )
        if doc.get("error"):
            print(f"  error: {doc['error']}")
        return EXIT_OK
    docs = client.jobs()
    if not docs:
        print("no jobs")
        return EXIT_OK
    for doc in docs:
        print(_job_line(doc))
    return EXIT_OK


def _job_line(doc: dict) -> str:
    line = f"{doc['id']} state={doc['state']}"
    if doc.get("roots_total") is not None:
        line += f" roots={doc['roots_done']}/{doc['roots_total']}"
    if doc.get("results") is not None:
        line += f" results={doc['results']}"
    if doc.get("resumed"):
        line += " resumed=1"
    if doc.get("label"):
        line += f" label={doc['label']}"
    return line


# -- communities -----------------------------------------------------------


def communities_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine communities",
        description="Query mined communities of a completed job.",
    )
    parser.add_argument("--url", required=True)
    parser.add_argument("job_id")
    parser.add_argument("--vertex", type=int, action="append", default=None,
                        metavar="V",
                        help="require the community to contain V (repeatable; "
                        "omit to list every community)")
    parser.add_argument("--top", type=int, default=None, metavar="K",
                        help="only the K largest")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    args = parser.parse_args(argv)

    client = ServiceClient(args.url)
    doc = client.communities(args.job_id, args.vertex or (), args.top)
    print(
        f"{doc['job']} query={doc['query']} count={doc['count']} "
        f"cache={doc['cache']}"
    )
    if not args.quiet:
        for community in doc["communities"]:
            print(" ".join(str(v) for v in community))
    return EXIT_OK
