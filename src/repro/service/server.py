"""The HTTP API: stdlib ThreadingHTTPServer over JobManager + ResultStore.

Endpoints (full request/response schemas in docs/SERVICE.md):

=========  ================================  =================================
method     path                              meaning
=========  ================================  =================================
POST       /jobs                             submit a job (JSON body) → 201
GET        /jobs                             list all job documents
GET        /jobs/{id}                        one job document with progress
DELETE     /jobs/{id}                        cancel (cooperative when running)
GET        /results/{id}/communities         communities ⊇ query vertices
                                             (``?vertex=v&…&top=k``)
GET        /results/{id}/best                largest such community or null
GET        /healthz                          liveness + job-state counts
GET        /metricsz                         EngineMetrics aggregate + store
                                             and daemon counters, as JSON
=========  ================================  =================================

Every response body is JSON. Errors use one envelope::

    {"error": {"status": 404, "message": "no such job: job-000042"}}

Threading model: ``ThreadingHTTPServer`` serves each request on its
own thread; JobManager and ResultStore are internally locked, and job
execution happens on the manager's own bounded worker pool — a slow
mining job never blocks queries.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .jobs import COMPLETED, JobManager, ServiceError
from .runner import DEFAULT_CHUNK_ROOTS
from .store import ResultStore

__version__ = "1.0"


class MiningService:
    """One daemon's state: the job registry plus the query store."""

    def __init__(
        self,
        root_dir: str,
        *,
        max_running: int = 2,
        chunk_roots: int = DEFAULT_CHUNK_ROOTS,
        max_indexes: int = 8,
        cache_size: int = 1024,
    ):
        self.root_dir = root_dir
        self.manager = JobManager(
            root_dir, max_running=max_running, chunk_roots=chunk_roots
        )
        self.store = ResultStore(
            self.manager.jobs_dir, max_indexes=max_indexes, cache_size=cache_size
        )
        self.started_at = time.time()
        self.requests_served = 0

    def recover_and_start(self) -> list[str]:
        """Resume interrupted jobs, then open the worker pool."""
        requeued = self.manager.recover()
        self.manager.start()
        return requeued

    def shutdown(self) -> None:
        self.manager.shutdown()

    # -- request-level operations (HTTP-agnostic, used by the handler) -----

    def communities_doc(self, job_id: str, query: list[int], top: int | None) -> dict:
        job = self.manager.get(job_id)
        if job["state"] != COMPLETED:
            raise ServiceError(
                409,
                f"{job_id} is {job['state']}; results are queryable once "
                "the job completes",
            )
        try:
            found, cache_hit = self.store.communities(job_id, query, top)
        except KeyError:
            raise ServiceError(404, f"no result file for {job_id}") from None
        return {
            "job": job_id,
            "query": sorted(set(query)),
            "top": top,
            "count": len(found),
            "cache": "hit" if cache_hit else "miss",
            "communities": [sorted(c) for c in found],
        }

    def best_doc(self, job_id: str, query: list[int]) -> dict:
        doc = self.communities_doc(job_id, query, top=1)
        best = doc["communities"][0] if doc["communities"] else None
        return {"job": job_id, "query": doc["query"], "community": best}

    def health_doc(self) -> dict:
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.manager.counts(),
        }

    def metrics_doc(self) -> dict:
        return {
            "service": {
                "uptime_seconds": time.time() - self.started_at,
                "requests_served": self.requests_served,
                "jobs": self.manager.counts(),
                "store": self.store.counters(),
            },
            "engine": self.manager.merged_metrics(),
        }


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the :class:`MiningService` bound at class level."""

    service: MiningService  # set by build_server
    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        self.service.requests_served += 1
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        params = parse_qs(split.query)
        try:
            doc, status = self._route(method, parts, params)
        except ServiceError as exc:
            self._send(
                {"error": {"status": exc.status, "message": exc.message}},
                exc.status,
            )
            return
        except Exception as exc:  # noqa: BLE001 — never crash the daemon
            self._send(
                {"error": {"status": 500, "message": f"{type(exc).__name__}: {exc}"}},
                500,
            )
            return
        self._send(doc, status)

    def _route(self, method: str, parts: list[str], params: dict) -> tuple[dict, int]:
        svc = self.service
        if method == "GET" and parts == ["healthz"]:
            return svc.health_doc(), 200
        if method == "GET" and parts == ["metricsz"]:
            return svc.metrics_doc(), 200
        if parts[:1] == ["jobs"]:
            if method == "POST" and len(parts) == 1:
                return svc.manager.submit(self._read_json()), 201
            if method == "GET" and len(parts) == 1:
                return {"jobs": svc.manager.list()}, 200
            if method == "GET" and len(parts) == 2:
                return svc.manager.get(parts[1]), 200
            if method == "DELETE" and len(parts) == 2:
                return svc.manager.cancel(parts[1]), 200
        if method == "GET" and parts[:1] == ["results"] and len(parts) == 3:
            job_id = parts[1]
            query = _int_params(params, "vertex")
            if parts[2] == "communities":
                top = _int_param(params, "top")
                return svc.communities_doc(job_id, query, top), 200
            if parts[2] == "best":
                return svc.best_doc(job_id, query), 200
        raise ServiceError(404, f"no route: {method} /{'/'.join(parts)}")

    # -- plumbing ----------------------------------------------------------

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        if not body:
            raise ServiceError(400, "empty request body (JSON expected)")
        try:
            return json.loads(body)
        except ValueError as exc:
            raise ServiceError(400, f"bad JSON body: {exc}") from exc

    def _send(self, doc: dict, status: int) -> None:
        payload = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Quiet by default; the serve CLI owns user-facing output.
        pass


def _int_params(params: dict, name: str) -> list[int]:
    try:
        return [int(v) for v in params.get(name, [])]
    except ValueError as exc:
        raise ServiceError(400, f"bad {name} parameter: {exc}") from exc


def _int_param(params: dict, name: str) -> int | None:
    values = _int_params(params, name)
    return values[-1] if values else None


def build_server(
    service: MiningService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a ThreadingHTTPServer serving `service` (port 0 = ephemeral).

    The caller owns the loop: ``server.serve_forever()`` to run,
    ``server.shutdown()`` + ``service.shutdown()`` to stop.
    """
    handler = type("BoundServiceHandler", (ServiceHandler,), {"service": service})
    httpd = ThreadingHTTPServer((host, port), handler)
    httpd.daemon_threads = True
    return httpd
