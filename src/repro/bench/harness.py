"""Programmatic experiment harness.

The pytest benchmarks under ``benchmarks/`` are the canonical way to
regenerate the paper's tables, but downstream users often want the same
sweeps as library calls (e.g. to plot their own data). This module
packages the common run shapes: one simulated job with a dataset's
registered parameters, scalability sweeps, and hyperparameter grids.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..datasets.registry import DatasetSpec, build_dataset, get_dataset
from ..graph.adjacency import Graph
from ..gthinker.app_protocol import GThinkerApp
from ..gthinker.config import EngineConfig
from ..gthinker.simulation import SimOutcome, simulate_app, simulate_cluster


def config_for(spec: DatasetSpec, machines: int = 1, threads: int = 1,
               **overrides) -> EngineConfig:
    """EngineConfig carrying a dataset's registered (τ_split, τ_time)."""
    params = dict(
        num_machines=machines,
        threads_per_machine=threads,
        tau_split=spec.tau_split,
        tau_time=spec.tau_time_ops,
        time_unit="ops",
        decompose="timed",
    )
    params.update(overrides)
    return EngineConfig(**params)


def run_dataset(name: str, machines: int = 1, threads: int = 1,
                tracer=None, **overrides) -> SimOutcome:
    """One simulated run of a registered dataset analog."""
    spec = get_dataset(name)
    graph = build_dataset(name).graph
    return simulate_cluster(
        graph, spec.gamma, spec.min_size,
        config_for(spec, machines, threads, **overrides),
        tracer=tracer,
    )


def run_app_on_dataset(name: str, app: GThinkerApp, machines: int = 1,
                       threads: int = 1, tracer=None, **overrides) -> SimOutcome:
    """Simulate any GThinkerApp over a registered dataset analog.

    The dataset's registered (τ_split, τ_time) still seed the config so
    app sweeps stay comparable to the quasi-clique runs.
    """
    spec = get_dataset(name)
    graph = build_dataset(name).graph
    return simulate_app(
        graph, app, config_for(spec, machines, threads, **overrides),
        tracer=tracer,
    )


@dataclass
class SweepPoint:
    """One configuration's outcome within a sweep."""

    machines: int
    threads: int
    makespan: float
    speedup: float
    utilization: float
    steals: int
    results: int


@dataclass
class SweepResult:
    """A scalability sweep plus its 1×1 baseline."""

    baseline_makespan: float
    points: list[SweepPoint] = field(default_factory=list)


def scalability_sweep(
    graph: Graph,
    gamma: float,
    min_size: int,
    configurations: list[tuple[int, int]],
    base_config: EngineConfig,
) -> SweepResult:
    """Run (machines, threads) configurations; speedups vs a 1×1 run."""

    def run(machines: int, threads: int) -> SimOutcome:
        cfg = EngineConfig(
            **{
                **base_config.__dict__,
                "num_machines": machines,
                "threads_per_machine": threads,
            }
        )
        return simulate_cluster(graph, gamma, min_size, cfg)

    base = run(1, 1)
    sweep = SweepResult(baseline_makespan=base.makespan)
    for machines, threads in configurations:
        out = run(machines, threads)
        sweep.points.append(
            SweepPoint(
                machines=machines,
                threads=threads,
                makespan=out.makespan,
                speedup=base.makespan / out.makespan if out.makespan else float("inf"),
                utilization=out.utilization,
                steals=out.metrics.steals,
                results=len(out.maximal),
            )
        )
    return sweep


@dataclass
class BackendPoint:
    """One (backend, workers) wall-clock measurement."""

    backend: str
    workers: int
    wall_seconds: float
    speedup_vs_serial: float
    results: int
    tasks_executed: int


@dataclass
class BackendComparison:
    """Wall-clock comparison of the real executors on one instance.

    Unlike the virtual-makespan sweeps, these are honest wall-clock
    numbers and therefore machine-dependent: `cpu_count` records how
    many cores the measurement actually had to work with.
    """

    cpu_count: int
    serial_seconds: float
    points: list[BackendPoint] = field(default_factory=list)

    def point(self, backend: str, workers: int) -> BackendPoint | None:
        for p in self.points:
            if p.backend == backend and p.workers == workers:
                return p
        return None


def backend_comparison(
    graph: Graph,
    gamma: float,
    min_size: int,
    worker_counts: list[int],
    base_config: EngineConfig | None = None,
    repeats: int = 1,
) -> BackendComparison:
    """Time the threaded and process executors against the serial one.

    Each (backend, workers) cell is run `repeats` times and the best
    wall time kept. All runs must agree on the maximal family — a
    mismatch raises, because a backend that parallelizes by dropping
    work would otherwise look fast.
    """
    from ..gthinker.engine import mine_parallel

    base = base_config or EngineConfig()

    def run(backend: str, workers: int):
        cfg = EngineConfig(
            **{
                **base.__dict__,
                "backend": backend,
                "num_machines": 1,
                "threads_per_machine": workers if backend == "threaded" else 1,
                "num_procs": workers if backend == "process" else 0,
            }
        )
        best_seconds, out = float("inf"), None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = mine_parallel(graph, gamma, min_size, cfg)
            elapsed = time.perf_counter() - t0
            if elapsed < best_seconds:
                best_seconds, out = elapsed, result
        return best_seconds, out

    serial_seconds, serial_out = run("serial", 1)
    comparison = BackendComparison(
        cpu_count=os.cpu_count() or 1, serial_seconds=serial_seconds
    )
    for backend in ("threaded", "process"):
        for workers in worker_counts:
            seconds, out = run(backend, workers)
            if out.maximal != serial_out.maximal:
                raise RuntimeError(
                    f"{backend} x{workers} produced a different maximal family "
                    f"({len(out.maximal)} vs {len(serial_out.maximal)} sets)"
                )
            comparison.points.append(
                BackendPoint(
                    backend=backend,
                    workers=workers,
                    wall_seconds=seconds,
                    speedup_vs_serial=serial_seconds / seconds if seconds else float("inf"),
                    results=len(out.maximal),
                    tasks_executed=out.metrics.tasks_executed,
                )
            )
    return comparison


def hyperparameter_grid(
    name: str,
    tau_times: list[float],
    tau_splits: list[int],
    machines: int = 4,
    threads: int = 4,
) -> dict[tuple[float, int], SimOutcome]:
    """The Tables 3–4 grid: (τ_time, τ_split) → simulated outcome."""
    spec = get_dataset(name)
    graph = build_dataset(name).graph
    out: dict[tuple[float, int], SimOutcome] = {}
    for tau_time in tau_times:
        for tau_split in tau_splits:
            out[(tau_time, tau_split)] = simulate_cluster(
                graph, spec.gamma, spec.min_size,
                config_for(spec, machines, threads,
                           tau_time=tau_time, tau_split=tau_split),
            )
    return out
