"""Benchmark-harness helpers (table rendering, experiment plumbing)."""

from .harness import (
    BackendComparison,
    BackendPoint,
    backend_comparison,
    config_for,
    hyperparameter_grid,
    run_dataset,
    scalability_sweep,
)
from .reporting import format_table, ratio, report

__all__ = [
    "BackendComparison",
    "BackendPoint",
    "backend_comparison",
    "config_for",
    "format_table",
    "hyperparameter_grid",
    "ratio",
    "report",
    "run_dataset",
    "scalability_sweep",
]
