"""Benchmark-harness helpers (table rendering, experiment plumbing)."""

from .harness import config_for, hyperparameter_grid, run_dataset, scalability_sweep
from .reporting import format_table, ratio, report

__all__ = [
    "config_for",
    "format_table",
    "hyperparameter_grid",
    "ratio",
    "report",
    "run_dataset",
    "scalability_sweep",
]
