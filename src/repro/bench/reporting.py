"""Plain-text table rendering for the benchmark harness.

Every benchmark regenerates one paper table/figure and prints it in the
paper's row format next to the paper's own numbers, then appends the
rendering to ``benchmarks/out/`` so EXPERIMENTS.md can cite stable
artifacts. Absolute values are not comparable (simulated cluster,
synthetic analogs, Python) — the *shape* columns are the deliverable.
"""

from __future__ import annotations

import os
from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def report(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]],
           notes: str = "", out_name: str | None = None) -> str:
    """Print one experiment table and persist it under benchmarks/out/."""
    body = format_table(headers, rows)
    text = f"\n=== {title} ===\n{body}\n"
    if notes:
        text += f"{notes.rstrip()}\n"
    print(text)
    if out_name:
        out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
        os.makedirs(out_dir, exist_ok=True)
        with open(os.path.join(out_dir, f"{out_name}.txt"), "w") as f:
            f.write(text.lstrip("\n"))
    return text


def ratio(a: float, b: float) -> float:
    """Safe a/b for speedup columns."""
    return a / b if b else float("inf")
