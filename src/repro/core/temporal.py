"""Temporal quasi-clique patterns (paper §2: Yang et al. [42]).

Yang et al. mine *diversified temporal subgraph patterns*: a pattern is
a vertex set together with the time interval over which it stays a
γ-quasi-clique; their algorithm "is essentially adapted from Quick to
include the temporal aspects". This module reproduces that adaptation
on top of this library's corrected miner:

* a :class:`TemporalGraph` is a sequence of snapshots (edge → the
  timestamps at which it is active);
* a :class:`TemporalPattern` (S, [start, end]) requires S to induce a
  γ-quasi-clique in the *stable graph* of the window — the edges
  present in **every** snapshot of [start, end];
* a pattern is **maximal** when neither S (same window) nor the window
  (same S) can grow;
* top-k **diversification** greedily maximizes coverage of
  (vertex, timestamp) cells, the de-duplication objective of [42].

Window enumeration is O(T²) in the number of snapshots with one inner
mining call per window — matching the structure (not the constants) of
the original.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..graph.adjacency import Graph
from .miner import mine_maximal_quasicliques
from .options import DEFAULT_OPTIONS, MinerOptions
from .quasiclique import is_quasi_clique


class TemporalGraph:
    """A graph whose edges are active at integer timestamps 0..T-1."""

    def __init__(self, num_snapshots: int):
        if num_snapshots < 1:
            raise ValueError("need at least one snapshot")
        self.num_snapshots = num_snapshots
        self._active: dict[tuple[int, int], set[int]] = {}
        self._vertices: set[int] = set()

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def add_edge(self, u: int, v: int, timestamps: Iterable[int]) -> None:
        """Mark edge {u, v} active at each timestamp."""
        if u == v:
            return
        times = set(timestamps)
        for t in times:
            if not 0 <= t < self.num_snapshots:
                raise ValueError(f"timestamp {t} outside 0..{self.num_snapshots - 1}")
        self._active.setdefault(self._key(u, v), set()).update(times)
        self._vertices.add(u)
        self._vertices.add(v)

    def add_vertex(self, v: int) -> None:
        self._vertices.add(v)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    def vertices(self) -> set[int]:
        return set(self._vertices)

    def edge_timestamps(self, u: int, v: int) -> set[int]:
        return set(self._active.get(self._key(u, v), ()))

    def snapshot(self, t: int) -> Graph:
        """The static graph of edges active at timestamp t."""
        return self.stable_graph(t, t)

    def stable_graph(self, start: int, end: int) -> Graph:
        """Edges active at *every* timestamp of [start, end] (inclusive)."""
        if not 0 <= start <= end < self.num_snapshots:
            raise ValueError(f"bad window [{start}, {end}]")
        window = set(range(start, end + 1))
        g = Graph()
        for v in self._vertices:
            g.add_vertex(v)
        for (u, v), times in self._active.items():
            if window <= times:
                g.add_edge(u, v)
        return g


@dataclass(frozen=True)
class TemporalPattern:
    """(S, [start, end]): S is a γ-quasi-clique throughout the window."""

    vertices: frozenset[int]
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start + 1

    def cells(self) -> set[tuple[int, int]]:
        """(vertex, timestamp) coverage cells (the diversification unit)."""
        return {
            (v, t)
            for v in self.vertices
            for t in range(self.start, self.end + 1)
        }

    def dominates(self, other: "TemporalPattern") -> bool:
        """True iff self extends `other` in vertices and/or time."""
        return (
            self != other
            and other.vertices <= self.vertices
            and self.start <= other.start
            and other.end <= self.end
        )


@dataclass
class TemporalMiningResult:
    patterns: set[TemporalPattern] = field(default_factory=set)
    windows_mined: int = 0

    def __len__(self) -> int:
        return len(self.patterns)


def mine_temporal_patterns(
    tgraph: TemporalGraph,
    gamma: float,
    min_size: int,
    min_duration: int = 1,
    options: MinerOptions = DEFAULT_OPTIONS,
) -> TemporalMiningResult:
    """All maximal temporal γ-quasi-clique patterns of `tgraph`.

    Enumerate every window [s, e] with duration ≥ min_duration, mine the
    window's stable graph, then filter patterns dominated by another
    pattern with a superset vertex set over a superset window.
    """
    if min_duration < 1:
        raise ValueError("min_duration must be >= 1")
    raw: set[TemporalPattern] = set()
    windows = 0
    t_count = tgraph.num_snapshots
    for start in range(t_count):
        for end in range(start + min_duration - 1, t_count):
            stable = tgraph.stable_graph(start, end)
            windows += 1
            mined = mine_maximal_quasicliques(stable, gamma, min_size, options=options)
            for s in mined.maximal:
                raw.add(TemporalPattern(vertices=s, start=start, end=end))
    kept = {
        p for p in raw if not any(q.dominates(p) for q in raw)
    }
    return TemporalMiningResult(patterns=kept, windows_mined=windows)


def verify_pattern(
    tgraph: TemporalGraph, pattern: TemporalPattern, gamma: float
) -> bool:
    """True iff the pattern's set is a γ-QC in each snapshot of its window."""
    for t in range(pattern.start, pattern.end + 1):
        if not is_quasi_clique(tgraph.snapshot(t), pattern.vertices, gamma):
            return False
    return True


def diversified_top_k(
    patterns: Iterable[TemporalPattern], k: int
) -> list[TemporalPattern]:
    """Greedy max-coverage selection of k patterns ([42]'s diversification).

    Repeatedly pick the pattern covering the most not-yet-covered
    (vertex, timestamp) cells — the classic (1 − 1/e) greedy.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    pool = list(patterns)
    covered: set[tuple[int, int]] = set()
    chosen: list[TemporalPattern] = []
    while pool and len(chosen) < k:
        best = max(
            pool,
            key=lambda p: (
                len(p.cells() - covered),
                p.duration,
                len(p.vertices),
                # Deterministic tiebreak.
                tuple(sorted(p.vertices)),
            ),
        )
        gain = len(best.cells() - covered)
        if gain == 0:
            break
        chosen.append(best)
        covered |= best.cells()
        pool.remove(best)
    return chosen
