"""γ-quasi-clique definitions and predicates (paper Definitions 1–3).

A graph G = (V, E) is a γ-quasi-clique (0 ≤ γ ≤ 1) if it is connected
and every vertex v has degree d(v) ≥ ceil(γ·(|V|−1)). The mining
problem asks for all vertex sets S with |S| ≥ τ_size such that G(S) is
a *maximal* γ-quasi-clique: no strict superset S′ ⊃ S induces one.

All γ-arithmetic throughout the library goes through :func:`ceil_gamma`
and :func:`floor_div_gamma`, which guard against float representation
error (e.g. ``0.6 * 5 == 3.0000000000000004``) so that a γ given as
2/3 behaves like the rational it stands for.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from ..graph.adjacency import Graph
from ..graph.traversal import is_connected_subset

#: Tolerance absorbing float representation error in γ·x products.
GAMMA_EPS = 1e-9


def ceil_gamma(gamma: float, x: int) -> int:
    """ceil(γ·x), robust to float error; the degree floor everywhere."""
    return math.ceil(gamma * x - GAMMA_EPS)


def floor_div_gamma(value: float, gamma: float) -> int:
    """floor(value / γ), robust to float error (used by U_S^min, Eq. 3)."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return math.floor(value / gamma + GAMMA_EPS)


def degree_floor(gamma: float, size: int) -> int:
    """Minimum in-subgraph degree for a member of a γ-quasi-clique of `size`."""
    return ceil_gamma(gamma, size - 1)


def kcore_threshold(gamma: float, min_size: int) -> int:
    """k = ceil(γ·(τ_size−1)) from Theorem 2 (size-threshold pruning)."""
    return ceil_gamma(gamma, min_size - 1)


def is_quasi_clique(
    graph: Graph,
    vertex_set: Iterable[int],
    gamma: float,
    require_connected: bool = True,
) -> bool:
    """True iff G(S) is a γ-quasi-clique (Definition 1).

    For γ ≥ 0.5 the degree condition already implies connectivity
    (any two non-adjacent members must share a neighbor), but the check
    is cheap and keeps the predicate correct for every γ.
    """
    s = set(vertex_set)
    if not s:
        return False
    if any(not graph.has_vertex(v) for v in s):
        return False
    floor_deg = degree_floor(gamma, len(s))
    for v in s:
        if graph.degree_in(v, s) < floor_deg:
            return False
    if require_connected and not is_connected_subset(graph, s):
        return False
    return True


def is_valid_quasi_clique(
    graph: Graph, vertex_set: Iterable[int], gamma: float, min_size: int
) -> bool:
    """Definition 3 validity: γ-quasi-clique with |S| ≥ τ_size."""
    s = set(vertex_set)
    return len(s) >= min_size and is_quasi_clique(graph, s, gamma)


def quasi_clique_deficits(graph: Graph, vertex_set: Iterable[int], gamma: float) -> dict[int, int]:
    """Per-vertex degree shortfall (diagnostics): 0 means satisfied."""
    s = set(vertex_set)
    floor_deg = degree_floor(gamma, len(s))
    return {v: max(0, floor_deg - graph.degree_in(v, s)) for v in s}


def diameter_bound(gamma: float) -> int:
    """Upper bound on a γ-quasi-clique's diameter ([30] Theorem 1).

    The library targets γ ≥ 0.5 where the bound is 2; for smaller γ we
    return the general bound so callers can refuse or widen pulls.
    """
    if gamma >= 0.5:
        return 2
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    # General form from Pei et al.: diameter ≤ ceil(2/γ) − 1 is a safe
    # (loose) envelope; the codepaths in this library require γ ≥ 0.5.
    return math.ceil(2.0 / gamma) - 1
