"""Kernel-expansion acceleration for large quasi-cliques (paper §8 future work).

The paper's conclusion names Sanei-Mehri et al. [32] as the planned
extension: instead of mining γ-quasi-cliques directly, first mine
γ′-quasi-cliques for a *stricter* γ′ > γ — there are far fewer of them
and the tighter threshold prunes harder — then grow each such "kernel"
into a large γ-quasi-clique by greedy expansion. The result is a fast
*heuristic* enumerator for the top-k largest γ-quasi-cliques: [32] show
(and we re-verify in tests/benchmarks) that the error versus the exact
top-k is small, while the kernel mining is much cheaper.

The expansion keeps the invariant that the working set S remains a
γ-quasi-clique after every addition, so every returned set is valid by
construction; maximality is *not* guaranteed (matching [32], who run a
post-check — provided here as `postprocess` over the expanded sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.adjacency import Graph
from .miner import mine_maximal_quasicliques
from .options import MinerOptions, MiningStats, DEFAULT_OPTIONS
from .postprocess import remove_non_maximal
from .quasiclique import ceil_gamma, is_quasi_clique


@dataclass
class KernelExpansionResult:
    """Outcome of a kernel-expansion run."""

    top_k: list[frozenset[int]]  # largest expanded quasi-cliques, size-desc
    expanded: set[frozenset[int]]  # all expanded (maximality-filtered)
    kernels: set[frozenset[int]]  # the γ′-kernels that seeded expansion
    kernel_gamma: float
    stats: MiningStats = field(default_factory=MiningStats)

    def __len__(self) -> int:
        return len(self.top_k)


def expansion_candidates(graph: Graph, members: set[int]) -> set[int]:
    """Vertices adjacent to at least one member (the growth frontier)."""
    out: set[int] = set()
    for v in members:
        out |= graph.neighbor_set(v)
    return out - members


def expand_kernel(
    graph: Graph, kernel: frozenset[int], gamma: float
) -> frozenset[int]:
    """Greedily grow a kernel while it remains a γ-quasi-clique.

    Candidates are scored by their degree into the current set (ties by
    smaller vertex ID for determinism); a candidate is added only if the
    grown set still satisfies the γ floor for *every* member, so the
    invariant holds throughout. Stops when no candidate can join.
    """
    members = set(kernel)
    while True:
        best: int | None = None
        best_degree = -1
        floor_next = ceil_gamma(gamma, len(members))  # |S∪{u}| − 1 = |S|
        for u in sorted(expansion_candidates(graph, members)):
            d_u = graph.degree_in(u, members)
            if d_u < floor_next or d_u <= best_degree:
                continue
            # Candidate u clears its own floor; check it doesn't sink
            # an existing member below the grown set's floor.
            if all(
                graph.degree_in(v, members) + (1 if graph.has_edge(u, v) else 0)
                >= floor_next
                for v in members
            ):
                best = u
                best_degree = d_u
        if best is None:
            return frozenset(members)
        members.add(best)


def mine_kernels(
    graph: Graph,
    kernel_gamma: float,
    min_size: int,
    options: MinerOptions = DEFAULT_OPTIONS,
) -> tuple[set[frozenset[int]], MiningStats]:
    """Mine the γ′-kernels (QuickM role: maximality is irrelevant here).

    [32] use a Quick variant that skips the maximality check since
    expansion re-grows the sets anyway; we equivalently take the raw
    candidates of the exact miner at the stricter γ′.
    """
    result = mine_maximal_quasicliques(graph, kernel_gamma, min_size, options=options)
    # Raw candidates = maximal ∪ some non-maximal; all are valid kernels.
    return result.candidates, result.stats


def top_k_quasicliques(
    graph: Graph,
    gamma: float,
    k: int,
    min_size: int,
    kernel_gamma: float | None = None,
    options: MinerOptions = DEFAULT_OPTIONS,
) -> KernelExpansionResult:
    """Heuristic top-k largest γ-quasi-cliques via kernel expansion.

    ``kernel_gamma`` defaults to the midpoint between γ and 1 — strict
    enough to keep the kernel mining cheap, loose enough to seed every
    dense region. Larger values trade recall for speed.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if kernel_gamma is None:
        kernel_gamma = min(1.0, gamma + (1.0 - gamma) * 0.5)
    if kernel_gamma < gamma:
        raise ValueError(
            f"kernel_gamma ({kernel_gamma}) must be >= gamma ({gamma})"
        )
    kernels, stats = mine_kernels(graph, kernel_gamma, min_size, options=options)
    expanded: set[frozenset[int]] = set()
    for kernel in kernels:
        grown = expand_kernel(graph, kernel, gamma)
        assert is_quasi_clique(graph, grown, gamma)
        expanded.add(grown)
    expanded = remove_non_maximal(expanded)
    top = sorted(expanded, key=lambda s: (-len(s), sorted(s)))[:k]
    return KernelExpansionResult(
        top_k=top,
        expanded=expanded,
        kernels=kernels,
        kernel_gamma=kernel_gamma,
        stats=stats,
    )
