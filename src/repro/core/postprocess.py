"""Maximality postprocessing (paper Section 3.1).

Per-root tasks cannot see quasi-cliques whose smallest vertex is
smaller than their own root, so the union of all task outputs contains
every maximal valid quasi-clique plus possibly some non-maximal ones.
Because every valid quasi-clique is contained in some *maximal* valid
quasi-clique — and all of those are present — filtering proper subsets
against the result set itself yields exactly the maximal family.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from ..graph.adjacency import Graph
from .quasiclique import is_quasi_clique


def remove_non_maximal(results: Iterable[frozenset[int]]) -> set[frozenset[int]]:
    """Drop every result that is a proper subset of another result.

    Uses a vertex→results inverted index so each candidate is compared
    only against the (few) larger results sharing one of its vertices,
    instead of the full quadratic scan.
    """
    unique = sorted(set(results), key=len, reverse=True)
    kept: list[frozenset[int]] = []
    by_vertex: dict[int, list[int]] = defaultdict(list)
    out: set[frozenset[int]] = set()
    for s in unique:
        if not s:
            continue
        # Candidate supersets must contain an arbitrary member of s.
        probe = next(iter(s))
        is_subset = any(s < kept[idx] for idx in by_vertex[probe])
        if is_subset:
            continue
        idx = len(kept)
        kept.append(s)
        out.add(s)
        for v in s:
            by_vertex[v].append(idx)
    return out


def postprocess_results(
    results: Iterable[frozenset[int]],
    graph: Graph | None = None,
    gamma: float | None = None,
    min_size: int | None = None,
    verify: bool = False,
) -> set[frozenset[int]]:
    """Full postprocessing: optional re-verification, then maximality filter.

    ``verify=True`` re-checks every candidate against the original graph
    (validity + size); it is a safety net for engine modes that emit
    candidates from task-local subgraphs.
    """
    candidates = set(results)
    if verify:
        if graph is None or gamma is None or min_size is None:
            raise ValueError("verify=True requires graph, gamma, and min_size")
        candidates = {
            s
            for s in candidates
            if len(s) >= min_size and is_quasi_clique(graph, s, gamma)
        }
    return remove_non_maximal(candidates)
