"""Miner configuration, statistics counters, and result sinks.

Every pruning family can be toggled independently, which serves three
purposes: (1) the ablation benchmarks DESIGN.md calls out, (2) the
original-Quick baseline (`repro.core.quick`) that reproduces the result
misses the paper documents, and (3) fault isolation in tests.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MinerOptions:
    """Feature switches for the recursive miner. Defaults = full paper algorithm."""

    kcore_preprocess: bool = True  # (T1): shrink input to its ceil(γ(τ−1))-core
    use_diameter_prune: bool = True  # P1, Theorem 1
    use_degree_prune: bool = True  # P3, Theorems 3–4
    use_upper_bound: bool = True  # P4, Theorems 5–6
    use_lower_bound: bool = True  # P5, Theorems 7–8
    use_critical_vertex: bool = True  # P6, Theorem 9 (needs lower bound)
    use_cover_vertex: bool = True  # P7, Eq. 9
    use_lookahead: bool = True  # Quick's lookahead (Alg. 2 lines 8–10)
    # The two checks the paper adds over the original Quick; disabling
    # both reproduces Quick's documented result misses (Section 4).
    check_before_critical_expand: bool = True
    check_empty_ext_candidate: bool = True
    #: Run the hot path on compact-ID bitmask domains
    #: (:mod:`repro.core.domain`) instead of dict/set degree scans.
    #: Result-equivalent (same maximal quasi-cliques); off = the classic
    #: representation, kept as the measurable baseline.
    use_bitset_domain: bool = True

    def critical_vertex_enabled(self) -> bool:
        """P6 consumes L_S, so it silently degrades when P5 is off."""
        return self.use_critical_vertex and self.use_lower_bound


#: Full paper algorithm.
DEFAULT_OPTIONS = MinerOptions()

#: Full paper algorithm on the classic dict/set representation — the
#: baseline arm of the bitset-domain benchmarks and parity tests.
SET_PATH_OPTIONS = MinerOptions(use_bitset_domain=False)

#: The original Quick algorithm as characterized by the paper: no k-core
#: preprocessing (T1 notes Quick "somehow does not use this rule") and
#: missing the two candidate checks that cause it to miss results.
#: Pinned to the classic dict/set representation — Quick's documented
#: misses are traversal-order-dependent, and the baseline reproduces the
#: *original* code's walk, not the bitset-domain pivot order.
QUICK_OPTIONS = MinerOptions(
    kcore_preprocess=False,
    check_before_critical_expand=False,
    check_empty_ext_candidate=False,
    use_bitset_domain=False,
)


@dataclass
class MiningStats:
    """Counters kept by one mining run (cheap; used by ablations/Table 6)."""

    nodes_expanded: int = 0  # set-enumeration nodes entered
    bounding_rounds: int = 0  # iterations of the Alg. 1 repeat loop
    type1_pruned: int = 0  # vertices removed from ext(S)
    type2_pruned: int = 0  # subtrees killed by Type II rules
    critical_moves: int = 0  # Theorem 9 bulk moves
    cover_skipped: int = 0  # ext vertices parked in a cover tail
    lookahead_hits: int = 0
    candidates_emitted: int = 0
    mining_ops: int = 0  # abstract work units (virtual-clock cost model)

    def merge(self, other: "MiningStats") -> None:
        self.nodes_expanded += other.nodes_expanded
        self.bounding_rounds += other.bounding_rounds
        self.type1_pruned += other.type1_pruned
        self.type2_pruned += other.type2_pruned
        self.critical_moves += other.critical_moves
        self.cover_skipped += other.cover_skipped
        self.lookahead_hits += other.lookahead_hits
        self.candidates_emitted += other.candidates_emitted
        self.mining_ops += other.mining_ops


class ResultSink:
    """Deduplicating collector standing in for the paper's result file."""

    def __init__(self) -> None:
        self._results: set[frozenset[int]] = set()

    def emit(self, vertices: Iterable[int]) -> None:
        self._results.add(frozenset(vertices))

    def results(self) -> set[frozenset[int]]:
        return set(self._results)

    def __len__(self) -> int:
        return len(self._results)


class ThreadSafeResultSink(ResultSink):
    """Sink shared by concurrent mining threads in the G-thinker engine."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def emit(self, vertices: Iterable[int]) -> None:
        fs = frozenset(vertices)
        with self._lock:
            self._results.add(fs)

    def results(self) -> set[frozenset[int]]:
        with self._lock:
            return set(self._results)

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)


@dataclass
class MiningJob:
    """Immutable-ish bundle threaded through the recursive algorithms."""

    graph: object  # repro.graph.adjacency.Graph
    gamma: float
    min_size: int
    sink: ResultSink
    options: MinerOptions = DEFAULT_OPTIONS
    stats: MiningStats = field(default_factory=MiningStats)

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.gamma < 0.5:
            raise ValueError(
                "this library implements the γ ≥ 0.5 regime (diameter ≤ 2); "
                f"got gamma={self.gamma}"
            )
        if self.min_size < 1:
            raise ValueError(f"min_size must be ≥ 1, got {self.min_size}")
