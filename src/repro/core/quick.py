"""The original Quick algorithm [27] as a baseline.

The paper characterizes Quick as (a) skipping the Theorem 2 k-core
preprocessing, (b) not examining G(S) before a critical-vertex
expansion, and (c) not examining G(S′) when diameter pruning empties
ext(S′) — (b) and (c) make Quick *miss results*. This module reuses the
shared machinery with those behaviors switched off, so benchmark
comparisons isolate exactly the paper's claimed deltas.

The baseline also stays on the classic dict/set hot path
(``use_bitset_domain=False``): which results Quick misses depends on
its traversal order, and the bitset domain pivots in ascending
compact-ID order rather than Quick's cover-tail list order. The
corrected algorithm is order-insensitive (it finds *all* maximal
results either way), so it runs on the bitset default.
"""

from __future__ import annotations

from ..graph.adjacency import Graph
from .miner import MiningResult, mine_maximal_quasicliques
from .options import QUICK_OPTIONS, MinerOptions


def mine_quick(graph: Graph, gamma: float, min_size: int) -> MiningResult:
    """Run the original-Quick baseline (may miss maximal results)."""
    return mine_maximal_quasicliques(
        graph, gamma, min_size, options=QUICK_OPTIONS, mode="global"
    )


def mine_quick_with_kcore(graph: Graph, gamma: float, min_size: int) -> MiningResult:
    """Quick plus the Theorem 2 k-core shrink — the (T1) ablation arm."""
    opts = MinerOptions(
        kcore_preprocess=True,
        check_before_critical_expand=False,
        check_empty_ext_candidate=False,
        use_bitset_domain=False,
    )
    return mine_maximal_quasicliques(graph, gamma, min_size, options=opts, mode="global")


def missed_results(
    graph: Graph, gamma: float, min_size: int
) -> set[frozenset[int]]:
    """Maximal quasi-cliques the full algorithm finds but Quick does not."""
    full = mine_maximal_quasicliques(graph, gamma, min_size)
    quick = mine_quick(graph, gamma, min_size)
    return full.maximal - quick.maximal
