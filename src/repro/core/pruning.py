"""Pruning rules P1–P7 (paper Section 3.2, Theorems 1–9, Eq. 9).

Each predicate is a pure function of the degree/bound snapshot so the
rules are unit-testable in isolation and reusable by both the serial
miner and the G-thinker task algorithms. Two rule types exist:

* **Type I** — remove a vertex u from ext(S): no valid quasi-clique
  extends S∪{u} within S∪ext(S).
* **Type II** — stop extending S: no valid quasi-clique S′ with
  S ⊂ S′ ⊆ S∪ext(S) exists (some rules also rule out S′ = S).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..graph.adjacency import Graph
from .degrees import DegreeView
from .domain import TaskDomain, bits
from .quasiclique import ceil_gamma


class Type2Outcome(Enum):
    """Result of the Type II battery for one vertex v ∈ S."""

    NONE = "none"  # no rule fired
    EXT_ONLY = "ext_only"  # Theorem 4 Condition (i): extensions die, S survives
    ALL = "all"  # extensions *and* S die (Thm 4(ii), 6, 8)


# -- P3: degree-based pruning --------------------------------------------


def type1_degree_prunable(gamma: float, s_size: int, d_s_u: int, d_ext_u: int) -> bool:
    """Theorem 3: prune u ∈ ext if d_S(u)+d_ext(u) < ceil(γ(|S|+d_ext(u)))."""
    return d_s_u + d_ext_u < ceil_gamma(gamma, s_size + d_ext_u)


def type2_degree_check(gamma: float, s_size: int, d_s_v: int, d_ext_v: int) -> Type2Outcome:
    """Theorem 4 on one v ∈ S.

    Condition (ii) — d_S(v)+d_ext(v) < ceil(γ(|S|−1+d_ext(v))) — kills S
    and every extension. Condition (i) — d_S(v) < ceil(γ|S|) with
    d_ext(v) = 0 — kills only proper extensions; G(S) itself survives.
    """
    if d_s_v + d_ext_v < ceil_gamma(gamma, s_size - 1 + d_ext_v):
        return Type2Outcome.ALL
    if d_ext_v == 0 and d_s_v < ceil_gamma(gamma, s_size):
        return Type2Outcome.EXT_ONLY
    return Type2Outcome.NONE


# -- P4: upper-bound pruning ---------------------------------------------


def type1_upper_prunable(gamma: float, s_size: int, d_s_u: int, upper: int) -> bool:
    """Theorem 5: prune u ∈ ext if d_S(u)+U_S−1 < ceil(γ(|S|+U_S−1))."""
    return d_s_u + upper - 1 < ceil_gamma(gamma, s_size + upper - 1)


def type2_upper_prunable(gamma: float, s_size: int, d_s_v: int, upper: int) -> bool:
    """Theorem 6: kill S and extensions if d_S(v)+U_S < ceil(γ(|S|+U_S−1))."""
    return d_s_v + upper < ceil_gamma(gamma, s_size + upper - 1)


# -- P5: lower-bound pruning ---------------------------------------------


def type1_lower_prunable(
    gamma: float, s_size: int, d_s_u: int, d_ext_u: int, lower: int
) -> bool:
    """Theorem 7: prune u ∈ ext if d_S(u)+d_ext(u) < ceil(γ(|S|+L_S−1))."""
    return d_s_u + d_ext_u < ceil_gamma(gamma, s_size + lower - 1)


def type2_lower_prunable(
    gamma: float, s_size: int, d_s_v: int, d_ext_v: int, lower: int
) -> bool:
    """Theorem 8: kill S and extensions if d_S(v)+d_ext(v) < ceil(γ(|S|+L_S−1))."""
    return d_s_v + d_ext_v < ceil_gamma(gamma, s_size + lower - 1)


# -- P6: critical-vertex pruning ------------------------------------------


def find_critical_vertex(
    gamma: float, s_size: int, view: DegreeView, lower: int
) -> int | None:
    """Definition 4: v ∈ S with d_S(v)+d_ext(v) == ceil(γ(|S|+L_S−1)).

    Only vertices with at least one ext neighbor qualify here — a
    critical vertex with Γ_ext(v) = ∅ makes Theorem 9 vacuous and
    returning it would stall the caller's move-to-S step.
    """
    target = ceil_gamma(gamma, s_size + lower - 1)
    for v, d_s in view.in_s_of_s.items():
        d_ext = view.in_ext_of_s[v]
        if d_ext > 0 and d_s + d_ext == target:
            return v
    return None


# -- P7: cover-vertex pruning ----------------------------------------------


@dataclass
class CoverVertex:
    """The selected cover vertex and its covered ext subset (Eq. 9)."""

    vertex: int
    covered: set[int]


def cover_set(
    graph: Graph, s_set: set[int], ext_set: set[int], gamma: float, view: DegreeView
) -> CoverVertex | None:
    """Best cover vertex u ∈ ext maximizing |C_S(u)| (Eq. 9).

    C_S(u) = Γ_ext(u) ∩ ⋂_{v∈S, v∉Γ(u)} Γ(v). Applicable only when
    d_S(u) ≥ ceil(γ|S|) and every S-vertex non-adjacent to u also has
    d_S(v) ≥ ceil(γ|S|); otherwise Theorems 3/4 subsume the pruning.
    Any quasi-clique built from S ∪ (subset of C_S(u)) stays valid when
    u joins, hence is non-maximal and its subtree can be skipped.
    """
    if not ext_set:
        return None
    threshold = ceil_gamma(gamma, len(s_set))
    best: CoverVertex | None = None
    best_size = 0
    for u in ext_set:
        if view.in_s_of_ext.get(u, 0) < threshold:
            continue
        gamma_ext_u = [w for w in graph.neighbors(u) if w in ext_set]
        # Paper's short-circuit: |Γ_ext(u)| already below the best found.
        if len(gamma_ext_u) <= best_size:
            continue
        u_nbrs = graph.neighbor_set(u)
        covered = set(gamma_ext_u)
        applicable = True
        for v in s_set:
            if v in u_nbrs:
                continue
            if view.in_s_of_s[v] < threshold:
                applicable = False
                break
            covered &= graph.neighbor_set(v)
            if len(covered) <= best_size:
                break
        if not applicable or len(covered) <= best_size:
            continue
        best = CoverVertex(vertex=u, covered=covered)
        best_size = len(covered)
    return best


@dataclass
class CoverVertexMask:
    """Mask-native cover selection: local vertex + covered ext mask (Eq. 9)."""

    vertex: int
    covered_mask: int


def cover_set_masked(
    domain: TaskDomain, s_mask: int, ext_mask: int, gamma: float, view: DegreeView
) -> CoverVertexMask | None:
    """Best cover vertex over a bitmask domain (Eq. 9).

    Same rule as :func:`cover_set` with set algebra replaced by word
    operations: Γ_ext(u) is one AND, each ⋂ Γ(v) step one more. The
    tie-break differs only in iteration order (ascending local ID vs
    set order), which affects which of several equally-large cover sets
    wins — never whether one is found, nor its size.
    """
    if not ext_mask:
        return None
    adj = domain.adj
    threshold = ceil_gamma(gamma, s_mask.bit_count())
    best: CoverVertexMask | None = None
    best_size = 0
    for u in bits(ext_mask):
        if view.in_s_of_ext.get(u, 0) < threshold:
            continue
        gamma_ext_u = adj[u] & ext_mask
        if gamma_ext_u.bit_count() <= best_size:
            continue
        covered = gamma_ext_u
        applicable = True
        for v in bits(s_mask & ~adj[u]):
            if view.in_s_of_s[v] < threshold:
                applicable = False
                break
            covered &= adj[v]
            if covered.bit_count() <= best_size:
                break
        if not applicable or covered.bit_count() <= best_size:
            continue
        best = CoverVertexMask(vertex=u, covered_mask=covered)
        best_size = covered.bit_count()
    return best


# -- P1: diameter pruning ----------------------------------------------------


def diameter_filter(graph: Graph, anchor: int, candidates: list[int]) -> list[int]:
    """Theorem 1 increment: keep candidates within 2 hops of `anchor`.

    Candidate order is preserved — the caller relies on list order for
    the set-enumeration walk and the cover-set tail placement.
    """
    anchor_nbrs = graph.neighbor_set(anchor)
    two_hop: set[int] = set()
    for w in anchor_nbrs:
        two_hop |= graph.neighbor_set(w)
    return [u for u in candidates if u in anchor_nbrs or u in two_hop]


def diameter_filter_masked(domain: TaskDomain, anchor: int, cand_mask: int) -> int:
    """Theorem 1 increment over a bitmask domain: two ORs and one AND.

    Masks have no element order to preserve — the set-enumeration walk
    over a mask always pivots in ascending local-ID order, and the
    cover tail is excluded by mask, not by list position.
    """
    return cand_mask & domain.two_hop_mask(anchor)
