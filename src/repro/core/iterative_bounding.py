"""The iterative bound-based pruning subprocedure (paper Algorithm 1).

Given a mining state ⟨S, ext(S)⟩, repeatedly: recompute degrees and the
U_S/L_S bounds, apply critical-vertex moves (Theorem 9), run the
Type II battery over S (Theorems 4, 6, 8), then the Type I battery over
ext(S) (Theorems 3, 5, 7). Each Type I removal changes degrees and may
enable further pruning, so the loop repeats until ext(S) empties or a
full pass removes nothing.

Returns True iff the *extensions* of S are pruned; when that happens
and G(S) itself remains a viable candidate, S is checked and emitted
here (the paper's fix over Quick). Both ``s_list`` and ``ext_list`` are
mutated in place: critical moves grow S, Type I pruning shrinks ext —
the caller continues with the mutated state, matching the reference-
passing semantics of the paper's pseudocode.

:func:`iterative_bounding_masked` is the bitset twin running on a
:class:`repro.core.domain.TaskDomain`; masks are immutable ints, so it
returns the updated ⟨S, ext⟩ instead of mutating arguments.
"""

from __future__ import annotations

from ..graph.adjacency import Graph
from .bounds import lower_bound, upper_bound
from .degrees import (
    DegreeView,
    compute_degrees,
    compute_degrees_masked,
    compute_ee_degrees,
    compute_ee_degrees_masked,
)
from .domain import TaskDomain, bits, is_quasi_clique_masked
from .options import MiningJob
from .pruning import (
    Type2Outcome,
    find_critical_vertex,
    type1_degree_prunable,
    type1_lower_prunable,
    type1_upper_prunable,
    type2_degree_check,
    type2_lower_prunable,
    type2_upper_prunable,
)
from .quasiclique import is_quasi_clique

# Sentinel actions from the bound computation.
_OK = "ok"
_PRUNE_SILENT = "prune_silent"  # S and extensions die, no candidate check
_PRUNE_CHECK_S = "prune_check_s"  # extensions die, G(S) still a candidate


def check_and_emit(job: MiningJob, s_list: list[int]) -> bool:
    """Emit S as a candidate iff |S| ≥ τ_size and G(S) is a γ-quasi-clique."""
    if len(s_list) >= job.min_size and is_quasi_clique(job.graph, s_list, job.gamma):
        job.sink.emit(s_list)
        job.stats.candidates_emitted += 1
        return True
    return False


def check_and_emit_masked(job: MiningJob, domain: TaskDomain, s_mask: int) -> bool:
    """Mask-native `check_and_emit`: validity via popcounts, emission global."""
    if s_mask.bit_count() >= job.min_size and is_quasi_clique_masked(
        domain, s_mask, job.gamma
    ):
        job.sink.emit(domain.globals_of(s_mask))
        job.stats.candidates_emitted += 1
        return True
    return False


def _compute_bounds(
    job: MiningJob, s_size: int, view: DegreeView
) -> tuple[int | None, int | None, str]:
    """(U_S, L_S, action) with the paper's Type II semantics on failure.

    An L_S failure (Eq. 7 or Eq. 8 infeasible) certifies S itself misses
    the degree floor → silent prune. A U_S failure (Eq. 4 infeasible)
    prunes extensions but G(S) must still be examined. U_S < L_S prunes
    silently (L_S ≥ 1 holds whenever that comparison can trigger).
    """
    opts = job.options
    l_s: int | None = None
    u_s: int | None = None
    if opts.use_lower_bound:
        l_s = lower_bound(job.gamma, s_size, view)
        if l_s is None:
            return None, None, _PRUNE_SILENT
    if opts.use_upper_bound:
        u_s = upper_bound(job.gamma, s_size, view)
        if u_s is None:
            return None, None, _PRUNE_CHECK_S
    if u_s is not None and l_s is not None and u_s < l_s:
        return u_s, l_s, _PRUNE_SILENT
    return u_s, l_s, _OK


def iterative_bounding(job: MiningJob, s_list: list[int], ext_list: list[int]) -> bool:
    """Paper Algorithm 1. True iff extending S (beyond S itself) is pruned."""
    if not s_list:
        raise ValueError("iterative_bounding requires a non-empty S")
    graph: Graph = job.graph
    gamma = job.gamma
    opts = job.options
    stats = job.stats

    while True:
        stats.bounding_rounds += 1
        s_set = set(s_list)
        ext_set = set(ext_list)
        stats.mining_ops += len(s_set) + len(ext_set)
        view = compute_degrees(graph, s_set, ext_set)
        u_s, l_s, action = _compute_bounds(job, len(s_set), view)
        if action == _PRUNE_SILENT:
            stats.type2_pruned += 1
            return True
        if action == _PRUNE_CHECK_S:
            stats.type2_pruned += 1
            check_and_emit(job, s_list)
            return True

        # -- Part 1: critical-vertex move (Theorem 9) -------------------
        if opts.critical_vertex_enabled() and l_s is not None:
            critical = find_critical_vertex(gamma, len(s_set), view, l_s)
            if critical is not None:
                # The paper's fix over Quick: G(S) may be maximal even
                # though the forced expansion fails, so check S first.
                if opts.check_before_critical_expand:
                    check_and_emit(job, s_list)
                moved = graph.neighbors_in(critical, ext_set)
                s_list.extend(moved)
                moved_set = set(moved)
                ext_list[:] = [u for u in ext_list if u not in moved_set]
                stats.critical_moves += 1
                if not ext_list:
                    break  # paper: skip straight to the ext-empty epilogue
                s_set = set(s_list)
                ext_set = set(ext_list)
                view = compute_degrees(graph, s_set, ext_set)
                u_s, l_s, action = _compute_bounds(job, len(s_set), view)
                if action == _PRUNE_SILENT:
                    stats.type2_pruned += 1
                    return True
                if action == _PRUNE_CHECK_S:
                    stats.type2_pruned += 1
                    check_and_emit(job, s_list)
                    return True

        # -- Part 2: Type II battery over S ------------------------------
        ext_only_fired = False
        for v in s_list:
            d_s_v = view.in_s_of_s[v]
            d_ext_v = view.in_ext_of_s[v]
            if opts.use_degree_prune:
                outcome = type2_degree_check(gamma, len(s_set), d_s_v, d_ext_v)
                if outcome is Type2Outcome.ALL:
                    stats.type2_pruned += 1
                    return True
                if outcome is Type2Outcome.EXT_ONLY:
                    ext_only_fired = True
            if (
                opts.use_upper_bound
                and u_s is not None
                and type2_upper_prunable(gamma, len(s_set), d_s_v, u_s)
            ):
                stats.type2_pruned += 1
                return True
            if (
                opts.use_lower_bound
                and l_s is not None
                and type2_lower_prunable(gamma, len(s_set), d_s_v, d_ext_v, l_s)
            ):
                stats.type2_pruned += 1
                return True
        if ext_only_fired:
            # Theorem 4 Condition (i): extensions die but G(S) survives.
            stats.type2_pruned += 1
            check_and_emit(job, s_list)
            return True

        # -- Part 3: Type I battery over ext(S) --------------------------
        ee = compute_ee_degrees(graph, ext_set, view)
        stats.mining_ops += len(ext_set)
        removed: set[int] = set()
        for u in ext_list:
            d_s_u = view.in_s_of_ext[u]
            d_ext_u = ee[u]
            prune = (
                opts.use_degree_prune
                and type1_degree_prunable(gamma, len(s_set), d_s_u, d_ext_u)
            )
            if not prune and opts.use_upper_bound and u_s is not None:
                prune = type1_upper_prunable(gamma, len(s_set), d_s_u, u_s)
            if not prune and opts.use_lower_bound and l_s is not None:
                prune = type1_lower_prunable(gamma, len(s_set), d_s_u, d_ext_u, l_s)
            if prune:
                removed.add(u)
        if removed:
            stats.type1_pruned += len(removed)
            ext_list[:] = [u for u in ext_list if u not in removed]
        if not ext_list:
            break  # C1: nothing left to extend with
        if not removed:
            return False  # C2: ext stable and non-empty — caller recurses

    # ext(S) = ∅ — only G(S) itself remains a candidate.
    check_and_emit(job, s_list)
    return True


def iterative_bounding_masked(
    job: MiningJob, domain: TaskDomain, s_mask: int, ext_mask: int
) -> tuple[bool, int, int]:
    """Mask-native Algorithm 1 over a :class:`TaskDomain`.

    Same control flow as :func:`iterative_bounding`, but ⟨S, ext(S)⟩
    are bitmasks: degree snapshots are popcounts, the critical-vertex
    bulk move is `adj[v] & ext_mask`, and a Type I pass removes its
    victims with one AND-NOT. Masks are values, not in-place lists, so
    the (possibly grown/shrunk) state is returned:
    ``(extensions_pruned, s_mask, ext_mask)``.
    """
    if not s_mask:
        raise ValueError("iterative_bounding requires a non-empty S")
    gamma = job.gamma
    opts = job.options
    stats = job.stats
    adj = domain.adj

    while True:
        stats.bounding_rounds += 1
        s_size = s_mask.bit_count()
        stats.mining_ops += s_size + ext_mask.bit_count()
        view = compute_degrees_masked(domain, s_mask, ext_mask)
        u_s, l_s, action = _compute_bounds(job, s_size, view)
        if action == _PRUNE_SILENT:
            stats.type2_pruned += 1
            return True, s_mask, ext_mask
        if action == _PRUNE_CHECK_S:
            stats.type2_pruned += 1
            check_and_emit_masked(job, domain, s_mask)
            return True, s_mask, ext_mask

        # -- Part 1: critical-vertex move (Theorem 9) -------------------
        if opts.critical_vertex_enabled() and l_s is not None:
            critical = find_critical_vertex(gamma, s_size, view, l_s)
            if critical is not None:
                if opts.check_before_critical_expand:
                    check_and_emit_masked(job, domain, s_mask)
                moved = adj[critical] & ext_mask
                s_mask |= moved
                ext_mask &= ~moved
                stats.critical_moves += 1
                if not ext_mask:
                    break  # paper: skip straight to the ext-empty epilogue
                s_size = s_mask.bit_count()
                view = compute_degrees_masked(domain, s_mask, ext_mask)
                u_s, l_s, action = _compute_bounds(job, s_size, view)
                if action == _PRUNE_SILENT:
                    stats.type2_pruned += 1
                    return True, s_mask, ext_mask
                if action == _PRUNE_CHECK_S:
                    stats.type2_pruned += 1
                    check_and_emit_masked(job, domain, s_mask)
                    return True, s_mask, ext_mask

        # -- Part 2: Type II battery over S ------------------------------
        ext_only_fired = False
        for v in bits(s_mask):
            d_s_v = view.in_s_of_s[v]
            d_ext_v = view.in_ext_of_s[v]
            if opts.use_degree_prune:
                outcome = type2_degree_check(gamma, s_size, d_s_v, d_ext_v)
                if outcome is Type2Outcome.ALL:
                    stats.type2_pruned += 1
                    return True, s_mask, ext_mask
                if outcome is Type2Outcome.EXT_ONLY:
                    ext_only_fired = True
            if (
                opts.use_upper_bound
                and u_s is not None
                and type2_upper_prunable(gamma, s_size, d_s_v, u_s)
            ):
                stats.type2_pruned += 1
                return True, s_mask, ext_mask
            if (
                opts.use_lower_bound
                and l_s is not None
                and type2_lower_prunable(gamma, s_size, d_s_v, d_ext_v, l_s)
            ):
                stats.type2_pruned += 1
                return True, s_mask, ext_mask
        if ext_only_fired:
            # Theorem 4 Condition (i): extensions die but G(S) survives.
            stats.type2_pruned += 1
            check_and_emit_masked(job, domain, s_mask)
            return True, s_mask, ext_mask

        # -- Part 3: Type I battery over ext(S) --------------------------
        ee = compute_ee_degrees_masked(domain, ext_mask, view)
        stats.mining_ops += ext_mask.bit_count()
        removed = 0
        for u in bits(ext_mask):
            d_s_u = view.in_s_of_ext[u]
            d_ext_u = ee[u]
            prune = (
                opts.use_degree_prune
                and type1_degree_prunable(gamma, s_size, d_s_u, d_ext_u)
            )
            if not prune and opts.use_upper_bound and u_s is not None:
                prune = type1_upper_prunable(gamma, s_size, d_s_u, u_s)
            if not prune and opts.use_lower_bound and l_s is not None:
                prune = type1_lower_prunable(gamma, s_size, d_s_u, d_ext_u, l_s)
            if prune:
                removed |= 1 << u
        if removed:
            stats.type1_pruned += removed.bit_count()
            ext_mask &= ~removed
        if not ext_mask:
            break  # C1: nothing left to extend with
        if not removed:
            return False, s_mask, ext_mask  # C2: ext stable — caller recurses

    # ext(S) = ∅ — only G(S) itself remains a candidate.
    check_and_emit_masked(job, domain, s_mask)
    return True, s_mask, ext_mask
