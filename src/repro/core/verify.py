"""Result verification: audit a mined quasi-clique family.

Downstream users feeding this library's output into pipelines (or
comparing against other miners) need a one-call audit: are all sets
valid γ-quasi-cliques, size-filtered, and mutually maximal? For small
graphs the audit can also check *global* maximality and completeness
against the brute-force oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.adjacency import Graph
from .naive import MAX_ORACLE_VERTICES, enumerate_maximal_quasicliques
from .quasiclique import is_quasi_clique


@dataclass
class VerificationReport:
    """Outcome of a result audit; `ok` is the headline verdict."""

    checked: int = 0
    invalid: list[frozenset[int]] = field(default_factory=list)  # not a γ-QC
    undersized: list[frozenset[int]] = field(default_factory=list)
    dominated: list[tuple[frozenset[int], frozenset[int]]] = field(default_factory=list)
    missing: list[frozenset[int]] = field(default_factory=list)  # oracle-only
    oracle_checked: bool = False

    @property
    def ok(self) -> bool:
        return not (self.invalid or self.undersized or self.dominated or self.missing)

    def summary(self) -> str:
        if self.ok:
            scope = "oracle-complete" if self.oracle_checked else "internally consistent"
            return f"OK: {self.checked} results, {scope}"
        return (
            f"FAILED: {len(self.invalid)} invalid, {len(self.undersized)} undersized, "
            f"{len(self.dominated)} dominated, {len(self.missing)} missing"
        )


def verify_results(
    graph: Graph,
    results: set[frozenset[int]],
    gamma: float,
    min_size: int,
    against_oracle: bool = False,
) -> VerificationReport:
    """Audit `results` as the maximal γ-quasi-clique family of `graph`.

    Checks, in order: every set is a valid γ-quasi-clique; every set
    meets the size threshold; no result is a strict subset of another
    (mutual maximality). With ``against_oracle=True`` (tiny graphs
    only), also checks completeness and global maximality by power-set
    enumeration.
    """
    report = VerificationReport(checked=len(results))
    for s in results:
        if len(s) < min_size:
            report.undersized.append(s)
        if not is_quasi_clique(graph, s, gamma):
            report.invalid.append(s)
    ordered = sorted(results, key=len)
    for i, s in enumerate(ordered):
        for bigger in ordered[i + 1 :]:
            if s < bigger:
                report.dominated.append((s, bigger))
                break
    if against_oracle:
        if graph.num_vertices > MAX_ORACLE_VERTICES:
            raise ValueError(
                f"oracle verification limited to {MAX_ORACLE_VERTICES} vertices"
            )
        truth = enumerate_maximal_quasicliques(graph, gamma, min_size)
        report.missing = sorted(truth - results, key=len)
        report.oracle_checked = True
    return report
