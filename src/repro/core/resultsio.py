"""Result-file persistence and streaming postprocessing.

The paper's system appends candidate quasi-cliques to a *result file*
as tasks emit them, and runs maximality postprocessing as a separate
phase (their released code even ships without it). These helpers make
that workflow concrete: append-only writers usable from concurrent
sinks, a reader, and a file-to-file postprocess that deduplicates and
removes non-maximal candidates.

Format: one vertex set per line, space-separated sorted IDs; `#` lines
are comments. Stable across runs, diff-friendly, and identical to the
CLI's --output format.

Crash-safety contract (the mining service and ResumableMiner rely on
it):

* :func:`write_results` is atomic — it writes a temp file in the same
  directory, fsyncs, then ``os.replace``s it over the destination, so
  readers never observe a half-written file;
* :meth:`FileResultSink.flush` fsyncs, so flushed candidates survive a
  ``kill -9`` (or power loss) of the writing process;
* :func:`read_results` tolerates a crash-truncated *trailing* line
  (one cut mid-write, recognizable by the missing final newline) with
  a :class:`RuntimeWarning` instead of raising — the same policy the
  spill files apply to batches torn by a dying worker — and append
  mode drops such a torn tail before writing, so a resumed run never
  splices new candidates onto half of an old line.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections.abc import Iterable

from .postprocess import remove_non_maximal


def write_results(
    results: Iterable[frozenset[int]],
    path: str | os.PathLike,
    header: str | None = None,
) -> int:
    """Write vertex sets one per line (size-descending); returns the count.

    Atomic: the content lands in ``<path>.tmp.<pid>`` first and is
    fsynced before an ``os.replace`` over ``path``, so a crash leaves
    either the old file or the complete new one, never a torn mix.
    """
    ordered = sorted(set(results), key=lambda s: (-len(s), sorted(s)))
    dest = os.fspath(path)
    tmp = f"{dest}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as f:
            if header:
                for line in header.splitlines():
                    f.write(f"# {line}\n")
            for s in ordered:
                f.write(" ".join(str(v) for v in sorted(s)) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, dest)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return len(ordered)


def read_results(path: str | os.PathLike) -> set[frozenset[int]]:
    """Read a result file back into a set of frozensets.

    A trailing line without a final newline is a crash-truncated write
    (every writer here terminates lines atomically-in-order); it is
    skipped with a :class:`RuntimeWarning` rather than parsed, since
    half a line can decode to a *different* valid vertex set.
    """
    with open(path) as f:
        text = f.read()
    lines = text.splitlines()
    torn_tail = bool(text) and not text.endswith("\n")
    out: set[frozenset[int]] = set()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if torn_tail and i == len(lines) - 1:
            warnings.warn(
                f"result file {os.fspath(path)}: ignoring crash-truncated "
                f"trailing line {line!r} (no final newline)",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        out.add(frozenset(int(tok) for tok in line.split()))
    return out


def postprocess_file(
    src: str | os.PathLike, dst: str | os.PathLike
) -> tuple[int, int]:
    """Maximality-filter a result file; returns (#read, #kept)."""
    candidates = read_results(src)
    kept = remove_non_maximal(candidates)
    write_results(kept, dst, header=f"postprocessed from {os.fspath(src)}")
    return len(candidates), len(kept)


def _drop_torn_tail(path: str) -> None:
    """Truncate `path` back to its last complete line (no-op when clean).

    Append-mode writers call this before opening: a predecessor killed
    mid-write leaves half a line, and appending after it would splice
    two vertex sets into one bogus line.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size == 0:
        return
    with open(path, "rb+") as f:
        data = f.read()
        if data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 when no complete line survives
        f.truncate(keep)


class FileResultSink:
    """Append-as-you-go sink writing candidates to a result file.

    The paper's "Append S to the result file" made literal: emissions
    are flushed immediately so a killed job keeps everything it found.
    Thread-safe; also deduplicates in memory like the standard sink.

    ``mode='a'`` re-opens an existing file for appending (repairing a
    crash-torn trailing line first); ``seen`` pre-seeds the in-memory
    dedup set, e.g. with candidates recovered from a checkpoint.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        mode: str = "w",
        seen: Iterable[frozenset[int]] | None = None,
    ):
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        self._seen: set[frozenset[int]] = set(seen) if seen is not None else set()
        if mode == "a":
            _drop_torn_tail(self._path)
        self._file = open(self._path, mode)

    def emit(self, vertices: Iterable[int]) -> None:
        fs = frozenset(vertices)
        with self._lock:
            if fs in self._seen:
                return
            self._seen.add(fs)
            self._file.write(" ".join(str(v) for v in sorted(fs)) + "\n")
            self._file.flush()

    def flush(self) -> None:
        """Flush *and fsync*: everything emitted so far survives kill -9."""
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                os.fsync(self._file.fileno())

    def results(self) -> set[frozenset[int]]:
        with self._lock:
            return set(self._seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "FileResultSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
