"""Result-file persistence and streaming postprocessing.

The paper's system appends candidate quasi-cliques to a *result file*
as tasks emit them, and runs maximality postprocessing as a separate
phase (their released code even ships without it). These helpers make
that workflow concrete: append-only writers usable from concurrent
sinks, a reader, and a file-to-file postprocess that deduplicates and
removes non-maximal candidates.

Format: one vertex set per line, space-separated sorted IDs; `#` lines
are comments. Stable across runs, diff-friendly, and identical to the
CLI's --output format.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterable

from .postprocess import remove_non_maximal


def write_results(
    results: Iterable[frozenset[int]],
    path: str | os.PathLike,
    header: str | None = None,
) -> int:
    """Write vertex sets one per line (size-descending); returns the count."""
    ordered = sorted(set(results), key=lambda s: (-len(s), sorted(s)))
    with open(path, "w") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        for s in ordered:
            f.write(" ".join(str(v) for v in sorted(s)) + "\n")
    return len(ordered)


def read_results(path: str | os.PathLike) -> set[frozenset[int]]:
    """Read a result file back into a set of frozensets."""
    out: set[frozenset[int]] = set()
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            out.add(frozenset(int(tok) for tok in line.split()))
    return out


def postprocess_file(
    src: str | os.PathLike, dst: str | os.PathLike
) -> tuple[int, int]:
    """Maximality-filter a result file; returns (#read, #kept)."""
    candidates = read_results(src)
    kept = remove_non_maximal(candidates)
    write_results(kept, dst, header=f"postprocessed from {os.fspath(src)}")
    return len(candidates), len(kept)


class FileResultSink:
    """Append-as-you-go sink writing candidates to a result file.

    The paper's "Append S to the result file" made literal: emissions
    are flushed immediately so a killed job keeps everything it found.
    Thread-safe; also deduplicates in memory like the standard sink.
    """

    def __init__(self, path: str | os.PathLike):
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        self._seen: set[frozenset[int]] = set()
        self._file = open(self._path, "w")

    def emit(self, vertices: Iterable[int]) -> None:
        fs = frozenset(vertices)
        with self._lock:
            if fs in self._seen:
                return
            self._seen.add(fs)
            self._file.write(" ".join(str(v) for v in sorted(fs)) + "\n")
            self._file.flush()

    def results(self) -> set[frozenset[int]]:
        with self._lock:
            return set(self._seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "FileResultSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
