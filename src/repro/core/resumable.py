"""Resumable mining with root-granularity checkpoints.

The paper's YouTube run computes for 3.12 hours on a cluster — at that
scale a killed job must not restart from zero. The natural checkpoint
grain in this decomposition is the *spawn root*: each root's task tree
is independent, and all results of the job are the union over roots.
This runner processes roots in ascending ID order, appends candidates
to a result file as they are found (`FileResultSink`), and records
completed roots in a sidecar journal; a restart replays the journal,
skips finished roots, and keeps their persisted candidates.

Crash-consistency contract: the journal marks a root only *after* all
its candidates are flushed, so a crash between flush and mark at worst
re-mines one root (emissions are idempotent — the result file is
deduplicated on load).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..graph.adjacency import Graph
from ..graph.kcore import k_core
from ..graph.subgraph import candidate_extension, spawn_subgraph
from .miner import MiningResult, mine_root
from .options import DEFAULT_OPTIONS, MinerOptions, MiningJob, MiningStats
from .postprocess import postprocess_results
from .quasiclique import kcore_threshold
from .resultsio import FileResultSink, read_results


@dataclass
class CheckpointState:
    """What a restart learns from disk."""

    completed_roots: set[int] = field(default_factory=set)
    candidates: set[frozenset[int]] = field(default_factory=set)


def load_checkpoint(results_path: str, journal_path: str) -> CheckpointState:
    state = CheckpointState()
    if os.path.exists(journal_path):
        with open(journal_path) as f:
            for line in f:
                line = line.strip()
                if line:
                    state.completed_roots.add(int(line))
    if os.path.exists(results_path):
        state.candidates = read_results(results_path)
    return state


class ResumableMiner:
    """Mine with per-root checkpoints; safe to kill and re-run."""

    def __init__(
        self,
        graph: Graph,
        gamma: float,
        min_size: int,
        checkpoint_dir: str,
        options: MinerOptions = DEFAULT_OPTIONS,
    ):
        self.graph = graph
        self.gamma = gamma
        self.min_size = min_size
        self.options = options
        os.makedirs(checkpoint_dir, exist_ok=True)
        self.results_path = os.path.join(checkpoint_dir, "candidates.txt")
        self.journal_path = os.path.join(checkpoint_dir, "roots.journal")
        self.stats = MiningStats()

    def run(self, stop_after_roots: int | None = None) -> MiningResult:
        """Mine all (remaining) roots; `stop_after_roots` aids testing.

        Returns the final MiningResult when every root is done; when
        stopped early, returns the partial state (maximal over what has
        been mined so far) — call run() again to continue.
        """
        state = load_checkpoint(self.results_path, self.journal_path)
        k = kcore_threshold(self.gamma, self.min_size)
        base = k_core(self.graph, k) if self.options.kcore_preprocess else self.graph
        roots = [v for v in sorted(base.vertices()) if v not in state.completed_roots]

        sink = FileResultSink(self.results_path, mode="a", seen=state.candidates)
        journal = open(self.journal_path, "a")
        mined = 0
        try:
            for root in roots:
                if stop_after_roots is not None and mined >= stop_after_roots:
                    break
                sub = spawn_subgraph(base, root, k)
                if root in sub:
                    job = MiningJob(
                        graph=sub,
                        gamma=self.gamma,
                        min_size=self.min_size,
                        sink=sink,
                        options=self.options,
                        stats=self.stats,
                    )
                    mine_root(job, root, candidate_extension(sub, root))
                elif self.min_size <= 1:
                    sink.emit([root])
                # Durability order: candidates are fsynced before the
                # journal marks the root, so a crash in between at worst
                # re-mines one root (emissions are idempotent).
                sink.flush()
                journal.write(f"{root}\n")
                journal.flush()
                os.fsync(journal.fileno())
                mined += 1
        finally:
            journal.close()
            sink.close()
        candidates = sink.results()
        return MiningResult(
            maximal=postprocess_results(candidates),
            candidates=candidates,
            stats=self.stats,
        )

    def remaining_roots(self) -> int:
        state = load_checkpoint(self.results_path, self.journal_path)
        k = kcore_threshold(self.gamma, self.min_size)
        base = k_core(self.graph, k) if self.options.kcore_preprocess else self.graph
        return sum(1 for v in base.vertices() if v not in state.completed_roots)


