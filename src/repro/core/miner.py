"""Top-level serial mining API.

``mine_maximal_quasicliques`` is the reference entry point: it applies
the Theorem 2 k-core shrink (T1), spawns one set-enumeration task per
surviving vertex (quasi-cliques whose smallest vertex is that root),
mines each with the recursive algorithm, and postprocesses maximality.

Two task-construction modes exist, both result-equivalent:

* ``ego``   — per root v, materialize the k-core of v's 2-hop ego net
  restricted to IDs > v (what the G-thinker tasks do), then mine inside
  that subgraph. Default: tighter pruning, faithful to the system.
* ``global`` — mine directly on the (k-core-shrunk) input graph with
  ext = B_{>v}(v), the paper's plain serial formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.adjacency import Graph
from ..graph.kcore import k_core
from ..graph.subgraph import candidate_extension, spawn_subgraph
from ..graph.traversal import two_hop_neighbors
from .domain import TaskDomain
from .iterative_bounding import check_and_emit
from .options import DEFAULT_OPTIONS, MinerOptions, MiningJob, MiningStats, ResultSink
from .postprocess import postprocess_results
from .quasiclique import kcore_threshold
from .recursive_mine import recursive_mine, recursive_mine_masked


@dataclass
class MiningResult:
    """Outcome of a mining run: maximal results plus run statistics."""

    maximal: set[frozenset[int]]
    candidates: set[frozenset[int]]
    stats: MiningStats = field(default_factory=MiningStats)

    def __len__(self) -> int:
        return len(self.maximal)


def mine_root(
    job: MiningJob,
    root: int,
    ext: list[int],
) -> bool:
    """Mine all quasi-cliques whose smallest vertex is `root`.

    ``job.graph`` must already be the graph the task sees (global k-core
    or the root's spawned subgraph). Returns True iff some quasi-clique
    strictly containing {root} was emitted; the singleton itself is
    emitted when valid and nothing larger superseded it — relevant only
    for min_size ≤ 1, mirroring how Algorithm 2's caller owns S.

    With ``options.use_bitset_domain`` (the default) the subtree is
    mined on a compact bitmask domain over {root} ∪ ext — sound because
    a task never looks outside S ∪ ext(S), and a 2-hop connection
    through a vertex outside the task's scope can never serve a
    quasi-clique confined to that scope.
    """
    found = False
    if ext:
        if job.options.use_bitset_domain:
            domain = TaskDomain.from_graph(job.graph, [root, *ext])
            root_bit = 1 << domain.index[root]
            found = recursive_mine_masked(
                job, domain, root_bit, domain.full_mask ^ root_bit
            )
        else:
            found = recursive_mine(job, [root], ext)
    if not found and job.min_size <= 1:
        found = check_and_emit(job, [root])
    return found


def mine_maximal_quasicliques(
    graph: Graph,
    gamma: float,
    min_size: int,
    options: MinerOptions = DEFAULT_OPTIONS,
    mode: str = "ego",
) -> MiningResult:
    """Mine all maximal γ-quasi-cliques with |S| ≥ min_size (Definition 3)."""
    if mode not in ("ego", "global"):
        raise ValueError(f"mode must be 'ego' or 'global', got {mode!r}")
    k = kcore_threshold(gamma, min_size)
    base = k_core(graph, k) if options.kcore_preprocess else graph
    sink = ResultSink()
    stats = MiningStats()
    for root in sorted(base.vertices()):
        if options.kcore_preprocess and mode == "ego":
            sub = spawn_subgraph(base, root, k)
            if root not in sub:
                if min_size <= 1:
                    sink.emit([root])
                continue
            ext = candidate_extension(sub, root)
            task_graph = sub
        else:
            ext = sorted(u for u in two_hop_neighbors(base, root) if u > root)
            task_graph = base
        job = MiningJob(
            graph=task_graph,
            gamma=gamma,
            min_size=min_size,
            sink=sink,
            options=options,
            stats=stats,
        )
        mine_root(job, root, ext)
    candidates = sink.results()
    maximal = postprocess_results(candidates)
    return MiningResult(maximal=maximal, candidates=candidates, stats=stats)
