"""Maximum clique search — the G-thinker flagship application.

The paper motivates G-thinker with its maximum-clique result (the 129-
vertex maximum clique of Friendster in 252 s). To demonstrate that our
reforged engine is a *generic* runtime and not a quasi-clique one-off,
this module provides the serial algorithm — branch and bound with a
greedy-coloring upper bound (Tomita-style) — and
``repro.gthinker.app_maxclique`` wraps it as a second engine application.

A clique is the γ=1 quasi-clique, so the brute-force quasi-clique oracle
doubles as a correctness oracle here too.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.adjacency import Graph


@dataclass
class CliqueSearchStats:
    """Counters for one branch-and-bound run."""

    nodes: int = 0
    bound_prunes: int = 0
    ops: int = 0

    def merge(self, other: "CliqueSearchStats") -> None:
        self.nodes += other.nodes
        self.bound_prunes += other.bound_prunes
        self.ops += other.ops


def greedy_color_order(graph: Graph, candidates: list[int]) -> list[tuple[int, int]]:
    """Greedy coloring of `candidates`; returns (vertex, color#) pairs.

    Vertices are colored largest-degree-first; the color number of a
    vertex is an upper bound on the clique size achievable from it plus
    the already-colored suffix, enabling the classic Tomita cut. Pairs
    come back ordered by ascending color so callers can iterate from the
    most promising end by popping.
    """
    order = sorted(candidates, key=lambda v: (-graph.degree(v), v))
    color_classes: list[list[int]] = []
    colored: list[tuple[int, int]] = []
    for v in order:
        nbrs = graph.neighbor_set(v)
        for color, members in enumerate(color_classes):
            if not any(u in nbrs for u in members):
                members.append(v)
                colored.append((v, color + 1))
                break
        else:
            color_classes.append([v])
            colored.append((v, len(color_classes)))
    colored.sort(key=lambda pair: pair[1])
    return colored


def _expand(
    graph: Graph,
    current: list[int],
    candidates: list[int],
    best: list[int],
    stats: CliqueSearchStats,
) -> None:
    stats.nodes += 1
    stats.ops += len(candidates) + 1
    colored = greedy_color_order(graph, candidates)
    # Iterate from the highest color downward (classic max-clique order).
    while colored:
        v, color = colored.pop()
        if len(current) + color <= len(best):
            stats.bound_prunes += 1
            return  # every remaining vertex has color ≤ this one
        current.append(v)
        nbrs = graph.neighbor_set(v)
        next_candidates = [u for u, _ in colored if u in nbrs]
        if next_candidates:
            _expand(graph, current, next_candidates, best, stats)
        elif len(current) > len(best):
            best[:] = current
        current.pop()


def max_clique(graph: Graph) -> tuple[set[int], CliqueSearchStats]:
    """The maximum clique of `graph` (exact), with search statistics."""
    stats = CliqueSearchStats()
    best: list[int] = []
    vertices = sorted(graph.vertices())
    if not vertices:
        return set(), stats
    best = [vertices[0]]  # any single vertex is a clique
    _expand(graph, [], vertices, best, stats)
    return set(best), stats


def max_clique_size(graph: Graph) -> int:
    clique, _ = max_clique(graph)
    return len(clique)


def branch_max_clique(
    graph: Graph,
    current: list[int],
    candidates: list[int],
    incumbent_size: int,
    stats: CliqueSearchStats | None = None,
) -> set[int] | None:
    """Search the subtree ⟨current, candidates⟩ for a clique > incumbent_size.

    The task-parallel entry point used by the engine application: each
    G-thinker task owns one subtree and a snapshot of the global
    incumbent size. Returns the best clique found that beats the
    incumbent, or None.
    """
    stats = stats if stats is not None else CliqueSearchStats()
    if len(current) > incumbent_size:
        best = list(current)
    else:
        # Only len(best) drives the bound cuts; seed a sentinel list of
        # the incumbent's length so this task prunes against the global
        # incumbent without owning its vertices.
        best = [-1] * incumbent_size
    _expand(graph, list(current), candidates, best, stats)
    if len(best) > incumbent_size and (not best or best[0] != -1):
        return set(best)
    return None


def is_clique(graph: Graph, vertices: set[int]) -> bool:
    vs = list(vertices)
    return all(
        graph.has_edge(vs[i], vs[j])
        for i in range(len(vs))
        for j in range(i + 1, len(vs))
    )
