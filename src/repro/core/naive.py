"""Brute-force oracle for maximal quasi-clique enumeration.

Used exclusively by tests and ablation harnesses to validate the
optimized miners on small graphs: every subset of V is examined, so the
output is ground truth by construction. Exponential — refuse anything
beyond ~20 vertices.
"""

from __future__ import annotations

from itertools import combinations

from ..graph.adjacency import Graph
from .quasiclique import is_quasi_clique

#: Refuse power-set scans beyond this size; 2^20 subsets is the ceiling.
MAX_ORACLE_VERTICES = 20


def enumerate_quasicliques(graph: Graph, gamma: float, min_size: int) -> list[frozenset[int]]:
    """All valid (not necessarily maximal) γ-quasi-cliques with |S| ≥ min_size."""
    vertices = sorted(graph.vertices())
    if len(vertices) > MAX_ORACLE_VERTICES:
        raise ValueError(
            f"oracle limited to {MAX_ORACLE_VERTICES} vertices, got {len(vertices)}"
        )
    out: list[frozenset[int]] = []
    for size in range(max(1, min_size), len(vertices) + 1):
        for combo in combinations(vertices, size):
            if is_quasi_clique(graph, combo, gamma):
                out.append(frozenset(combo))
    return out


def enumerate_maximal_quasicliques(
    graph: Graph, gamma: float, min_size: int
) -> set[frozenset[int]]:
    """All maximal valid γ-quasi-cliques (Definition 2 + size filter).

    Maximality is judged against *all* γ-quasi-cliques, not only the
    valid ones, but a superset of a valid quasi-clique is itself large
    enough to be valid, so filtering among enumerated sets suffices.
    """
    all_qcs = enumerate_quasicliques(graph, gamma, min_size)
    by_size = sorted(all_qcs, key=len, reverse=True)
    maximal: list[frozenset[int]] = []
    out: set[frozenset[int]] = set()
    for s in by_size:
        if not any(s < bigger for bigger in maximal):
            maximal.append(s)
            out.add(s)
    return out


def is_maximal_quasiclique(graph: Graph, vertex_set: frozenset[int], gamma: float) -> bool:
    """Oracle maximality check by scanning supersets (tests only).

    Deciding maximality is NP-hard in general [32]; this brute force is
    restricted to tiny graphs like the rest of the oracle.
    """
    if not is_quasi_clique(graph, vertex_set, gamma):
        return False
    others = [v for v in graph.vertices() if v not in vertex_set]
    if len(others) + len(vertex_set) > MAX_ORACLE_VERTICES:
        raise ValueError("maximality oracle limited to tiny graphs")
    base = set(vertex_set)
    for extra in range(1, len(others) + 1):
        for combo in combinations(others, extra):
            if is_quasi_clique(graph, base | set(combo), gamma):
                return False
    return True
