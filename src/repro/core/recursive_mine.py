"""The recursive set-enumeration miner (paper Algorithm 2).

``recursive_mine(job, S, ext)`` explores the set-enumeration subtree
T_S: for each pivot v taken in list order from ext(S) (cover-set
vertices parked at the tail and never pivoted), it forms
S′ = S ∪ {v}, shrinks the candidate set with diameter pruning
(Theorem 1), runs the iterative bounding subprocedure (Algorithm 1),
and recurses when extensions survive. It returns True iff some valid
quasi-clique *strictly containing* S was found, which the caller uses
to decide whether S′ itself should be emitted as a candidate maximal
result.

Emitted results are candidates — some may be non-maximal (the paper's
set-enumeration scopes each task to quasi-cliques whose smallest vertex
is the spawn root, so cross-task maximality needs the postprocessing in
:mod:`repro.core.postprocess`).
"""

from __future__ import annotations

from ..graph.adjacency import Graph
from .degrees import compute_degrees, compute_degrees_masked
from .domain import TaskDomain, is_quasi_clique_masked
from .iterative_bounding import (
    check_and_emit,
    check_and_emit_masked,
    iterative_bounding,
    iterative_bounding_masked,
)
from .options import MiningJob
from .pruning import cover_set, cover_set_masked, diameter_filter, diameter_filter_masked
from .quasiclique import is_quasi_clique


def select_cover_tail(job: MiningJob, s_list: list[int], ext_list: list[int]) -> set[int]:
    """Pick the best cover vertex (P7) and return its covered set (maybe ∅)."""
    if not job.options.use_cover_vertex or not ext_list:
        return set()
    s_set = set(s_list)
    ext_set = set(ext_list)
    view = compute_degrees(job.graph, s_set, ext_set)
    cv = cover_set(job.graph, s_set, ext_set, job.gamma, view)
    if cv is None:
        return set()
    job.stats.cover_skipped += len(cv.covered)
    return cv.covered


def order_with_cover_tail(ext_list: list[int], covered: set[int]) -> tuple[list[int], int]:
    """Reorder ext so covered vertices sit at the tail; returns (order, #pivots)."""
    head = [u for u in ext_list if u not in covered]
    tail = [u for u in ext_list if u in covered]
    return head + tail, len(head)


def recursive_mine(job: MiningJob, s_list: list[int], ext_list: list[int]) -> bool:
    """Paper Algorithm 2. True iff some valid quasi-clique ⊃ S was emitted."""
    graph: Graph = job.graph
    gamma = job.gamma
    min_size = job.min_size
    opts = job.options
    found = False
    job.stats.nodes_expanded += 1
    job.stats.mining_ops += 1 + len(ext_list)

    order, num_pivots = order_with_cover_tail(ext_list, select_cover_tail(job, s_list, ext_list))

    for i in range(num_pivots):
        v = order[i]
        remaining = order[i:]  # current ext(S), pivot included
        if len(s_list) + len(remaining) < min_size:
            return found
        if opts.use_lookahead and is_quasi_clique(graph, set(s_list) | set(remaining), gamma):
            # Lookahead (Alg. 2 lines 8–10): S ∪ ext(S) is itself a valid
            # quasi-clique, so every proper extension is non-maximal.
            job.sink.emit(s_list + remaining)
            job.stats.candidates_emitted += 1
            job.stats.lookahead_hits += 1
            return True

        s_prime = s_list + [v]
        ext_base = order[i + 1 :]
        if opts.use_diameter_prune:
            ext_prime = diameter_filter(graph, v, ext_base)
        else:
            ext_prime = list(ext_base)

        if not ext_prime:
            # The check Quick misses: S′ has nothing to extend with but
            # may itself be a valid (maximal) quasi-clique.
            if opts.check_empty_ext_candidate and check_and_emit(job, s_prime):
                found = True
            continue

        pruned = iterative_bounding(job, s_prime, ext_prime)
        if not pruned and len(s_prime) + len(ext_prime) >= min_size:
            sub_found = recursive_mine(job, s_prime, ext_prime)
            found = found or sub_found
            if not sub_found and check_and_emit(job, s_prime):
                found = True
    return found


def select_cover_tail_masked(
    job: MiningJob, domain: TaskDomain, s_mask: int, ext_mask: int
) -> int:
    """Mask-native P7 selection: the covered ext subset as a bitmask."""
    if not job.options.use_cover_vertex or not ext_mask:
        return 0
    view = compute_degrees_masked(domain, s_mask, ext_mask)
    cv = cover_set_masked(domain, s_mask, ext_mask, job.gamma, view)
    if cv is None:
        return 0
    job.stats.cover_skipped += cv.covered_mask.bit_count()
    return cv.covered_mask


def recursive_mine_masked(
    job: MiningJob, domain: TaskDomain, s_mask: int, ext_mask: int
) -> bool:
    """Mask-native Algorithm 2 over a :class:`TaskDomain`.

    The set-enumeration walk pivots over the non-covered ext vertices in
    ascending local-ID order; the cover tail is a mask that rides along
    in every child's candidate set but is never pivoted — positionally
    identical to the list version's tail placement. Returns True iff
    some valid quasi-clique ⊃ S was emitted.
    """
    gamma = job.gamma
    min_size = job.min_size
    opts = job.options
    found = False
    job.stats.nodes_expanded += 1
    job.stats.mining_ops += 1 + ext_mask.bit_count()

    covered = select_cover_tail_masked(job, domain, s_mask, ext_mask)
    pending = ext_mask & ~covered
    s_size = s_mask.bit_count()

    while pending:
        low = pending & -pending
        v = low.bit_length() - 1
        remaining = pending | covered  # current ext(S), pivot included
        if s_size + remaining.bit_count() < min_size:
            return found
        if opts.use_lookahead and is_quasi_clique_masked(domain, s_mask | remaining, gamma):
            # Lookahead (Alg. 2 lines 8–10): S ∪ ext(S) is itself a valid
            # quasi-clique, so every proper extension is non-maximal.
            job.sink.emit(domain.globals_of(s_mask | remaining))
            job.stats.candidates_emitted += 1
            job.stats.lookahead_hits += 1
            return True

        pending ^= low
        s_prime = s_mask | low
        ext_base = pending | covered
        if opts.use_diameter_prune:
            ext_prime = diameter_filter_masked(domain, v, ext_base)
        else:
            ext_prime = ext_base

        if not ext_prime:
            # The check Quick misses: S′ has nothing to extend with but
            # may itself be a valid (maximal) quasi-clique.
            if opts.check_empty_ext_candidate and check_and_emit_masked(job, domain, s_prime):
                found = True
            continue

        pruned, s_prime, ext_prime = iterative_bounding_masked(job, domain, s_prime, ext_prime)
        if not pruned and s_prime.bit_count() + ext_prime.bit_count() >= min_size:
            sub_found = recursive_mine_masked(job, domain, s_prime, ext_prime)
            found = found or sub_found
            if not sub_found and check_and_emit_masked(job, domain, s_prime):
                found = True
    return found
