"""Compact-ID bitmask task domains — the mining hot path representation.

A mining task never looks outside S ∪ ext(S): every degree family the
pruning rules consume (paper T2), the U_S/L_S bounds, the diameter
filter, and the validity predicate are functions of the subgraph
induced on the task's vertices. ``TaskDomain`` exploits that by
relabeling the task's vertex set to *local* IDs ``0..m-1`` (ascending
global order) and storing adjacency as one Python big-int bitmask per
vertex: bit ``j`` of ``adj[i]`` is set iff local vertices ``i`` and
``j`` are adjacent.

Vertex sets over the domain (S, ext(S), cover tails, removal sets) are
then plain ints, and the hot-path algebra collapses to C-speed word
operations::

    d_S(v)        = (adj[v] & s_mask).bit_count()     # one popcount
    Γ_ext(v)      = adj[v] & ext_mask                  # one AND
    ext \\ pruned  = ext_mask & ~removed                # one ANDNOT

which replaces the per-element dict/set loops of the classic
representation (`repro.core.degrees.compute_degrees`). The local→global
table ``verts`` is carried once per domain, so a pickled domain is a
tuple of ints — far smaller than a ``Graph`` (which pickles a neighbor
list *and* a neighbor set per vertex), which is what the process-pool
and cluster backends ship over their wire formats.

Results stay frozensets of *global* IDs: :meth:`TaskDomain.globals_of`
translates a mask back at emission time only.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from .quasiclique import degree_floor

__all__ = [
    "TaskDomain",
    "bits",
    "bit_list",
    "is_quasi_clique_masked",
]


def bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of `mask`, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_list(mask: int) -> list[int]:
    """Set bit positions of `mask` as an ascending list."""
    return list(bits(mask))


class TaskDomain:
    """A task subgraph compacted to local IDs 0..m-1 with bitmask adjacency.

    ``verts[i]`` is the global ID of local vertex ``i`` (ascending), and
    ``adj[i]`` is the bitmask of its neighbors *within the domain*.
    Instances are immutable and cheaply picklable (two tuples of ints).
    """

    __slots__ = ("verts", "adj", "_index")

    def __init__(self, verts: tuple[int, ...], adj: tuple[int, ...]):
        self.verts = verts
        self.adj = adj
        self._index: dict[int, int] | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_graph(cls, graph, members: Iterable[int] | None = None) -> "TaskDomain":
        """Compact the subgraph induced on `members` (default: all of `graph`).

        `graph` may be any backend exposing ``vertices()``/``neighbors()``
        (``Graph`` or ``CSRGraph``); when `members` is None and the
        backend offers :meth:`adjacency_masks`, the precompacted export
        is used directly.
        """
        if members is None:
            masks = getattr(graph, "adjacency_masks", None)
            if masks is not None:
                verts, adj = masks()
                return cls(verts, adj)
            members = graph.vertices()
        verts = tuple(sorted(set(members)))
        index = {g: i for i, g in enumerate(verts)}
        adj = []
        for g in verts:
            m = 0
            for u in graph.neighbors(g):
                j = index.get(u)
                if j is not None:
                    m |= 1 << j
            adj.append(m)
        domain = cls(verts, tuple(adj))
        domain._index = index
        return domain

    @classmethod
    def from_access(cls, access, members: Iterable[int] | None = None) -> "TaskDomain":
        """Compact a domain through a :class:`~repro.graph.access.
        GraphAccess` instead of a concrete graph container.

        The access object must be able to answer every member locally
        (``access.unresolved(members)`` empty) — distributed callers
        fetch first, then build. Shares the :meth:`from_graph` fast
        path: an access exposing ``adjacency_masks()`` (the in-memory
        wrappers) compacts the whole graph without per-vertex calls.
        """
        missing = access.unresolved([] if members is None else list(members))
        if missing:
            raise RuntimeError(
                f"cannot build a TaskDomain over unresolved vertices "
                f"{sorted(missing)[:8]}{'...' if len(missing) > 8 else ''}; "
                f"fetch them first (GraphAccess.unresolved/admit)"
            )
        return cls.from_graph(access, members)

    @classmethod
    def from_adjacency(cls, adjacency: Mapping[int, Iterable[int]]) -> "TaskDomain":
        """Compact a closed adjacency mapping (every listed neighbor is a key).

        Neighbors outside the key set are ignored, matching the
        "destination-only vertices dropped" closure of the task-build
        pipeline (paper Algorithm 7).
        """
        verts = tuple(sorted(adjacency))
        index = {g: i for i, g in enumerate(verts)}
        adj = []
        for g in verts:
            m = 0
            for u in adjacency[g]:
                j = index.get(u)
                if j is not None and u != g:
                    m |= 1 << j
            adj.append(m)
        domain = cls(verts, tuple(adj))
        domain._index = index
        return domain

    def __reduce__(self):
        # Pickle only the two tuples; the index is rebuilt lazily.
        return (TaskDomain, (self.verts, self.adj))

    # -- basic queries ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.verts)

    @property
    def num_edges(self) -> int:
        return sum(m.bit_count() for m in self.adj) // 2

    @property
    def index(self) -> dict[int, int]:
        """global ID → local ID (lazily built, cached)."""
        if self._index is None:
            self._index = {g: i for i, g in enumerate(self.verts)}
        return self._index

    @property
    def full_mask(self) -> int:
        """Mask with every domain vertex set: (1 << m) − 1."""
        return (1 << len(self.verts)) - 1

    def degree(self, v: int) -> int:
        """Degree of local vertex `v` within the domain."""
        return self.adj[v].bit_count()

    def degree_in(self, v: int, mask: int) -> int:
        """d_{mask}(v): neighbors of local `v` inside `mask` (one popcount)."""
        return (self.adj[v] & mask).bit_count()

    # -- global ↔ local translation ---------------------------------------

    def mask_of_globals(self, vertices: Iterable[int]) -> int:
        """Mask of the local IDs of `vertices` (all must be in the domain)."""
        index = self.index
        m = 0
        for g in vertices:
            m |= 1 << index[g]
        return m

    def globals_of(self, mask: int) -> list[int]:
        """Global IDs of the set bits of `mask`, ascending."""
        verts = self.verts
        return [verts[i] for i in bits(mask)]

    # -- derived domains ---------------------------------------------------

    def restrict(self, mask: int) -> "TaskDomain":
        """Re-compact the subgraph induced on `mask` to a fresh domain.

        This is the subtask-split path: the child carries only its own
        vertices, so its pickled footprint shrinks with its workload.
        """
        keep = bit_list(mask)
        verts = tuple(self.verts[i] for i in keep)
        pos = {old: new for new, old in enumerate(keep)}
        adj = []
        for old in keep:
            m = 0
            rest = self.adj[old] & mask
            while rest:
                low = rest & -rest
                m |= 1 << pos[low.bit_length() - 1]
                rest ^= low
            adj.append(m)
        return TaskDomain(verts, tuple(adj))

    def to_graph(self):
        """Expand back to a mutable global-ID :class:`Graph` (tests/tools).

        Imported lazily to keep the domain importable from the graph
        layer without a cycle.
        """
        from ..graph.adjacency import Graph

        g = Graph()
        verts = self.verts
        for v in verts:
            g.add_vertex(v)
        for i, m in enumerate(self.adj):
            for j in bits(m):
                if j > i:
                    g.add_edge(verts[i], verts[j])
        return g

    # -- mask algebra used by the pruning rules -----------------------------

    def connected_in(self, mask: int) -> bool:
        """True iff the subgraph induced on `mask` is connected (mask BFS)."""
        if mask == 0:
            return False
        adj = self.adj
        reached = mask & -mask
        frontier = reached
        while frontier:
            nxt = 0
            m = frontier
            while m:
                low = m & -m
                nxt |= adj[low.bit_length() - 1]
                m ^= low
            frontier = nxt & mask & ~reached
            reached |= frontier
        return reached == mask

    def two_hop_mask(self, v: int) -> int:
        """Vertices within two hops of local `v` (neighbors ∪ their neighbors)."""
        adj = self.adj
        one = adj[v]
        two = 0
        m = one
        while m:
            low = m & -m
            two |= adj[low.bit_length() - 1]
            m ^= low
        return one | two

    # -- dunder sugar -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.verts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskDomain):
            return NotImplemented
        return self.verts == other.verts and self.adj == other.adj

    def __hash__(self) -> int:
        return hash((self.verts, self.adj))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskDomain(|V|={self.num_vertices}, |E|={self.num_edges})"


def is_quasi_clique_masked(
    domain: TaskDomain, s_mask: int, gamma: float, require_connected: bool = True
) -> bool:
    """Mask-native Definition 1: every member clears the degree floor.

    Equivalent to :func:`repro.core.quasiclique.is_quasi_clique` on the
    induced subgraph — degrees are popcounts, connectivity is a mask BFS.
    """
    size = s_mask.bit_count()
    if size == 0:
        return False
    floor_deg = degree_floor(gamma, size)
    adj = domain.adj
    m = s_mask
    while m:
        low = m & -m
        if (adj[low.bit_length() - 1] & s_mask).bit_count() < floor_deg:
            return False
        m ^= low
    if require_connected and not domain.connected_in(s_mask):
        return False
    return True
