"""Edge-density dense-subgraph utilities (paper §2 related definitions).

The paper mines quasi-cliques defined by *individual vertex degrees*;
related work defines them by *total edge density* — |E(S)| / C(|S|,2) ≥ θ
(Abello et al. [11], Pattillo et al. [29]) — or by both constraints at
once (Brunato et al. [15]). This module provides the density-side
toolkit so downstream users can compose the two views:

* density predicates and a brute-force enumerator (small graphs);
* Charikar's greedy peel — a ½-approximation for the densest subgraph
  under the average-degree objective |E(S)|/|S|;
* a density post-filter over mined maximal γ-quasi-cliques, the
  practical way [15]'s double constraint is applied on top of this
  library's exact degree-based miner.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..graph.adjacency import Graph


def internal_edge_count(graph: Graph, vertex_set: set[int]) -> int:
    """|E(S)|: edges of the subgraph induced by S."""
    total = 0
    for v in vertex_set:
        total += graph.degree_in(v, vertex_set)
    return total // 2


def edge_density(graph: Graph, vertex_set: set[int]) -> float:
    """|E(S)| / C(|S|,2) ∈ [0, 1]; density of a singleton is 1 (clique)."""
    n = len(vertex_set)
    if n <= 1:
        return 1.0 if n == 1 else 0.0
    return internal_edge_count(graph, vertex_set) / (n * (n - 1) / 2)


def average_degree_density(graph: Graph, vertex_set: set[int]) -> float:
    """|E(S)| / |S| — the densest-subgraph-problem objective."""
    if not vertex_set:
        return 0.0
    return internal_edge_count(graph, vertex_set) / len(vertex_set)


def is_dense_subgraph(
    graph: Graph, vertex_set: set[int], threshold: float
) -> bool:
    """Edge-density quasi-clique predicate of [11, 29]."""
    return edge_density(graph, vertex_set) >= threshold


@dataclass
class DensestSubgraphResult:
    """Output of the greedy densest-subgraph peel."""

    vertices: set[int]
    density: float  # average-degree objective |E(S)|/|S|


def densest_subgraph_peel(graph: Graph) -> DensestSubgraphResult:
    """Charikar's greedy ½-approximation for max |E(S)|/|S|.

    Repeatedly remove a minimum-degree vertex, tracking the best prefix.
    O(|E| log |V|) with a lazy heap.
    """
    import heapq

    degrees = {v: graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return DensestSubgraphResult(set(), 0.0)
    alive = set(degrees)
    edges = graph.num_edges
    heap = [(d, v) for v, d in degrees.items()]
    heapq.heapify(heap)
    best_density = edges / len(alive)
    removal_order: list[int] = []
    best_removed = 0
    removed = 0
    while len(alive) > 1:
        d, v = heapq.heappop(heap)
        if v not in alive or degrees[v] != d:
            continue
        alive.discard(v)
        removal_order.append(v)
        removed += 1
        edges -= d
        for u in graph.neighbors(v):
            if u in alive:
                degrees[u] -= 1
                heapq.heappush(heap, (degrees[u], u))
        density = edges / len(alive)
        if density > best_density:
            best_density = density
            best_removed = removed
    keep = set(graph.vertices())
    for v in removal_order[:best_removed]:
        keep.discard(v)
    return DensestSubgraphResult(vertices=keep, density=best_density)


def enumerate_dense_subgraphs(
    graph: Graph, threshold: float, min_size: int
) -> list[frozenset[int]]:
    """All connected vertex sets with edge density ≥ threshold (oracle-sized).

    Exponential scan; guarded like the quasi-clique oracle.
    """
    from ..graph.traversal import is_connected_subset
    from .naive import MAX_ORACLE_VERTICES

    vertices = sorted(graph.vertices())
    if len(vertices) > MAX_ORACLE_VERTICES:
        raise ValueError(
            f"dense-subgraph enumeration limited to {MAX_ORACLE_VERTICES} vertices"
        )
    out: list[frozenset[int]] = []
    for size in range(max(1, min_size), len(vertices) + 1):
        for combo in combinations(vertices, size):
            s = set(combo)
            if is_dense_subgraph(graph, s, threshold) and is_connected_subset(graph, s):
                out.append(frozenset(combo))
    return out


def filter_by_density(
    graph: Graph, results: set[frozenset[int]], threshold: float
) -> set[frozenset[int]]:
    """Keep mined quasi-cliques whose edge density also clears `threshold`.

    The practical composition of [15]'s double constraint over this
    library's exact degree-based miner: a γ-quasi-clique already has
    density ≥ γ·(something close to γ), so thresholds ≤ γ pass
    everything and higher thresholds select the clique-like core of the
    result set. Note this filters *mined maximal* sets — it does not
    enumerate sets that are dense but degree-deficient.
    """
    return {s for s in results if is_dense_subgraph(graph, set(s), threshold)}


def gamma_implies_density_bound(gamma: float, size: int) -> float:
    """Lower bound on the edge density of any γ-quasi-clique of `size`.

    Every member has degree ≥ ceil(γ(n−1)), so |E| ≥ n·ceil(γ(n−1))/2
    and density ≥ ceil(γ(n−1)) / (n−1) ≥ γ.
    """
    from .quasiclique import ceil_gamma

    if size <= 1:
        return 1.0
    return ceil_gamma(gamma, size - 1) / (size - 1)
