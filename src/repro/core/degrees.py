"""Degree bookkeeping for a mining state ⟨S, ext(S)⟩ — paper (T2).

The pruning rules consume four degree families:

* SS-degrees  d_S(v)      for v ∈ S
* ES-degrees  d_ext(S)(v) for v ∈ S
* SE-degrees  d_S(u)      for u ∈ ext(S)
* EE-degrees  d_ext(S)(u) for u ∈ ext(S)

U_S needs the first three, L_S the first two, and EE-degrees feed only
the Type I rules (Theorems 3 and 7), so their computation is deferred
until right before the Type I pass — if a Type II rule fires first, the
work is saved, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.adjacency import Graph


@dataclass
class DegreeView:
    """Snapshot of the four degree families for one (S, ext) state."""

    in_s_of_s: dict[int, int] = field(default_factory=dict)  # d_S(v), v ∈ S
    in_ext_of_s: dict[int, int] = field(default_factory=dict)  # d_ext(v), v ∈ S
    in_s_of_ext: dict[int, int] = field(default_factory=dict)  # d_S(u), u ∈ ext
    in_ext_of_ext: dict[int, int] | None = None  # d_ext(u), u ∈ ext (lazy)

    def sum_s_degrees(self) -> int:
        """Σ_{v∈S} d_S(v) — left operand of the Lemma 2 sum."""
        return sum(self.in_s_of_s.values())

    def min_total_degree_in_s(self) -> int:
        """d_min = min_{v∈S} (d_S(v) + d_ext(v)) — Eq. (1)."""
        return min(
            self.in_s_of_s[v] + self.in_ext_of_s[v] for v in self.in_s_of_s
        )

    def min_s_degree(self) -> int:
        """d_S^min = min_{v∈S} d_S(v) — Eq. (6)."""
        return min(self.in_s_of_s.values())

    def ext_degrees_sorted(self) -> list[int]:
        """d_S(u) for u ∈ ext, non-increasing — the Lemma 2 prefix order."""
        return sorted(self.in_s_of_ext.values(), reverse=True)


def compute_degrees(graph: Graph, s_set: set[int], ext_set: set[int]) -> DegreeView:
    """Compute SS/ES/SE degrees in one pass over adjacency lists.

    SE- and ES-degrees are two views of the same crossing edges, so a
    single scan over ext adjacency increments both sides (paper T2).
    """
    view = DegreeView()
    for v in s_set:
        view.in_s_of_s[v] = 0
        view.in_ext_of_s[v] = 0
    for v in s_set:
        count_s = 0
        for u in graph.neighbors(v):
            if u in s_set:
                count_s += 1
        view.in_s_of_s[v] = count_s
    for u in ext_set:
        count_s = 0
        for w in graph.neighbors(u):
            if w in s_set:
                count_s += 1
                view.in_ext_of_s[w] += 1
        view.in_s_of_ext[u] = count_s
    return view


def compute_ee_degrees(graph: Graph, ext_set: set[int], view: DegreeView) -> dict[int, int]:
    """EE-degrees d_ext(u), computed lazily before the Type I pass."""
    ee = {u: graph.degree_in(u, ext_set) for u in ext_set}
    view.in_ext_of_ext = ee
    return ee
