"""Degree bookkeeping for a mining state ⟨S, ext(S)⟩ — paper (T2).

The pruning rules consume four degree families:

* SS-degrees  d_S(v)      for v ∈ S
* ES-degrees  d_ext(S)(v) for v ∈ S
* SE-degrees  d_S(u)      for u ∈ ext(S)
* EE-degrees  d_ext(S)(u) for u ∈ ext(S)

U_S needs the first three, L_S the first two, and EE-degrees feed only
the Type I rules (Theorems 3 and 7), so their computation is deferred
until right before the Type I pass — if a Type II rule fires first, the
work is saved, exactly as the paper prescribes.

Two result-equivalent constructions exist:

* :func:`compute_degrees` — the classic dict/set scan over adjacency
  lists, keyed by global vertex IDs;
* :func:`compute_degrees_masked` — the bitset hot path over a
  :class:`repro.core.domain.TaskDomain`, keyed by *local* IDs, where
  each degree is a single ``(adj[v] & mask).bit_count()`` popcount.

The downstream consumers (`repro.core.bounds`, the pruning batteries)
read only the `DegreeView` interface, so they run on either keying.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.adjacency import Graph
from .domain import TaskDomain, bits


@dataclass
class DegreeView:
    """Snapshot of the four degree families for one (S, ext) state."""

    in_s_of_s: dict[int, int] = field(default_factory=dict)  # d_S(v), v ∈ S
    in_ext_of_s: dict[int, int] = field(default_factory=dict)  # d_ext(v), v ∈ S
    in_s_of_ext: dict[int, int] = field(default_factory=dict)  # d_S(u), u ∈ ext
    in_ext_of_ext: dict[int, int] | None = None  # d_ext(u), u ∈ ext (lazy)

    def sum_s_degrees(self) -> int:
        """Σ_{v∈S} d_S(v) — left operand of the Lemma 2 sum."""
        return sum(self.in_s_of_s.values())

    def min_total_degree_in_s(self) -> int:
        """d_min = min_{v∈S} (d_S(v) + d_ext(v)) — Eq. (1).

        Raises :class:`ValueError` with an explicit message on empty S
        (the quantity is undefined; Eqs. 1–8 all presuppose S ≠ ∅).
        """
        if not self.in_s_of_s:
            raise ValueError("min_total_degree_in_s is undefined for empty S")
        return min(
            self.in_s_of_s[v] + self.in_ext_of_s[v] for v in self.in_s_of_s
        )

    def min_s_degree(self) -> int:
        """d_S^min = min_{v∈S} d_S(v) — Eq. (6).

        Raises :class:`ValueError` with an explicit message on empty S.
        """
        if not self.in_s_of_s:
            raise ValueError("min_s_degree is undefined for empty S")
        return min(self.in_s_of_s.values())

    def ext_degrees_sorted(self) -> list[int]:
        """d_S(u) for u ∈ ext, non-increasing — the Lemma 2 prefix order."""
        return sorted(self.in_s_of_ext.values(), reverse=True)


def compute_degrees(graph: Graph, s_set: set[int], ext_set: set[int]) -> DegreeView:
    """Compute SS/ES/SE degrees in one pass over adjacency lists.

    SE- and ES-degrees are two views of the same crossing edges, so a
    single scan over ext adjacency increments both sides (paper T2).
    """
    view = DegreeView()
    for v in s_set:
        view.in_s_of_s[v] = 0
        view.in_ext_of_s[v] = 0
    for v in s_set:
        count_s = 0
        for u in graph.neighbors(v):
            if u in s_set:
                count_s += 1
        view.in_s_of_s[v] = count_s
    for u in ext_set:
        count_s = 0
        for w in graph.neighbors(u):
            if w in s_set:
                count_s += 1
                view.in_ext_of_s[w] += 1
        view.in_s_of_ext[u] = count_s
    return view


def compute_ee_degrees(graph: Graph, ext_set: set[int], view: DegreeView) -> dict[int, int]:
    """EE-degrees d_ext(u), computed lazily before the Type I pass."""
    ee = {u: graph.degree_in(u, ext_set) for u in ext_set}
    view.in_ext_of_ext = ee
    return ee


def compute_degrees_masked(domain: TaskDomain, s_mask: int, ext_mask: int) -> DegreeView:
    """Mask-native SS/ES/SE degrees: one popcount per (vertex, family).

    The returned view is keyed by *local* domain IDs; it is otherwise
    interchangeable with :func:`compute_degrees` output — same dict
    shapes, same aggregate methods — so `repro.core.bounds` and the
    pruning rules consume either.
    """
    adj = domain.adj
    view = DegreeView()
    in_s_of_s = view.in_s_of_s
    in_ext_of_s = view.in_ext_of_s
    for v in bits(s_mask):
        a = adj[v]
        in_s_of_s[v] = (a & s_mask).bit_count()
        in_ext_of_s[v] = (a & ext_mask).bit_count()
    in_s_of_ext = view.in_s_of_ext
    for u in bits(ext_mask):
        in_s_of_ext[u] = (adj[u] & s_mask).bit_count()
    return view


def compute_ee_degrees_masked(
    domain: TaskDomain, ext_mask: int, view: DegreeView
) -> dict[int, int]:
    """Lazy EE-degrees over a domain, one popcount per ext vertex."""
    adj = domain.adj
    ee = {u: (adj[u] & ext_mask).bit_count() for u in bits(ext_mask)}
    view.in_ext_of_ext = ee
    return ee
