"""Query-driven quasi-clique search (paper §2: [25], [17], [19]).

The related work the paper contrasts itself with: instead of *all*
maximal quasi-cliques, find the maximal γ-quasi-cliques **containing a
given query vertex (or vertex set)** — community search around a person
of interest, a gene, a suspect account. The paper notes these methods
"significantly narrow down the search space ... but sacrifice result
diversity"; this module provides that narrowed search on top of the
same corrected machinery, so users get both modes from one library.

Correctness note: a quasi-clique containing the query set Q lives
entirely inside ⋂_{q∈Q} B̄(q) (each member is within 2 hops of every
query vertex, γ ≥ 0.5), so the search runs `recursive_mine` with
S = Q and ext = that intersection. Maximality is judged among the
returned family — every maximal quasi-clique ⊇ Q is found (the search
space is complete for supersets of Q), so subset-filtering is exact,
mirroring the global miner's postprocessing argument.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graph.adjacency import Graph
from ..graph.traversal import two_hop_neighbors
from .iterative_bounding import check_and_emit
from .miner import MiningResult
from .options import DEFAULT_OPTIONS, MinerOptions, MiningJob, MiningStats, ResultSink
from .postprocess import postprocess_results
from .recursive_mine import recursive_mine


def query_candidates(graph: Graph, query: set[int]) -> set[int]:
    """⋂_{q∈Q} B̄(q) − Q: the only vertices that can join a QC ⊇ Q."""
    candidates: set[int] | None = None
    for q in query:
        reach = two_hop_neighbors(graph, q) | {q}
        candidates = reach if candidates is None else candidates & reach
    return (candidates or set()) - query


def mine_containing(
    graph: Graph,
    query: Iterable[int],
    gamma: float,
    min_size: int = 1,
    options: MinerOptions = DEFAULT_OPTIONS,
) -> MiningResult:
    """All maximal γ-quasi-cliques that contain every vertex of `query`.

    Returns an empty result when no valid quasi-clique contains the
    query (e.g. disconnected query vertices at γ ≥ 0.5). The query set
    itself is reported when it is a valid quasi-clique and nothing
    larger contains it.
    """
    query_set = set(query)
    if not query_set:
        raise ValueError("query must contain at least one vertex")
    for q in query_set:
        if not graph.has_vertex(q):
            raise ValueError(f"query vertex {q} is not in the graph")

    stats = MiningStats()
    sink = ResultSink()
    job = MiningJob(
        graph=graph,
        gamma=gamma,
        min_size=min_size,
        sink=sink,
        options=options,
        stats=stats,
    )
    ext = sorted(query_candidates(graph, query_set))
    s_list = sorted(query_set)
    found = False
    if ext:
        found = recursive_mine(job, list(s_list), ext)
    if not found and len(query_set) >= min_size:
        check_and_emit(job, list(s_list))

    # Candidates may include sets missing part of the query: the
    # critical-vertex move never removes S-members, but the lookahead /
    # bounding emissions operate on S′ ⊇ Q throughout — enforce anyway.
    candidates = {s for s in sink.results() if query_set <= s}
    maximal = postprocess_results(candidates)
    return MiningResult(maximal=maximal, candidates=candidates, stats=stats)


def best_community(
    graph: Graph,
    query: Iterable[int],
    gamma: float,
    min_size: int = 1,
    options: MinerOptions = DEFAULT_OPTIONS,
) -> frozenset[int] | None:
    """The largest maximal quasi-clique containing `query` (ties: lexic.)."""
    result = mine_containing(graph, query, gamma, min_size, options)
    if not result.maximal:
        return None
    return min(result.maximal, key=lambda s: (-len(s), sorted(s)))
