"""Upper and lower bounds on the number of addable vertices (P4, P5).

Implements Eqs. (1)–(8) of the paper:

* ``U_S`` — the largest number of ext(S) vertices that could join S in a
  valid γ-quasi-clique, derived from d_min (Eq. 1–3) and tightened by
  the Lemma 2 prefix-sum condition (Eq. 4).
* ``L_S`` — the smallest number of ext(S) vertices that *must* join S
  before its minimum degree clears the γ floor, from Eq. (7) tightened
  to Eq. (8).

Both functions return ``None`` when no feasible t exists, which the
caller must treat as a Type II prune. The distinction the paper draws:
a U_S failure still leaves G(S) itself as a candidate, whereas an L_S
failure (including L_min failure) certifies S is not a quasi-clique.
"""

from __future__ import annotations

from .degrees import DegreeView
from .quasiclique import ceil_gamma, floor_div_gamma


def lemma2_feasible(
    gamma: float, s_size: int, sum_s_degrees: int, prefix_sums: list[int], t: int
) -> bool:
    """Lemma 2 sum condition for adding t best ext vertices to S.

    True iff Σ_S d_S(v) + Σ_{i≤t} d_S(u_i) ≥ |S|·ceil(γ(|S|+t−1)),
    where u_i are sorted by d_S non-increasing and ``prefix_sums[t]``
    holds Σ_{i≤t}.
    """
    return sum_s_degrees + prefix_sums[t] >= s_size * ceil_gamma(gamma, s_size + t - 1)


def prefix_sums_desc(ext_degrees_sorted: list[int]) -> list[int]:
    """prefix_sums[t] = Σ_{i≤t} d_S(u_i); prefix_sums[0] = 0."""
    sums = [0]
    acc = 0
    for d in ext_degrees_sorted:
        acc += d
        sums.append(acc)
    return sums


def upper_bound_min(gamma: float, s_size: int, d_min: int) -> int:
    """U_S^min = floor(d_min/γ) + 1 − |S| (Eq. 3); may be ≤ 0 or > |ext|."""
    return floor_div_gamma(d_min, gamma) + 1 - s_size


def upper_bound(gamma: float, s_size: int, view: DegreeView) -> int | None:
    """U_S per Eq. (4): the largest feasible t in [1, U_S^min].

    Returns None when no t qualifies — extensions of S are pruned, but
    G(S) itself must still be examined by the caller.
    """
    if not view.in_s_of_s:
        raise ValueError("upper_bound undefined for empty S")
    d_min = view.min_total_degree_in_s()
    u_min = upper_bound_min(gamma, s_size, d_min)
    ext_sorted = view.ext_degrees_sorted()
    n = len(ext_sorted)
    hi = min(u_min, n)
    if hi < 1:
        return None
    sums = prefix_sums_desc(ext_sorted)
    sum_s = view.sum_s_degrees()
    for t in range(hi, 0, -1):
        if lemma2_feasible(gamma, s_size, sum_s, sums, t):
            return t
    return None


def lower_bound_min(gamma: float, s_size: int, d_s_min: int, n_ext: int) -> int | None:
    """L_S^min per Eq. (7): smallest t ≥ 0 with d_S^min + t ≥ ceil(γ(|S|+t−1)).

    Checks t = 0..n_ext; None means S and all extensions are pruned.
    """
    for t in range(0, n_ext + 1):
        if d_s_min + t >= ceil_gamma(gamma, s_size + t - 1):
            return t
    return None


def lower_bound(gamma: float, s_size: int, view: DegreeView) -> int | None:
    """L_S per Eq. (8): smallest t in [L_S^min, n] passing Lemma 2.

    Returns None when infeasible — a Type II prune of S *and* its
    extensions (an L_S failure certifies S itself misses the degree
    floor, see module docstring).
    """
    if not view.in_s_of_s:
        raise ValueError("lower_bound undefined for empty S")
    ext_sorted = view.ext_degrees_sorted()
    n = len(ext_sorted)
    l_min = lower_bound_min(gamma, s_size, view.min_s_degree(), n)
    if l_min is None:
        return None
    sums = prefix_sums_desc(ext_sorted)
    sum_s = view.sum_s_degrees()
    for t in range(l_min, n + 1):
        if lemma2_feasible(gamma, s_size, sum_s, sums, t):
            return t
    return None


def bounds_or_prune(gamma: float, s_size: int, view: DegreeView) -> tuple[int | None, int | None]:
    """(U_S, L_S) convenience wrapper; either may be None (Type II prune)."""
    return upper_bound(gamma, s_size, view), lower_bound(gamma, s_size, view)
