"""Core mining algorithms: pruning rules, bounds, recursive miner."""

from .bounds import lower_bound, lower_bound_min, upper_bound, upper_bound_min
from .domain import TaskDomain, bit_list, bits, is_quasi_clique_masked
from .kernels import KernelExpansionResult, expand_kernel, top_k_quasicliques
from .maxclique import CliqueSearchStats, is_clique, max_clique, max_clique_size
from .iterative_bounding import iterative_bounding
from .miner import MiningResult, mine_maximal_quasicliques, mine_root
from .naive import enumerate_maximal_quasicliques, enumerate_quasicliques
from .options import (
    DEFAULT_OPTIONS,
    QUICK_OPTIONS,
    SET_PATH_OPTIONS,
    MinerOptions,
    MiningJob,
    MiningStats,
    ResultSink,
    ThreadSafeResultSink,
)
from .postprocess import postprocess_results, remove_non_maximal
from .quasiclique import (
    ceil_gamma,
    degree_floor,
    is_quasi_clique,
    is_valid_quasi_clique,
    kcore_threshold,
)
from .quick import mine_quick, missed_results
from .resultsio import FileResultSink, postprocess_file, read_results, write_results
from .density import (
    densest_subgraph_peel,
    edge_density,
    filter_by_density,
    is_dense_subgraph,
)
from .recursive_mine import recursive_mine
from .query import best_community, mine_containing
from .resumable import ResumableMiner
from .temporal import (
    TemporalGraph,
    TemporalPattern,
    diversified_top_k,
    mine_temporal_patterns,
)
from .verify import VerificationReport, verify_results

__all__ = [
    "CliqueSearchStats",
    "KernelExpansionResult",
    "expand_kernel",
    "is_clique",
    "max_clique",
    "max_clique_size",
    "top_k_quasicliques",
    "DEFAULT_OPTIONS",
    "QUICK_OPTIONS",
    "SET_PATH_OPTIONS",
    "TaskDomain",
    "bit_list",
    "bits",
    "is_quasi_clique_masked",
    "MinerOptions",
    "MiningJob",
    "MiningResult",
    "MiningStats",
    "ResultSink",
    "ThreadSafeResultSink",
    "ceil_gamma",
    "degree_floor",
    "enumerate_maximal_quasicliques",
    "enumerate_quasicliques",
    "is_quasi_clique",
    "is_valid_quasi_clique",
    "iterative_bounding",
    "kcore_threshold",
    "lower_bound",
    "lower_bound_min",
    "mine_maximal_quasicliques",
    "mine_quick",
    "mine_root",
    "missed_results",
    "FileResultSink",
    "postprocess_file",
    "read_results",
    "write_results",
    "densest_subgraph_peel",
    "edge_density",
    "filter_by_density",
    "is_dense_subgraph",
    "postprocess_results",
    "recursive_mine",
    "ResumableMiner",
    "TemporalGraph",
    "TemporalPattern",
    "best_community",
    "diversified_top_k",
    "mine_containing",
    "mine_temporal_patterns",
    "VerificationReport",
    "verify_results",
    "remove_non_maximal",
    "upper_bound",
    "upper_bound_min",
]
