"""Immutable CSR (compressed sparse row) graph backend.

The dict-of-lists `Graph` is the right container for mutable task
subgraphs, but loading a paper-scale edge list (millions of edges) into
per-vertex Python lists costs several GB. `CSRGraph` stores the whole
adjacency structure in two arrays (offsets + concatenated sorted
neighbor lists) — the classic layout the real G-thinker's vertex tables
use — while exposing the same *read* interface the mining code consumes
(`neighbors`, `neighbor_set`, `degree`, `has_edge`, `degree_in`,
`neighbors_in`, `vertices`, `subgraph`, …), so every algorithm in this
library runs on either backend unchanged. `subgraph()` returns a
mutable `Graph`, matching how tasks materialize their working sets from
the read-only global structure.

Uses `array` from the stdlib (numpy-free on purpose: the library core
has zero dependencies); vertex IDs must be 0..n-1 — `from_graph` and
`from_edges` relabel-free constructors assume compact IDs, and
`repro.graph.io.relabel_compact` produces them.
"""

from __future__ import annotations

import bisect
from array import array
from collections.abc import Iterable, Iterator

from .adjacency import Graph


class CSRGraph:
    """Read-only graph over compact vertex IDs 0..n-1."""

    __slots__ = (
        "_offsets", "_targets", "_num_vertices", "_num_edges",
        "_set_cache", "_hub_min_degree",
    )

    #: Capacity of the hub neighbor-set cache (class-level so tests can
    #: shrink it); only the top-`_set_cache_max` vertices by degree are
    #: cache-eligible.
    _set_cache_max = 4096

    def __init__(self, offsets: array, targets: array, num_edges: int):
        self._offsets = offsets
        self._targets = targets
        self._num_vertices = len(offsets) - 1
        self._num_edges = num_edges
        #: Tiny memoization of neighbor sets for hub vertices; bounded
        #: by degree — only vertices at least as connected as the
        #: `_set_cache_max`-th-highest-degree vertex are admitted.
        self._set_cache: dict[int, frozenset[int]] = {}
        self._hub_min_degree: int | None = None  # computed on first miss

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[tuple[int, int]]) -> "CSRGraph":
        """Build from an undirected edge iterable over IDs < num_vertices.

        Duplicates and self-loops are dropped, neighbor lists sorted.
        """
        adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
        for u, v in edges:
            if u == v:
                continue
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError(f"edge ({u}, {v}) outside 0..{num_vertices - 1}")
            adjacency[u].add(v)
            adjacency[v].add(u)
        offsets = array("q", [0])
        targets = array("q")
        edge_count = 0
        for v in range(num_vertices):
            nbrs = sorted(adjacency[v])
            targets.extend(nbrs)
            edge_count += len(nbrs)
            offsets.append(len(targets))
        return cls(offsets, targets, edge_count // 2)

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert a dict-backed Graph (must already have compact IDs)."""
        n = graph.num_vertices
        if n and (min(graph.vertices()) != 0 or max(graph.vertices()) != n - 1):
            raise ValueError(
                "CSRGraph requires compact vertex IDs 0..n-1; "
                "use repro.graph.io.relabel_compact first"
            )
        offsets = array("q", [0])
        targets = array("q")
        for v in range(n):
            targets.extend(graph.neighbors(v))
            offsets.append(len(targets))
        return cls(offsets, targets, graph.num_edges)

    # -- read interface (Graph-compatible) ----------------------------------

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[int]:
        return iter(range(self._num_vertices))

    def edges(self) -> Iterator[tuple[int, int]]:
        for v in range(self._num_vertices):
            for u in self.neighbors(v):
                if v < u:
                    yield (v, u)

    def neighbors(self, v: int) -> "memoryview | array":
        lo, hi = self._offsets[v], self._offsets[v + 1]
        return self._targets[lo:hi]

    def neighbors_view(self, v: int) -> memoryview:
        """Zero-copy view of v's adjacency (shares the target array).

        Unlike :meth:`neighbors`, which slices (and therefore copies)
        the target array, this returns a memoryview over it — the
        partition step stores these so building per-machine vertex
        tables costs O(1) extra memory per vertex, not a second copy
        of every adjacency list.
        """
        lo, hi = self._offsets[v], self._offsets[v + 1]
        return memoryview(self._targets)[lo:hi]

    def neighbor_set(self, v: int) -> frozenset[int]:
        cached = self._set_cache.get(v)
        if cached is None:
            cached = frozenset(self.neighbors(v))
            if (
                self.degree(v) >= self._hub_degree_threshold()
                and len(self._set_cache) < self._set_cache_max
            ):
                self._set_cache[v] = cached
        return cached

    def _hub_degree_threshold(self) -> int:
        """Minimum degree for cache admission: the cap-th-largest degree.

        With ≤ `_set_cache_max` vertices every vertex qualifies;
        otherwise only true hubs do, so a scan that touches every
        vertex once cannot evict-starve the hot hubs the mining loops
        re-query (degree ties at the threshold are admitted until the
        capacity check above stops them).
        """
        if self._hub_min_degree is None:
            n = self._num_vertices
            cap = self._set_cache_max
            if n <= cap:
                self._hub_min_degree = 0
            else:
                offsets = self._offsets
                degrees = sorted(offsets[v + 1] - offsets[v] for v in range(n))
                self._hub_min_degree = degrees[n - cap]
        return self._hub_min_degree

    def degree(self, v: int) -> int:
        return self._offsets[v + 1] - self._offsets[v]

    def has_vertex(self, v: int) -> bool:
        return 0 <= v < self._num_vertices

    def has_edge(self, u: int, v: int) -> bool:
        if not (self.has_vertex(u) and self.has_vertex(v)):
            return False
        lo, hi = self._offsets[u], self._offsets[u + 1]
        idx = bisect.bisect_left(self._targets, v, lo, hi)
        return idx < hi and self._targets[idx] == v

    def __contains__(self, v: int) -> bool:
        return self.has_vertex(v)

    def __iter__(self) -> Iterator[int]:
        return self.vertices()

    def __len__(self) -> int:
        return self._num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(|V|={self._num_vertices}, |E|={self._num_edges})"

    def adjacency_masks(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Whole-graph bitmask adjacency export: ``(verts, masks)``.

        Same shape as :meth:`repro.graph.adjacency.Graph.adjacency_masks`;
        CSR IDs are already compact, so ``verts`` is the identity tuple
        and local bit position equals vertex ID.
        """
        n = self._num_vertices
        offsets = self._offsets
        targets = self._targets
        masks = []
        for v in range(n):
            m = 0
            for i in range(offsets[v], offsets[v + 1]):
                m |= 1 << targets[i]
            masks.append(m)
        return tuple(range(n)), tuple(masks)

    def degree_in(self, v: int, vertex_set: set[int]) -> int:
        lo, hi = self._offsets[v], self._offsets[v + 1]
        if hi - lo <= len(vertex_set):
            return sum(1 for i in range(lo, hi) if self._targets[i] in vertex_set)
        return sum(1 for u in vertex_set if self.has_edge(u, v))

    def neighbors_in(self, v: int, vertex_set: set[int]) -> list[int]:
        lo, hi = self._offsets[v], self._offsets[v + 1]
        return [self._targets[i] for i in range(lo, hi) if self._targets[i] in vertex_set]

    def subgraph(self, vertex_set: Iterable[int]) -> Graph:
        """Induced *mutable* subgraph (task materialization path)."""
        keep = {v for v in vertex_set if self.has_vertex(v)}
        g = Graph()
        for v in keep:
            g.add_vertex(v)
        for v in keep:
            for u in self.neighbors(v):
                if u > v and u in keep:
                    g.add_edge(v, u)
        return g

    def to_graph(self) -> Graph:
        """Full mutable copy (tests / small graphs)."""
        g = Graph()
        for v in range(self._num_vertices):
            g.add_vertex(v)
        for v, u in self.edges():
            g.add_edge(v, u)
        return g
