"""Descriptive graph statistics.

Used by the dataset registry tests and Table 1 enrichment to verify
that synthetic analogs carry the structural properties the substitution
argument relies on (heavy-tailed degrees, high clustering around the
planted cores, small dense k-cores).
"""

from __future__ import annotations

from dataclasses import dataclass

from .adjacency import Graph
from .kcore import core_numbers


@dataclass(frozen=True)
class GraphStats:
    """One-shot summary of a graph's shape."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    density: float
    degeneracy: int
    global_clustering: float
    isolated_vertices: int

    def degree_heavy_tail_ratio(self) -> float:
        """max/mean degree — ≫1 indicates hubs (scale-free-ish)."""
        return self.max_degree / self.mean_degree if self.mean_degree else 0.0


def degree_histogram(graph: Graph) -> dict[int, int]:
    """degree → number of vertices with that degree."""
    hist: dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def triangle_count(graph: Graph) -> int:
    """Number of triangles (each counted once)."""
    count = 0
    for v in graph.vertices():
        nbrs = [u for u in graph.neighbors(v) if u > v]
        for i, u in enumerate(nbrs):
            u_set = graph.neighbor_set(u)
            for w in nbrs[i + 1 :]:
                if w in u_set:
                    count += 1
    return count


def wedge_count(graph: Graph) -> int:
    """Number of paths of length two (open or closed)."""
    return sum(d * (d - 1) // 2 for d in (graph.degree(v) for v in graph.vertices()))


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: 3·triangles / wedges."""
    wedges = wedge_count(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def local_clustering(graph: Graph, v: int) -> float:
    """Fraction of v's neighbor pairs that are themselves adjacent."""
    nbrs = graph.neighbors(v)
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    for i, u in enumerate(nbrs):
        u_set = graph.neighbor_set(u)
        for w in nbrs[i + 1 :]:
            if w in u_set:
                links += 1
    return 2.0 * links / (k * (k - 1))


def graph_stats(graph: Graph) -> GraphStats:
    """Compute the full summary (O(Σ d² ) for the clustering term)."""
    n = graph.num_vertices
    m = graph.num_edges
    degrees = sorted(graph.degree(v) for v in graph.vertices())
    if not degrees:
        return GraphStats(0, 0, 0, 0, 0.0, 0.0, 0.0, 0, 0.0, 0)
    mid = len(degrees) // 2
    median = (
        degrees[mid]
        if len(degrees) % 2
        else (degrees[mid - 1] + degrees[mid]) / 2.0
    )
    cores = core_numbers(graph)
    return GraphStats(
        num_vertices=n,
        num_edges=m,
        min_degree=degrees[0],
        max_degree=degrees[-1],
        mean_degree=2.0 * m / n,
        median_degree=median,
        density=2.0 * m / (n * (n - 1)) if n > 1 else 0.0,
        degeneracy=max(cores.values(), default=0),
        global_clustering=global_clustering_coefficient(graph),
        isolated_vertices=sum(1 for d in degrees if d == 0),
    )
