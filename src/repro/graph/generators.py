"""Seeded synthetic graph generators.

The paper evaluates on eight real graphs (Table 1) that cannot be
downloaded in this offline environment, so the dataset registry builds
*analogs* from these generators: a heavy-tailed background (preferential
attachment) plus planted near-cliques whose density clears the γ
threshold. The planted cores are what make the reproduction faithful —
they recreate the paper's central empirical fact (Figures 1–3) that a
handful of dense regions spawn tasks that are orders of magnitude more
expensive than the rest of the graph.

All generators take an integer seed and are deterministic given it.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field

from .adjacency import Graph


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) via geometric edge skipping — O(n + m) expected time."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    if p == 0.0:
        return g
    if p == 1.0:
        for u, v in itertools.combinations(range(n), 2):
            g.add_edge(u, v)
        return g
    # Iterate potential edges in lexicographic order, skipping ahead by
    # geometric jumps (Batagelj & Brandes 2005).
    lp = math.log1p(-p)
    v, w = 1, -1
    while v < n:
        w += 1 + int(math.log1p(-rng.random()) / lp)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            g.add_edge(v, w)
    return g


def gnm_random(n: int, m: int, seed: int = 0) -> Graph:
    """Uniform random graph with exactly n vertices and m distinct edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds max {max_edges} for n={n}")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def barabasi_albert(n: int, m_attach: int, seed: int = 0) -> Graph:
    """Preferential attachment: each new vertex attaches to m distinct targets."""
    if m_attach < 1 or m_attach >= n:
        raise ValueError(f"need 1 <= m_attach < n, got m_attach={m_attach}, n={n}")
    rng = random.Random(seed)
    g = Graph()
    # Repeated-nodes list: vertex v appears once per incident edge, so
    # uniform draws from it realize degree-proportional sampling.
    repeated: list[int] = []
    for v in range(m_attach):
        g.add_vertex(v)
    for v in range(m_attach, n):
        if not repeated:
            targets = list(range(v))[:m_attach]
        else:
            targets_set: set[int] = set()
            while len(targets_set) < m_attach:
                targets_set.add(rng.choice(repeated))
            targets = list(targets_set)
        g.add_vertex(v)
        for t in targets:
            g.add_edge(v, t)
            repeated.append(v)
            repeated.append(t)
    return g


def powerlaw_cluster(n: int, m_attach: int, p_triangle: float, seed: int = 0) -> Graph:
    """Holme–Kim: preferential attachment with triangle-closing steps.

    Produces the high clustering of social graphs (DBLP/Amazon analogs).
    """
    if m_attach < 1 or m_attach >= n:
        raise ValueError(f"need 1 <= m_attach < n, got m_attach={m_attach}, n={n}")
    rng = random.Random(seed)
    g = Graph()
    repeated: list[int] = []
    for v in range(m_attach):
        g.add_vertex(v)
    for v in range(m_attach, n):
        g.add_vertex(v)
        count = 0
        rejects = 0
        last_target: int | None = None
        while count < m_attach:
            # Early vertices can exhaust their preferential/triangle
            # candidate pools (everything already adjacent); after a few
            # rejects fall back to a uniform draw over valid targets.
            if rejects > 16:
                options = [u for u in range(v) if not g.has_edge(v, u)]
                candidate = rng.choice(options)
            else:
                close_triangle = (
                    last_target is not None
                    and rng.random() < p_triangle
                    and g.degree(last_target) > 0
                )
                if close_triangle:
                    candidate = rng.choice(g.neighbors(last_target))
                elif repeated:
                    candidate = rng.choice(repeated)
                else:
                    candidate = rng.randrange(v)
            if candidate != v and g.add_edge(v, candidate):
                repeated.append(v)
                repeated.append(candidate)
                last_target = candidate
                count += 1
                rejects = 0
            else:
                rejects += 1
    return g


@dataclass
class PlantedGraph:
    """A background graph with planted dense vertex sets."""

    graph: Graph
    planted: list[set[int]] = field(default_factory=list)


def plant_quasiclique(
    graph: Graph, members: list[int], gamma: float, rng: random.Random
) -> None:
    """Densify `members` in-place until it is a γ-quasi-clique.

    First sprinkles edges at density ≈ γ + margin, then repairs any
    vertex still below the ceil(γ·(k−1)) degree floor so the planted set
    is a *guaranteed* quasi-clique (possibly non-maximal in context).
    """
    k = len(members)
    if k < 2:
        return
    target = math.ceil(gamma * (k - 1) - 1e-9)
    density = min(1.0, gamma + (1.0 - gamma) * 0.5)
    for u, v in itertools.combinations(members, 2):
        if rng.random() < density:
            graph.add_edge(u, v)
    # Repair pass: raise every member's internal degree to the floor.
    member_set = set(members)
    for v in members:
        deficit = target - graph.degree_in(v, member_set)
        if deficit <= 0:
            continue
        candidates = [u for u in members if u != v and not graph.has_edge(u, v)]
        rng.shuffle(candidates)
        for u in candidates[:deficit]:
            graph.add_edge(u, v)


def planted_quasicliques(
    n: int,
    avg_degree: float,
    num_plants: int,
    plant_size: int,
    gamma: float,
    seed: int = 0,
    background: str = "ba",
    overlap: int = 0,
    plant_sizes: list[int] | None = None,
) -> PlantedGraph:
    """Heavy-tailed background plus `num_plants` planted γ-quasi-cliques.

    `overlap` > 0 makes consecutive plants share that many vertices,
    creating the overlapping-subgraph tasks the paper's decomposition
    must handle. `plant_sizes` overrides (num_plants, plant_size) with
    an explicit per-plant size list — used to plant a few *giant* cores
    among normal ones, the paper's "vertex 363 of YouTube" anatomy where
    one region's tasks dwarf everything else.
    """
    rng = random.Random(seed)
    m_attach = max(1, round(avg_degree / 2))
    if background == "ba":
        g = barabasi_albert(n, m_attach, seed=rng.randrange(2**31))
    elif background == "plc":
        g = powerlaw_cluster(n, m_attach, 0.3, seed=rng.randrange(2**31))
    elif background == "er":
        g = erdos_renyi(n, min(1.0, avg_degree / max(1, n - 1)), seed=rng.randrange(2**31))
    else:
        raise ValueError(f"unknown background model {background!r}")
    sizes = list(plant_sizes) if plant_sizes is not None else [plant_size] * num_plants
    plants: list[set[int]] = []
    prev: list[int] = []
    vertices = list(range(n))
    for size in sizes:
        members = rng.sample(vertices, size)
        if overlap and prev:
            shared = min(overlap, len(prev), size - 1)
            members[:shared] = rng.sample(prev, shared)
            members = list(dict.fromkeys(members))
            while len(members) < size:
                extra = rng.randrange(n)
                if extra not in members:
                    members.append(extra)
        plant_quasiclique(g, members, gamma, rng)
        plants.append(set(members))
        prev = members
    return PlantedGraph(graph=g, planted=plants)


def coexpression_like(
    n_genes: int,
    n_modules: int,
    module_size: int,
    gamma: float = 0.85,
    noise_avg_degree: float = 4.0,
    seed: int = 0,
) -> PlantedGraph:
    """Gene-coexpression analog (CX_GSE1730 / CX_GSE10158 substitutes).

    Coexpression graphs threshold a gene–gene correlation matrix, which
    yields many medium-size dense modules over a sparse background —
    exactly what dense-module planting over an ER background produces.
    """
    rng = random.Random(seed)
    p = min(1.0, noise_avg_degree / max(1, n_genes - 1))
    g = erdos_renyi(n_genes, p, seed=rng.randrange(2**31))
    plants: list[set[int]] = []
    for _ in range(n_modules):
        members = rng.sample(range(n_genes), module_size)
        plant_quasiclique(g, members, gamma, rng)
        plants.append(set(members))
    return PlantedGraph(graph=g, planted=plants)


def random_connected_graph(n: int, extra_edge_prob: float, seed: int = 0) -> Graph:
    """Random spanning tree plus independent extra edges (test workloads)."""
    rng = random.Random(seed)
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    for u, v in itertools.combinations(range(n), 2):
        if rng.random() < extra_edge_prob:
            g.add_edge(u, v)
    return g
