"""One graph-access interface from TaskDomain to the wire.

Every layer that reads adjacency — task spawning, pull resolution,
:class:`~repro.core.domain.TaskDomain` construction — goes through the
:class:`GraphAccess` protocol instead of a concrete graph container.
Three implementations cover the executor spectrum:

* :class:`InMemoryGraphAccess` (here) — wraps a whole
  :class:`~repro.graph.adjacency.Graph` / :class:`~repro.graph.csr.
  CSRGraph`; the serial and threaded executors, where every vertex is
  one dict/array lookup away.
* :class:`~repro.gthinker.vertex_store.SharedGraphAccess` — the
  process pool's fork- or shared-memory-inherited replica; same
  synchronous semantics, tagged with how the replica was shipped.
* :class:`~repro.gthinker.vertex_store.RemoteGraphAccess` — the
  cluster worker's partition: a local vertex table plus a bounded
  remote cache, where non-owned vertices must first be fetched over
  the wire (``unresolved`` → VertexRequest → ``admit``).

The protocol is deliberately pull-shaped, mirroring G-thinker's
data-service UDF surface: `resolve` serves a task's batched pulls,
`unresolved` tells the caller which of those need an asynchronous
fetch first (always none for the in-memory implementations), and
`prefetch` is a hint that costs nothing to ignore.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

__all__ = ["GraphAccess", "InMemoryGraphAccess"]


@runtime_checkable
class GraphAccess(Protocol):
    """Adjacency reads, batched pulls, and fetch hints — the one
    interface mining code may use to see the input graph."""

    def neighbors(self, vertex: int) -> Sequence[int]:
        """Adjacency of `vertex` (empty for vertices not in the graph).

        Must only be called for vertices that are locally resolvable —
        i.e. not listed by :meth:`unresolved`.
        """
        ...

    def degree(self, vertex: int) -> int:
        """``len(neighbors(vertex))`` without materializing a copy."""
        ...

    def resolve(self, vertex_ids: Iterable[int]) -> dict[int, Sequence[int]]:
        """Serve a task's pull batch; ``{vertex: adjacency}``.

        Vertices absent from the graph resolve to empty sequences. Every
        requested vertex must be locally resolvable (see
        :meth:`unresolved`); remote implementations raise otherwise.
        """
        ...

    def unresolved(self, vertex_ids: Iterable[int]) -> list[int]:
        """The subset of `vertex_ids` that needs an asynchronous fetch
        before :meth:`resolve`/:meth:`neighbors` may be called.

        Always empty for in-memory implementations; the cluster worker
        turns a non-empty answer into a batched ``VertexRequest``.
        """
        ...

    def prefetch(self, vertex_ids: Iterable[int]) -> None:
        """Hint that `vertex_ids` will be pulled soon. Best-effort."""
        ...

    def adjacency_mask(self, vertex: int, members: Sequence[int]) -> int:
        """Bitmask of `vertex`'s neighbors within the ordered `members`
        (bit *i* set iff ``members[i]`` is adjacent) — the compact-ID
        export :class:`~repro.core.domain.TaskDomain` builds from."""
        ...


class InMemoryGraphAccess:
    """:class:`GraphAccess` over a whole in-memory graph.

    Wraps either adjacency container (`Graph` or `CSRGraph`); every
    lookup is local, so `unresolved` is always empty and `prefetch` is
    a no-op. Also forwards ``adjacency_masks()``/``has_vertex`` so the
    wrapped object can stand in wherever a read-only graph is expected
    (e.g. ``TaskDomain.from_access``).
    """

    def __init__(self, graph):
        self.graph = graph

    def neighbors(self, vertex: int) -> Sequence[int]:
        if not self.graph.has_vertex(vertex):
            return ()
        return self.graph.neighbors(vertex)

    def degree(self, vertex: int) -> int:
        if not self.graph.has_vertex(vertex):
            return 0
        return self.graph.degree(vertex)

    def has_vertex(self, vertex: int) -> bool:
        return self.graph.has_vertex(vertex)

    def resolve(self, vertex_ids: Iterable[int]) -> dict[int, Sequence[int]]:
        return {v: self.neighbors(v) for v in vertex_ids}

    def unresolved(self, vertex_ids: Iterable[int]) -> list[int]:
        return []

    def prefetch(self, vertex_ids: Iterable[int]) -> None:
        pass  # everything is already resident

    def adjacency_mask(self, vertex: int, members: Sequence[int]) -> int:
        nbrs = self.neighbors(vertex)
        nbr_set = set(nbrs) if not isinstance(nbrs, (set, frozenset)) else nbrs
        mask = 0
        for i, m in enumerate(members):
            if m in nbr_set:
                mask |= 1 << i
        return mask

    def adjacency_masks(self):
        """Whole-graph bitmask export, forwarded from the wrapped graph."""
        return self.graph.adjacency_masks()

    def vertices(self):
        return self.graph.vertices()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMemoryGraphAccess({self.graph!r})"
