"""BFS distances, 2-hop neighborhoods, and connectivity.

The diameter pruning rule (paper Theorem 1) bounds a γ-quasi-clique's
diameter by 2 for γ ≥ 0.5, so the only neighborhood primitive mining
needs is B(v) = N2(v) ∪ N1(v): everything reachable within two hops.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from .adjacency import Graph


def bfs_distances(graph: Graph, source: int, max_depth: int | None = None) -> dict[int, int]:
    """Hop distance from `source` to every reachable vertex (≤ max_depth)."""
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        v = frontier.popleft()
        d = dist[v]
        if max_depth is not None and d >= max_depth:
            continue
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = d + 1
                frontier.append(u)
    return dist


def two_hop_neighbors(graph: Graph, v: int) -> set[int]:
    """B(v) = N+2(v) − {v}: vertices within 2 hops of v, excluding v."""
    out: set[int] = set()
    for u in graph.neighbors(v):
        out.add(u)
        out.update(graph.neighbor_set(u))
    out.discard(v)
    return out


def within_two_hops(graph: Graph, v: int, u: int) -> bool:
    """True iff δ(u, v) ≤ 2 in `graph` (u ≠ v assumed interesting)."""
    if u == v:
        return True
    nv = graph.neighbor_set(v)
    if u in nv:
        return True
    nu = graph.neighbor_set(u)
    small, large = (nu, nv) if len(nu) < len(nv) else (nv, nu)
    return any(w in large for w in small)


def connected_components(graph: Graph) -> list[set[int]]:
    seen: set[int] = set()
    comps: list[set[int]] = []
    for s in graph.vertices():
        if s in seen:
            continue
        comp = {s}
        frontier = deque([s])
        while frontier:
            v = frontier.popleft()
            for u in graph.neighbors(v):
                if u not in comp:
                    comp.add(u)
                    frontier.append(u)
        seen |= comp
        comps.append(comp)
    return comps


def is_connected(graph: Graph) -> bool:
    n = graph.num_vertices
    if n <= 1:
        return True
    start = next(iter(graph.vertices()))
    return len(bfs_distances(graph, start)) == n


def is_connected_subset(graph: Graph, vertex_set: Iterable[int]) -> bool:
    """True iff the subgraph induced by `vertex_set` is connected."""
    vs = set(vertex_set)
    if len(vs) <= 1:
        return True
    start = next(iter(vs))
    seen = {start}
    frontier = deque([start])
    while frontier:
        v = frontier.popleft()
        for u in graph.neighbors(v):
            if u in vs and u not in seen:
                seen.add(u)
                frontier.append(u)
    return len(seen) == len(vs)


def diameter(graph: Graph) -> int:
    """Exact diameter via all-source BFS (test/diagnostic use only)."""
    best = 0
    for v in graph.vertices():
        dist = bfs_distances(graph, v)
        if len(dist) != graph.num_vertices:
            raise ValueError("diameter undefined: graph is disconnected")
        best = max(best, max(dist.values(), default=0))
    return best
