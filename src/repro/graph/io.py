"""Graph readers and writers.

Two interchange formats are supported:

* **Edge list** — one `u v` pair per line, `#`-prefixed comment lines
  ignored; this is the SNAP download format the paper's datasets use
  (Ca-GrQc, Enron, com-DBLP, com-Amazon, com-Youtube).
* **Adjacency** — one `v: u1 u2 ...` line per vertex; preserves isolated
  vertices, which edge lists cannot represent.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from .adjacency import Graph


def read_edge_list(path: str | os.PathLike) -> Graph:
    """Read a whitespace-separated edge list; `#` starts a comment line."""
    g = Graph()
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            g.add_edge(int(parts[0]), int(parts[1]))
    return g


def write_edge_list(graph: Graph, path: str | os.PathLike, header: str | None = None) -> None:
    """Write each undirected edge once as `u v`."""
    with open(path, "w") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        for u, v in graph.edges():
            f.write(f"{u} {v}\n")


def read_adjacency(path: str | os.PathLike) -> Graph:
    """Read `v: u1 u2 ...` lines; preserves isolated vertices."""
    g = Graph()
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head, _, rest = line.partition(":")
            v = int(head)
            g.add_vertex(v)
            for tok in rest.split():
                g.add_edge(v, int(tok))
    return g


def write_adjacency(graph: Graph, path: str | os.PathLike) -> None:
    with open(path, "w") as f:
        for v in sorted(graph.vertices()):
            nbrs = " ".join(str(u) for u in graph.neighbors(v))
            f.write(f"{v}: {nbrs}\n")


def relabel_compact(graph: Graph) -> tuple[Graph, dict[int, int]]:
    """Relabel vertices to 0..n-1 (sorted by old ID); returns (graph, old->new)."""
    mapping = {v: i for i, v in enumerate(sorted(graph.vertices()))}
    g = Graph()
    for v in graph.vertices():
        g.add_vertex(mapping[v])
    for u, v in graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g, mapping


def from_edge_iterable(edges: Iterable[tuple[int, int]]) -> Graph:
    """Convenience wrapper mirroring Graph.from_edges for pipeline code."""
    return Graph.from_edges(edges)
