"""Ego-network extraction mirroring the task-spawn pipeline.

A G-thinker task spawned from vertex v mines the k-core of v's 2-hop
ego network restricted to IDs > v (paper Algorithms 4, 6, 7). These
helpers provide that extraction as a standalone, serially-testable
operation; the distributed engine performs the same construction
incrementally over pull rounds.
"""

from __future__ import annotations

from .adjacency import Graph
from .kcore import k_core


def ego_network(graph: Graph, root: int, hops: int = 2) -> Graph:
    """Induced subgraph on all vertices within `hops` of `root` (incl. root)."""
    frontier = {root}
    members = {root}
    for _ in range(hops):
        nxt: set[int] = set()
        for v in frontier:
            nxt |= graph.neighbor_set(v)
        nxt -= members
        members |= nxt
        frontier = nxt
    return graph.subgraph(members)


def spawn_subgraph(graph: Graph, root: int, k: int) -> Graph:
    """The task subgraph for `root`: 2-hop ego net, IDs > root, k-core.

    Matches the net effect of paper Algorithms 6–7: keep only vertices
    with ID ≥ root (the root itself plus larger-ID candidates, the
    set-enumeration dedup of Figure 5), drop vertices of global degree
    < k, then shrink to the k-core. Returns a graph that still contains
    `root`, or an empty graph if root is peeled away.
    """
    if graph.degree(root) < k:
        return Graph()
    members = {root}
    one_hop = [u for u in graph.neighbors(root) if u > root and graph.degree(u) >= k]
    members.update(one_hop)
    for u in one_hop:
        for w in graph.neighbors(u):
            if w > root and graph.degree(w) >= k:
                members.add(w)
    sub = graph.subgraph(members)
    sub = k_core(sub, k)
    if root not in sub:
        return Graph()
    return sub


def candidate_extension(sub: Graph, root: int) -> list[int]:
    """ext({root}) inside a spawned subgraph: every other vertex, sorted."""
    return sorted(v for v in sub.vertices() if v != root)
