"""Graph substrate: containers, I/O, generators, k-core, traversal."""

from .access import GraphAccess, InMemoryGraphAccess
from .adjacency import Graph
from .csr import CSRGraph
from .kcore import core_numbers, k_core, k_core_vertices
from .stats import GraphStats, graph_stats
from .traversal import (
    bfs_distances,
    connected_components,
    is_connected,
    is_connected_subset,
    two_hop_neighbors,
)

__all__ = [
    "CSRGraph",
    "Graph",
    "GraphAccess",
    "InMemoryGraphAccess",
    "GraphStats",
    "graph_stats",
    "bfs_distances",
    "connected_components",
    "core_numbers",
    "is_connected",
    "is_connected_subset",
    "k_core",
    "k_core_vertices",
    "two_hop_neighbors",
]
