"""Undirected simple-graph container used by every other subsystem.

The mining algorithms issue three hot operations: neighbor iteration,
O(1) adjacency membership tests, and induced-subgraph extraction. The
container therefore keeps, per vertex, both a sorted neighbor list (for
deterministic iteration and merge-style set intersection) and a neighbor
set (for membership). Vertex IDs are arbitrary non-negative integers and
are preserved by subgraph extraction, which is essential: a G-thinker
task's subgraph must keep global IDs so results from different tasks can
be merged.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator, Mapping


class Graph:
    """An undirected simple graph with integer vertex IDs.

    Self-loops and parallel edges are silently dropped at construction,
    matching the paper's simple-graph model (Section 3.1).
    """

    __slots__ = ("_adj", "_adj_set", "_num_edges")

    def __init__(self, adjacency: Mapping[int, Iterable[int]] | None = None):
        self._adj: dict[int, list[int]] = {}
        self._adj_set: dict[int, set[int]] = {}
        self._num_edges = 0
        if adjacency:
            for v, nbrs in adjacency.items():
                self.add_vertex(v)
                for u in nbrs:
                    self.add_vertex(u)
                    self.add_edge(v, u)

    # -- construction -------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], vertices: Iterable[int] | None = None
    ) -> "Graph":
        """Build a graph from an edge iterable, plus optional isolated vertices."""
        g = cls()
        if vertices is not None:
            for v in vertices:
                g.add_vertex(v)
        for u, v in edges:
            g.add_vertex(u)
            g.add_vertex(v)
            g.add_edge(u, v)
        return g

    def add_vertex(self, v: int) -> None:
        if v not in self._adj_set:
            self._adj[v] = []
            self._adj_set[v] = set()

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge {u, v}; returns False for self-loops and duplicates."""
        if u == v:
            return False
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj_set[u]:
            return False
        self._adj_set[u].add(v)
        self._adj_set[v].add(u)
        # Keep neighbor lists sorted by insertion into the right slot;
        # bulk builders should prefer from_edges + finalize-free appends.
        self._insort(self._adj[u], v)
        self._insort(self._adj[v], u)
        self._num_edges += 1
        return True

    @staticmethod
    def _insort(lst: list[int], x: int) -> None:
        bisect.insort(lst, x)

    def remove_vertex(self, v: int) -> None:
        """Remove v and all incident edges."""
        for u in self._adj[v]:
            self._adj_set[u].discard(v)
            self._adj[u].remove(v)
            self._num_edges -= 1
        del self._adj[v]
        del self._adj_set[v]

    # -- queries ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as (min, max)."""
        for v, nbrs in self._adj.items():
            for u in nbrs:
                if v < u:
                    yield (v, u)

    def neighbors(self, v: int) -> list[int]:
        """Sorted neighbor list of v (do not mutate)."""
        return self._adj[v]

    def neighbors_view(self, v: int) -> list[int]:
        """Zero-copy read-only view of v's adjacency.

        For the dict-of-lists backend this is the live list itself
        (callers must treat it as frozen); the CSR backend returns a
        memoryview over its target array. Partitioning stores these
        views so the partition step never doubles the graph's memory.
        """
        return self._adj[v]

    def neighbor_set(self, v: int) -> set[int]:
        """Neighbor set of v (do not mutate)."""
        return self._adj_set[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_vertex(self, v: int) -> bool:
        return v in self._adj_set

    def has_edge(self, u: int, v: int) -> bool:
        su = self._adj_set.get(u)
        return su is not None and v in su

    def __contains__(self, v: int) -> bool:
        return v in self._adj_set

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj_set == other._adj_set

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"

    # -- derived graphs -----------------------------------------------

    def subgraph(self, vertex_set: Iterable[int]) -> "Graph":
        """Induced subgraph on `vertex_set`, preserving vertex IDs.

        Vertices absent from the graph are ignored.
        """
        keep = {v for v in vertex_set if v in self._adj_set}
        g = Graph()
        for v in keep:
            g.add_vertex(v)
        adj = g._adj
        adj_set = g._adj_set
        edges = 0
        for v in keep:
            nbrs = [u for u in self._adj[v] if u in keep]
            adj[v] = nbrs
            adj_set[v] = set(nbrs)
            edges += len(nbrs)
        g._num_edges = edges // 2
        return g

    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: list(nbrs) for v, nbrs in self._adj.items()}
        g._adj_set = {v: set(s) for v, s in self._adj_set.items()}
        g._num_edges = self._num_edges
        return g

    def adjacency_masks(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Whole-graph bitmask adjacency export: ``(verts, masks)``.

        ``verts`` lists the vertex IDs ascending; ``masks[i]`` has bit
        ``j`` set iff ``verts[i]`` and ``verts[j]`` are adjacent. This is
        the shared construction consumed by
        :class:`repro.core.domain.TaskDomain` (CSRGraph exports the same
        shape), so the mask-native mining path runs on either backend.
        """
        verts = tuple(sorted(self._adj))
        index = {g: i for i, g in enumerate(verts)}
        masks = []
        for g in verts:
            m = 0
            for u in self._adj[g]:
                m |= 1 << index[u]
            masks.append(m)
        return verts, tuple(masks)

    def degree_in(self, v: int, vertex_set: set[int]) -> int:
        """d_{V'}(v): number of v's neighbors inside `vertex_set`."""
        s = self._adj_set[v]
        if len(s) <= len(vertex_set):
            return sum(1 for u in s if u in vertex_set)
        return sum(1 for u in vertex_set if u in s)

    def neighbors_in(self, v: int, vertex_set: set[int]) -> list[int]:
        """Γ_{V'}(v): v's neighbors inside `vertex_set`, sorted."""
        return [u for u in self._adj[v] if u in vertex_set]
