"""k-core peeling and core decomposition.

The paper's (T1) observation is that shrinking the input to its k-core
with k = ceil(γ·(τ_size − 1)) — Theorem 2, size-threshold pruning — "is
actually a dominating factor to scale beyond a small graph". The O(|E|)
bucket peeling algorithm here follows Batagelj & Zaversnik [13].
"""

from __future__ import annotations

from collections.abc import Iterable

from .adjacency import Graph


def core_numbers(graph: Graph) -> dict[int, int]:
    """Core number of every vertex via O(|E|) bucket peeling."""
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return {}
    max_deg = max(degrees.values())
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v, d in degrees.items():
        buckets[d].append(v)
    core: dict[int, int] = {}
    seen: set[int] = set()
    cur = 0
    # Process vertices in nondecreasing current-degree order; a vertex's
    # degree only decreases as neighbors peel, so lazy bucket moves work.
    pending = degrees.copy()
    d = 0
    while len(seen) < len(degrees):
        while d <= max_deg and not buckets[d]:
            d += 1
        v = buckets[d].pop()
        if v in seen or pending[v] != d:
            continue
        seen.add(v)
        cur = max(cur, d)
        core[v] = cur
        for u in graph.neighbors(v):
            if u in seen:
                continue
            if pending[u] > d:
                pending[u] -= 1
                buckets[pending[u]].append(u)
                if pending[u] < d:
                    d = pending[u]
    return core


def k_core_vertices(graph: Graph, k: int) -> set[int]:
    """Vertices of the k-core: maximal subgraph with all degrees ≥ k."""
    if k <= 0:
        return set(graph.vertices())
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    queue = [v for v, d in degrees.items() if d < k]
    removed: set[int] = set()
    while queue:
        v = queue.pop()
        if v in removed:
            continue
        removed.add(v)
        for u in graph.neighbors(v):
            if u in removed:
                continue
            degrees[u] -= 1
            if degrees[u] == k - 1:
                queue.append(u)
    return {v for v in graph.vertices() if v not in removed}


def k_core(graph: Graph, k: int) -> Graph:
    """The k-core of `graph` as an induced subgraph (IDs preserved)."""
    return graph.subgraph(k_core_vertices(graph, k))


def peel_adjacency(adj: dict[int, set[int]], k: int) -> None:
    """In-place k-core peel of a mutable adjacency-set dict.

    This variant serves task-subgraph shrinking (paper Algorithms 6–7,
    `t.g ← k-core(t.g)`), where the subgraph is a plain dict being built
    incrementally and copying into a Graph each round would dominate.
    Destination-only vertices (present in someone's neighbor set but not
    as a key) count toward degrees but are never peeled, mirroring the
    paper's note that 2-hop destinations without fetched adjacency lists
    "stay untouched ... (though counted for degree checking)".
    """
    if k <= 0:
        return
    queue = [v for v, nbrs in adj.items() if len(nbrs) < k]
    while queue:
        v = queue.pop()
        nbrs = adj.pop(v, None)
        if nbrs is None:
            continue
        for u in nbrs:
            s = adj.get(u)
            if s is not None:
                s.discard(v)
                if len(s) == k - 1:
                    queue.append(u)


def degeneracy_order(graph: Graph) -> list[int]:
    """Vertices in a degeneracy (smallest-degree-first peel) order."""
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    order: list[int] = []
    alive = set(degrees)
    import heapq

    heap = [(d, v) for v, d in degrees.items()]
    heapq.heapify(heap)
    while heap:
        d, v = heapq.heappop(heap)
        if v not in alive or degrees[v] != d:
            continue
        alive.discard(v)
        order.append(v)
        for u in graph.neighbors(v):
            if u in alive:
                degrees[u] -= 1
                heapq.heappush(heap, (degrees[u], u))
    return order


def max_core(graph: Graph) -> int:
    """Degeneracy of the graph (maximum k with a non-empty k-core)."""
    cores = core_numbers(graph)
    return max(cores.values(), default=0)


def shrink_to_quasiclique_core(graph: Graph, gamma: float, min_size: int) -> Graph:
    """Apply Theorem 2: keep only the ceil(γ·(τ_size−1))-core.

    No vertex of a valid quasi-clique (|S| ≥ τ_size, degree fraction γ)
    can have global degree below k = ceil(γ·(τ_size−1)).
    """
    from ..core.quasiclique import ceil_gamma

    k = ceil_gamma(gamma, min_size - 1)
    return k_core(graph, k)


def restrict_vertices(vertices: Iterable[int], min_id: int) -> list[int]:
    """IDs strictly greater than `min_id` (set-enumeration dedup helper)."""
    return [v for v in vertices if v > min_id]
