"""repro — Scalable Mining of Maximal Quasi-Cliques (VLDB 2020 reproduction).

An algorithm-system codesign: a pruning-complete recursive miner for
maximal γ-quasi-cliques (the Quick lineage, corrected), plus a reforged
G-thinker task engine with a global big-task queue, disk spilling, task
stealing, and time-delayed task decomposition.

Quickstart::

    from repro import mine_maximal_quasicliques
    from repro.graph.generators import planted_quasicliques

    pg = planted_quasicliques(n=300, avg_degree=6, num_plants=3,
                              plant_size=9, gamma=0.9, seed=7)
    result = mine_maximal_quasicliques(pg.graph, gamma=0.9, min_size=8)
    for qc in sorted(result.maximal, key=len, reverse=True):
        print(sorted(qc))
"""

from .core.miner import MiningResult, mine_maximal_quasicliques
from .core.options import (
    DEFAULT_OPTIONS,
    QUICK_OPTIONS,
    MinerOptions,
    MiningStats,
    ResultSink,
)
from .core.postprocess import postprocess_results
from .core.quasiclique import is_quasi_clique, is_valid_quasi_clique
from .core.quick import mine_quick
from .graph.adjacency import Graph
from .graph.generators import planted_quasicliques
from .graph.io import read_edge_list, write_edge_list
from .graph.kcore import core_numbers, k_core

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "MinerOptions",
    "MiningResult",
    "MiningStats",
    "ResultSink",
    "DEFAULT_OPTIONS",
    "QUICK_OPTIONS",
    "core_numbers",
    "is_quasi_clique",
    "is_valid_quasi_clique",
    "k_core",
    "mine_maximal_quasicliques",
    "mine_quick",
    "planted_quasicliques",
    "postprocess_results",
    "read_edge_list",
    "write_edge_list",
    "__version__",
]
