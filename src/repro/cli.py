"""Command-line front end: mine maximal quasi-cliques from an edge list.

Examples::

    quasiclique-mine graph.txt --gamma 0.9 --min-size 18
    quasiclique-mine graph.txt --gamma 0.8 --min-size 10 \
        --machines 2 --threads 4 --tau-split 64 --tau-time 5000
    quasiclique-mine graph.txt --gamma 0.8 --min-size 10 \
        --backend process --num-procs 4
    quasiclique-mine graph.txt --gamma 0.8 --min-size 10 \
        --backend cluster --num-procs 2
    quasiclique-mine --dataset hyves --simulate --machines 16 --threads 32
    quasiclique-mine cluster-master graph.txt --gamma 0.8 --min-size 10 \
        --workers 4 --port 7464
    quasiclique-mine cluster-worker --host master-host --port 7464
    quasiclique-mine cluster-status --host master-host --port 7464
    quasiclique-mine trace-report run.jsonl --top 10
    quasiclique-mine serve --root state/ --port 7477
    quasiclique-mine submit --url http://localhost:7477 graph.txt \
        --gamma 0.9 --min-size 10 --wait
    quasiclique-mine jobs --url http://localhost:7477
    quasiclique-mine communities --url http://localhost:7477 job-000001 \
        --vertex 42 --top 5
    quasiclique-mine graph.txt --gamma 0.9 --min-size 10 --query 42
    quasiclique-mine --postprocess raw.txt maximal.txt
    quasiclique-mine graph.txt --stats
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .core.miner import mine_maximal_quasicliques
from .core.query import mine_containing
from .core.resultsio import postprocess_file
from .core.resumable import ResumableMiner
from .datasets.registry import build_dataset, dataset_names, get_dataset
from .graph.io import read_edge_list
from .gthinker.config import EngineConfig
from .gthinker.engine import mine_parallel
from .gthinker.engine_mp import mine_multiprocess
from .gthinker.simulation import simulate_cluster


def format_run_summary(out, backend: str | None = None,
                       workers: int | None = None) -> str:
    """The per-backend ``key=value`` tail of the one-line run summary.

    Every front end (the local CLI, the cluster-master subcommand)
    prints the same line, so the fields live here in exactly one place.
    The ``backend=process procs=N`` / ``backend=cluster workers=N``
    prefixes are load-bearing: the CI smoke jobs grep for them.
    """
    m = out.metrics
    parts: list[str] = []
    if backend == "process":
        parts.append(f"backend=process procs={workers}")
    elif backend == "cluster":
        parts.append(f"backend=cluster workers={workers}")
    parts += [f"tasks={m.tasks_executed}", f"decomposed={m.tasks_decomposed}"]
    if backend == "cluster":
        parts += [f"steals={m.steals}", f"stolen_tasks={m.stolen_tasks}"]
    else:
        parts.append(f"spills={m.spill_batches}")
    if m.workers_died:
        parts += [
            f"workers_died={m.workers_died}",
            f"retried={m.tasks_retried}",
            f"quarantined={m.tasks_quarantined}",
        ]
        if m.stale_results_dropped:
            parts.append(f"stale_dropped={m.stale_results_dropped}")
    return " " + " ".join(parts)


def dump_metrics_json(metrics, path: str) -> None:
    """Write one run's EngineMetrics as a JSON document."""
    import dataclasses
    import json

    with open(path, "w") as f:
        json.dump(dataclasses.asdict(metrics), f, indent=2, sort_keys=True)
        f.write("\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quasiclique-mine",
        description="Mine all maximal γ-quasi-cliques of an undirected graph "
        "(VLDB 2020 algorithm-system codesign reproduction).",
    )
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("graph", nargs="?", help="edge-list file (SNAP format)")
    src.add_argument(
        "--dataset",
        choices=dataset_names(),
        help="mine a built-in synthetic analog of a paper dataset",
    )
    src.add_argument(
        "--postprocess", nargs=2, metavar=("SRC", "DST"),
        help="maximality-filter a result file and exit",
    )
    parser.add_argument("--gamma", type=float, default=None,
                        help="degree threshold γ ∈ [0.5, 1]")
    parser.add_argument("--min-size", type=int, default=None,
                        help="minimum quasi-clique size τ_size")
    parser.add_argument("--machines", type=int, default=1)
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--tau-split", type=int, default=64,
                        help="big-task routing / split threshold")
    parser.add_argument("--tau-time", type=float, default=float("inf"),
                        help="time-delayed decomposition budget "
                        "(ops by default, seconds with --wall-clock)")
    parser.add_argument("--wall-clock", action="store_true",
                        help="interpret --tau-time as seconds")
    parser.add_argument("--decompose", choices=["timed", "size", "none"],
                        default="timed")
    parser.add_argument("--backend",
                        choices=["serial", "threaded", "process", "cluster",
                                 "simulated"],
                        default=None,
                        help="executor: 'serial' (engine fast path), "
                        "'threaded' (GIL-bound threads), 'process' "
                        "(multiprocessing worker pool; true multi-core), "
                        "'cluster' (localhost TCP master/worker runtime; "
                        "multi-host via the cluster-master/cluster-worker "
                        "subcommands), 'simulated' (virtual-time cluster); "
                        "default picks serial/threaded from "
                        "--machines/--threads")
    parser.add_argument("--num-procs", type=int, default=0, metavar="N",
                        help="process/cluster-backend worker count "
                        "(0 = cpu count)")
    parser.add_argument("--mp-start-method", default=None,
                        choices=["fork", "spawn", "forkserver"],
                        help="process-backend start method (default: fork "
                        "where available, else spawn)")
    parser.add_argument("--max-attempts", type=int, default=3, metavar="N",
                        help="process-backend fault tolerance: dispatches "
                        "per task before it is quarantined as poisoned "
                        "(default: 3)")
    parser.add_argument("--lease-slack", type=float, default=10.0,
                        metavar="SECONDS",
                        help="process-backend fault tolerance: slack added "
                        "to each batch's lease deadline before its worker "
                        "is declared wedged (default: 10)")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        metavar="SECONDS",
                        help="process-backend fault tolerance: base delay "
                        "before redispatching a reclaimed task; doubles "
                        "per attempt (default: 0.05)")
    parser.add_argument("--simulate", action="store_true",
                        help="run on the discrete-event simulated cluster "
                        "(same as --backend simulated)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="record scheduler events and write them as JSON "
                        "lines to FILE (engine and --simulate modes)")
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write the run's engine metrics as JSON to FILE "
                        "(engine modes only)")
    parser.add_argument("--progress", action="store_true",
                        help="render live progress snapshots to stderr "
                        "(process/cluster backends)")
    parser.add_argument("--serial", action="store_true",
                        help="use the plain serial miner (no engine)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    parser.add_argument("--output", help="write results (one set per line)")
    parser.add_argument("--query", type=int, action="append", default=None,
                        metavar="V",
                        help="mine only quasi-cliques containing vertex V "
                        "(repeatable)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="run resumably, checkpointing per root into "
                        "this directory")
    parser.add_argument("--stats", action="store_true",
                        help="print graph statistics and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    raw = sys.argv[1:] if argv is None else argv
    if raw and raw[0] in ("cluster-master", "cluster-worker", "cluster-status"):
        from .gthinker.cluster.cli import master_cli, status_cli, worker_cli

        dispatch = {"cluster-master": master_cli,
                    "cluster-worker": worker_cli,
                    "cluster-status": status_cli}[raw[0]]
        return dispatch(raw[1:])
    if raw and raw[0] in ("serve", "submit", "jobs", "communities"):
        from .service.cli import service_cli

        return service_cli(raw[0], raw[1:])
    if raw and raw[0] == "trace-report":
        from .gthinker.obs.report import report_cli

        return report_cli(raw[1:])
    if raw and raw[0] == "sim-fuzz":
        from .gthinker.sim.cli import sim_fuzz_cli

        return sim_fuzz_cli(raw[1:])
    args = build_parser().parse_args(raw)

    if args.postprocess:
        read, kept = postprocess_file(args.postprocess[0], args.postprocess[1])
        print(f"postprocess: read={read} kept={kept} -> {args.postprocess[1]}")
        return 0

    if args.dataset:
        spec = get_dataset(args.dataset)
        graph = build_dataset(args.dataset).graph
        gamma = args.gamma if args.gamma is not None else spec.gamma
        min_size = args.min_size if args.min_size is not None else spec.min_size
    else:
        graph = read_edge_list(args.graph)
        if args.gamma is None or args.min_size is None:
            print("error: --gamma and --min-size are required with a graph file",
                  file=sys.stderr)
            return 2
        gamma, min_size = args.gamma, args.min_size

    if args.stats:
        from .graph.stats import graph_stats

        stats = graph_stats(graph)
        print(f"|V|={stats.num_vertices} |E|={stats.num_edges} "
              f"deg[min/mean/max]={stats.min_degree}/"
              f"{stats.mean_degree:.2f}/{stats.max_degree} "
              f"degeneracy={stats.degeneracy} "
              f"clustering={stats.global_clustering:.3f} "
              f"density={stats.density:.5f}")
        return 0

    backend = args.backend
    if args.simulate:
        if backend not in (None, "simulated"):
            print("error: --simulate conflicts with "
                  f"--backend {backend}", file=sys.stderr)
            return 2
        backend = "simulated"
    if backend is not None and (args.serial or args.query or args.checkpoint_dir):
        print("error: --backend selects an engine executor; it cannot be "
              "combined with --serial, --query, or --checkpoint-dir",
              file=sys.stderr)
        return 2
    if backend == "serial" and args.machines * args.threads != 1:
        print("error: --backend serial runs one machine x one thread; "
              "drop --machines/--threads or use --backend threaded",
              file=sys.stderr)
        return 2

    config = EngineConfig(
        num_machines=args.machines,
        threads_per_machine=args.threads,
        tau_split=args.tau_split,
        tau_time=args.tau_time,
        time_unit="wall" if args.wall_clock else "ops",
        decompose=args.decompose,
        backend=backend or "auto",
        num_procs=args.num_procs,
        max_attempts=args.max_attempts,
        lease_slack=args.lease_slack,
        retry_backoff=args.retry_backoff,
    )

    if args.metrics_json and (args.serial or args.query or args.checkpoint_dir):
        print("error: --metrics-json requires an engine mode "
              "(default or --simulate)", file=sys.stderr)
        return 2

    on_progress = None
    if args.progress:
        if config.backend not in ("process", "cluster"):
            print("error: --progress requires --backend process or cluster "
                  "(the distributed coordinators emit the snapshots)",
                  file=sys.stderr)
            return 2
        from .gthinker.obs import format_progress

        on_progress = lambda s: print(format_progress(s), file=sys.stderr)  # noqa: E731

    tracer = None
    if args.trace:
        if args.serial or args.query or args.checkpoint_dir:
            print("error: --trace requires an engine mode "
                  "(default or --simulate)", file=sys.stderr)
            return 2
        trace_dir = os.path.dirname(os.path.abspath(args.trace))
        if not os.path.isdir(trace_dir):
            print(f"error: --trace directory does not exist: {trace_dir}",
                  file=sys.stderr)
            return 2
        from .gthinker.tracing import Tracer

        tracer = Tracer()

    start = time.perf_counter()
    if args.query:
        result = mine_containing(graph, args.query, gamma, min_size)
        maximal = result.maximal
        extra = f" query={sorted(set(args.query))}"
    elif args.checkpoint_dir:
        miner = ResumableMiner(graph, gamma, min_size, args.checkpoint_dir)
        result = miner.run()
        maximal = result.maximal
        extra = f" checkpoint={args.checkpoint_dir}"
    elif args.serial:
        result = mine_maximal_quasicliques(graph, gamma, min_size)
        maximal = result.maximal
        extra = ""
    elif config.backend == "simulated":
        out = simulate_cluster(graph, gamma, min_size, config, tracer=tracer)
        maximal = out.maximal
        extra = f" virtual_makespan={out.makespan:.0f} utilization={out.utilization:.2f}"
    elif config.backend == "process":
        out = mine_multiprocess(graph, gamma, min_size, config, tracer=tracer,
                                start_method=args.mp_start_method,
                                on_progress=on_progress)
        maximal = out.maximal
        extra = format_run_summary(out, "process", config.resolved_num_procs)
    elif config.backend == "cluster":
        from .gthinker.cluster import mine_cluster

        out = mine_cluster(graph, gamma, min_size, config, tracer=tracer,
                           start_method=args.mp_start_method,
                           on_progress=on_progress)
        maximal = out.maximal
        extra = format_run_summary(out, "cluster", config.resolved_num_procs)
    else:
        out = mine_parallel(graph, gamma, min_size, config, tracer=tracer)
        maximal = out.maximal
        extra = format_run_summary(out)
    elapsed = time.perf_counter() - start

    if args.metrics_json:
        dump_metrics_json(out.metrics, args.metrics_json)
    if tracer is not None:
        written = tracer.dump_jsonl(args.trace)
        extra += f" trace_events={written}"

    print(
        f"|V|={graph.num_vertices} |E|={graph.num_edges} gamma={gamma} "
        f"min_size={min_size} results={len(maximal)} time={elapsed:.2f}s{extra}"
    )
    if not args.quiet:
        for qc in sorted(maximal, key=lambda s: (-len(s), sorted(s))):
            print(" ".join(str(v) for v in sorted(qc)))
    if args.output:
        with open(args.output, "w") as f:
            for qc in sorted(maximal, key=lambda s: (-len(s), sorted(s))):
                f.write(" ".join(str(v) for v in sorted(qc)) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
