"""Setup shim so `pip install -e .` works offline (no wheel package here).

All metadata lives in pyproject.toml; this file only enables the legacy
`setup.py develop` editable path that avoids building a wheel.
"""

from setuptools import setup

setup()
