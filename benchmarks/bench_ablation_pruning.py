"""Ablation — pruning-rule families (P3–P7 plus lookahead).

Quick's paper reports the lower-bound pruning alone is worth up to
192×; this ablation measures each family's contribution on our analog
by disabling one family at a time and comparing search-tree size and
total mining work. Results must be identical in every arm.
"""

import pytest

from repro.bench import report
from repro.core.miner import mine_maximal_quasicliques
from repro.core.options import MinerOptions

ARMS = {
    "full": {},
    "no-lower-bound": {"use_lower_bound": False},
    "no-upper-bound": {"use_upper_bound": False},
    "no-degree": {"use_degree_prune": False},
    "no-cover-vertex": {"use_cover_vertex": False},
    "no-critical": {"use_critical_vertex": False},
    "no-lookahead": {"use_lookahead": False},
    "no-diameter": {"use_diameter_prune": False},
}

_state = {}


@pytest.mark.parametrize("arm", list(ARMS))
def test_ablation_pruning_arm(benchmark, dataset, arm):
    spec, pg = dataset("enron")
    opts = MinerOptions(**ARMS[arm])
    result = benchmark.pedantic(
        lambda: mine_maximal_quasicliques(
            pg.graph, spec.gamma, spec.min_size, options=opts
        ),
        rounds=1, iterations=1,
    )
    _state[arm] = result


def test_ablation_pruning_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = _state["full"]
    rows = []
    for arm in ARMS:
        r = _state[arm]
        rows.append([
            arm,
            f"{r.stats.mining_ops:,}",
            f"{r.stats.nodes_expanded:,}",
            f"{r.stats.type1_pruned:,}",
            f"{r.stats.type2_pruned:,}",
            f"{r.stats.mining_ops / max(1, full.stats.mining_ops):.2f}x",
            len(r.maximal),
        ])
    report(
        "Ablation — pruning families (enron analog)",
        ["arm", "mining ops", "nodes", "type-I prunes", "type-II prunes",
         "work vs full", "results"],
        rows,
        notes="Every arm must return identical results; only cost may differ.",
        out_name="ablation_pruning",
    )
    for arm, r in _state.items():
        assert r.maximal == full.maximal, f"{arm} changed the result set"
