"""Table 6 — mining vs subgraph-materialization time on Hyves.

Paper columns: τ_time → job time, total task mining time, total
subgraph materialization time, mining:materialization ratio. Shape:
smaller τ_time → more decomposition → materialization share grows, yet
even at the paper's smallest τ_time the ratio stays ~280:1 — the
decomposition overhead is negligible next to the mining it unlocks.

Measured analog: operation counts from the simulated cluster (4×4) on
the hyves analog; ops are the deterministic cost model, so the ratio is
exactly reproducible.
"""

import pytest

from repro.bench import report
from conftest import sim_run

TAU_TIMES = [200_000, 100_000, 50_000, 20_000, 5_000]

_rows: dict[int, tuple] = {}


@pytest.mark.parametrize("tau_time", TAU_TIMES)
def test_table6_cell(benchmark, dataset, tau_time):
    spec, pg = dataset("hyves")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, machines=4, threads=4, tau_time=tau_time),
        rounds=1, iterations=1,
    )
    m = out.metrics
    _rows[tau_time] = (
        out.makespan,
        m.total_mining_ops,
        m.total_materialize_ops,
        m.mining_vs_materialization_ratio(),
        m.tasks_decomposed,
        m.subtasks_created,
    )


def test_table6_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for tau_time in TAU_TIMES:
        span, mine, mat, r, dec, sub = _rows[tau_time]
        rows.append([
            f"{tau_time:,}", f"{span:,.0f}", f"{mine:,}", f"{mat:,}",
            "inf" if r == float("inf") else f"{r:,.0f}x", dec, sub,
        ])
    report(
        "Table 6 — mining vs subgraph materialization (hyves analog, 4x4)",
        ["tau_time(ops)", "job makespan", "mining ops", "materialize ops",
         "mine:mat ratio", "decomposed", "subtasks"],
        rows,
        notes=(
            "Paper shape: smaller tau_time → more decomposition, materialization\n"
            "share grows but stays a small fraction of mining (paper: >=280x)."
        ),
        out_name="table6_materialization",
    )
    # Shape assertions.
    mats = [_rows[t][2] for t in TAU_TIMES]
    for a, b in zip(mats, mats[1:]):
        assert b >= a, "materialization ops must grow as tau_time shrinks"
    smallest = _rows[TAU_TIMES[-1]]
    assert smallest[3] > 5, (
        "even at the smallest tau_time mining must dominate materialization"
    )
