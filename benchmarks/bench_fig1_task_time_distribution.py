"""Figure 1 — distribution of per-task mining times (YouTube).

Paper shape: across all tasks spawned by unpruned vertices, per-task
time spans orders of magnitude with a tiny heavy tail — a handful of
tasks dominate total mining time (the vertex-363 story).

Measured analog: per-task mining ops on the youtube analog, bucketed on
a log scale, plus tail-dominance statistics.
"""

import math

from repro.bench import report
from conftest import sim_run

_state = {}


def test_fig1_collect(benchmark, dataset):
    spec, pg = dataset("youtube")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, tau_time=float("inf"), decompose="none"),
        rounds=1, iterations=1,
    )
    _state["records"] = out.metrics.task_records


def test_fig1_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    records = _state["records"]
    times = sorted((max(1, r.mining_ops) for r in records), reverse=True)
    assert times, "no tasks executed"
    # Log-scale histogram.
    buckets: dict[int, int] = {}
    for t in times:
        buckets[int(math.log10(t))] = buckets.get(int(math.log10(t)), 0) + 1
    rows = [
        [f"10^{b}..10^{b + 1}", count, "#" * min(60, count)]
        for b, count in sorted(buckets.items())
    ]
    total = sum(times)
    top1pct = times[: max(1, len(times) // 100)]
    rows.append(["-- tail stats --", "", ""])
    rows.append(["tasks", len(times), ""])
    rows.append(["max/median ratio", f"{times[0] / times[len(times) // 2]:,.0f}x", ""])
    rows.append(
        ["top-1% share of work", f"{100 * sum(top1pct) / total:.0f}%", ""]
    )
    report(
        "Figure 1 — per-task mining time distribution (youtube analog)",
        ["ops bucket", "tasks", ""],
        rows,
        notes=(
            "Paper shape: per-task times span orders of magnitude; a tiny tail\n"
            "dominates total work, so per-thread local queues alone head-of-line\n"
            "block (the motivation for the global big-task queue)."
        ),
        out_name="fig1_task_time_distribution",
    )
    # Shape assertions: ≥3 decades of spread and a dominant tail.
    assert times[0] / times[-1] >= 100, "expected orders-of-magnitude spread"
    assert sum(top1pct) / total > 0.2, "expected a dominant heavy tail"
