"""Table 4 — effect of (τ_time, τ_split) on Hyves.

Paper shape: on this *hard* dataset (expensive overlapping cores),
decreasing τ_time is the major force bringing parallel time down —
decomposition keeps all cores busy — while decreasing τ_split also
helps; result counts stay essentially stable.

Measured analog: virtual makespan on the simulated cluster (4 machines
× 4 threads, mirroring the cluster setting at reduced scale).
"""

import pytest

from repro.bench import report
from conftest import sim_run

TAU_TIMES = [100_000, 20_000, 5_000]
TAU_SPLITS = [50, 30, 20]

_cells: dict[tuple[int, int], tuple[float, int]] = {}


@pytest.mark.parametrize("tau_time", TAU_TIMES)
@pytest.mark.parametrize("tau_split", TAU_SPLITS)
def test_table4_cell(benchmark, dataset, tau_time, tau_split):
    spec, pg = dataset("hyves")
    out = benchmark.pedantic(
        lambda: sim_run(
            pg.graph, spec, machines=4, threads=4,
            tau_time=tau_time, tau_split=tau_split,
        ),
        rounds=1, iterations=1,
    )
    _cells[(tau_time, tau_split)] = (out.makespan, len(out.maximal), len(out.candidates))


def test_table4_report(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["tau_time(ops) \\ tau_split"] + [str(t) for t in TAU_SPLITS]
    span_rows = []
    count_rows = []
    for tau_time in TAU_TIMES:
        span_rows.append(
            [f"{tau_time:,}"] + [
                f"{_cells[(tau_time, ts)][0]:,.0f}" for ts in TAU_SPLITS
            ]
        )
        count_rows.append(
            [f"{tau_time:,}"] + [
                f"{_cells[(tau_time, ts)][2]} ({_cells[(tau_time, ts)][1]})"
                for ts in TAU_SPLITS
            ]
        )
    report(
        "Table 4a — virtual makespan on hyves analog (4x4 cluster)",
        headers, span_rows,
        notes="Paper shape: hard dataset → smaller tau_time lowers parallel time.",
        out_name="table4a_hyves_makespan",
    )
    report(
        "Table 4b — raw candidates (maximal) on hyves analog",
        headers, count_rows,
        notes=(
            "Paper shape: the raw result-file count grows as tau_time shrinks\n"
            "(wrapped subtasks lose Alg. 10 line 28's non-maximal suppression)\n"
            "while the postprocessed maximal count stays stable."
        ),
        out_name="table4b_hyves_counts",
    )
    for ts in TAU_SPLITS:
        assert _cells[(TAU_TIMES[-1], ts)][0] <= _cells[(TAU_TIMES[0], ts)][0] * 1.05, (
            "smaller tau_time should not slow the hard dataset down"
        )
    maximal_counts = {c[1] for c in _cells.values()}
    assert len(maximal_counts) == 1, "maximal result count must be stable across the grid"
    for ts in TAU_SPLITS:
        assert _cells[(TAU_TIMES[-1], ts)][2] >= _cells[(TAU_TIMES[0], ts)][2], (
            "raw candidate count must not shrink as tau_time decreases"
        )
