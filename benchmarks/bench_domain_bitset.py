"""Bitset task domains — serial set-path vs bitset-path wall clock.

The bitset domain (`repro.core.domain.TaskDomain`) rewrites the mining
hot path — degree families, Type I/II rules, cover/critical selection,
the diameter filter, and the set-enumeration walk itself — as word
operations over Python big-int masks: one `(adj[v] & mask).bit_count()`
per degree instead of a per-element dict/set loop. The two paths are
result-equivalent (pinned by `tests/core/test_property_domain.py`);
this benchmark measures what the rewrite buys.

Measured analog: the full serial miner (`mine_maximal_quasicliques`) at
each dataset's registered paper parameters, on the Table 2 corpus
entries with enough mining work for representation cost to dominate
(the overlapping-core social analogs; the cheap gene/collaboration
graphs finish in milliseconds either way and measure only noise).

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by the CI perf-smoke job):
one small planted instance instead of the corpus, asserting only that
the bitset path is not *slower* than the set path (>=1.0x) — shared CI
runners cannot support a stable 2x claim.

Artifacts: benchmarks/out/domain_bitset.txt (table) and
benchmarks/out/domain_bitset.json (machine-readable report, same shape
as backend_scaling.json: instance, cpu_count, rows, target_speedup,
target_met).
"""

import json
import os
import time

from repro.bench import report
from repro.core.miner import mine_maximal_quasicliques
from repro.core.options import SET_PATH_OPTIONS
from repro.datasets import build_dataset, get_dataset
from repro.graph.generators import planted_quasicliques

#: Table 2 analogs where serial mining is substantive (~0.5–5 s on the
#: set path). The target claimed by the JSON report: >=2x on at least
#: two of them.
DATASETS = ["enron", "hyves", "youtube"]
TARGET_SPEEDUP = 2.0
REPEATS = 2

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _best_of(fn, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _compare(graph, gamma, min_size):
    """Time both serial paths; returns (set_s, bitset_s, result_count)."""
    set_seconds, set_out = _best_of(
        lambda: mine_maximal_quasicliques(
            graph, gamma, min_size, options=SET_PATH_OPTIONS
        )
    )
    bitset_seconds, bitset_out = _best_of(
        lambda: mine_maximal_quasicliques(graph, gamma, min_size)
    )
    assert bitset_out.maximal == set_out.maximal, (
        "bitset and set paths must find identical maximal families"
    )
    return set_seconds, bitset_seconds, len(bitset_out.maximal)


def test_domain_bitset_speedup(benchmark):
    if SMOKE:
        pg = planted_quasicliques(
            n=300, avg_degree=7, num_plants=4, plant_size=14, gamma=0.75, seed=5
        )
        cases = [("smoke_planted", pg.graph, 0.75, 10)]
    else:
        cases = []
        for name in DATASETS:
            spec = get_dataset(name)
            cases.append(
                (name, build_dataset(name).graph, spec.gamma, spec.min_size)
            )

    measurements = benchmark.pedantic(
        lambda: [
            (name, gamma, min_size, *_compare(graph, gamma, min_size))
            for name, graph, gamma, min_size in cases
        ],
        rounds=1, iterations=1,
    )

    rows = []
    json_rows = []
    speedups = {}
    for name, gamma, min_size, set_s, bit_s, n_results in measurements:
        speedup = set_s / bit_s if bit_s > 0 else float("inf")
        speedups[name] = speedup
        rows.append([
            name, gamma, min_size,
            f"{set_s:.3f}", f"{bit_s:.3f}", f"{speedup:.2f}x", n_results,
        ])
        json_rows.append({
            "dataset": name, "backend": "set", "workers": 1,
            "wall_seconds": set_s, "speedup_vs_serial": 1.0,
            "results": n_results,
        })
        json_rows.append({
            "dataset": name, "backend": "bitset", "workers": 1,
            "wall_seconds": bit_s, "speedup_vs_serial": speedup,
            "results": n_results,
        })

    met = sum(1 for s in speedups.values() if s >= TARGET_SPEEDUP)
    report(
        "Bitset domain vs dict/set representation — serial miner wall clock",
        ["dataset", "gamma", "tau_size", "set s", "bitset s", "speedup", "results"],
        rows,
        notes=(
            "Same algorithm, same pruning rules, same maximal families — "
            "only the hot-path representation differs. Popcount degrees "
            "and mask algebra pay off where mining work dominates; "
            f"target >= {TARGET_SPEEDUP}x on >= 2 Table 2 analogs."
        ),
        out_name="domain_bitset",
    )

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "instance": {
            "corpus": "smoke_planted" if SMOKE else "table2_analogs",
            "datasets": [c[0] for c in cases],
            "repeats": REPEATS,
            "timing": "best_of",
        },
        "cpu_count": os.cpu_count(),
        "rows": json_rows,
        "target_speedup": 1.0 if SMOKE else TARGET_SPEEDUP,
        "target_met": (
            all(s >= 1.0 for s in speedups.values()) if SMOKE else met >= 2
        ),
    }
    with open(os.path.join(out_dir, "domain_bitset.json"), "w") as f:
        json.dump(payload, f, indent=2)

    if SMOKE:
        # CI gate: the bitset path must not be slower than the set path.
        for name, s in speedups.items():
            assert s >= 1.0, (
                f"bitset path slower than set path on {name}: {s:.2f}x"
            )
    else:
        assert met >= 2, (
            f"expected >= {TARGET_SPEEDUP}x serial speedup on >= 2 Table 2 "
            f"analogs, got {speedups}"
        )
