"""Figure 2 — mining time of the top-100 tasks (YouTube).

Paper shape: sorting tasks by time shows a steep power-law-like decay;
the single hottest task is far above the 100th.

Measured analog: top-100 per-task mining ops on the youtube analog.
"""

from repro.bench import report
from conftest import sim_run

_state = {}


def test_fig2_collect(benchmark, dataset):
    spec, pg = dataset("youtube")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, tau_time=float("inf"), decompose="none"),
        rounds=1, iterations=1,
    )
    _state["out"] = out


def test_fig2_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    out = _state["out"]
    records = sorted(out.metrics.task_records, key=lambda r: r.mining_ops, reverse=True)
    top = records[:100]
    rows = []
    scale = max(1, top[0].mining_ops // 60)
    for rank in (0, 1, 2, 3, 4, 9, 19, 49, len(top) - 1):
        if rank < len(top):
            r = top[rank]
            rows.append([
                rank + 1, r.root, r.subgraph_vertices,
                f"{r.mining_ops:,}", "#" * max(1, r.mining_ops // scale),
            ])
    report(
        "Figure 2 — top task mining times (youtube analog)",
        ["rank", "root", "|V(g)|", "mining ops", ""],
        rows,
        notes="Paper shape: steep decay; rank-1 far above rank-100.",
        out_name="fig2_top_tasks",
    )
    if len(top) >= 10:
        assert top[0].mining_ops >= 5 * top[min(99, len(top) - 1)].mining_ops, (
            "expected steep decay across the top ranks"
        )
