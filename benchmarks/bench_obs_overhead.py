"""Observability overhead — the same run with tracing off vs on.

Every span site in the hot path (`root_spawn`, `batch_mine`,
`spill_refill`, `steal_transfer`, `lease_reclaim`, `result_fold`)
guards its clock reads behind ``tracer.enabled``, so the `NullTracer`
run is the engine's true baseline. This benchmark mines the same
instance twice through `mine_parallel` — once untraced, once with a
real `Tracer` capturing the full event stream including spans — and
reports the relative wall-clock overhead of turning observability on.

The contract claimed in docs/OBSERVABILITY.md: tracing costs < 5 %.
Smoke mode (``REPRO_BENCH_SMOKE=1``, the CI perf-smoke job) checks a
relaxed 15 % bound on one small instance — shared CI runners are too
noisy for a tight single-digit-percent assertion, and a real
regression (an unguarded clock read or an emit on the pick fast path)
shows up as 2-10x, not single digits.

Artifacts: benchmarks/out/obs_overhead.txt and
benchmarks/out/obs_overhead.json (backend_scaling report shape).
"""

import json
import os
import time

from repro.bench import report
from repro.graph.generators import planted_quasicliques
from repro.gthinker import EngineConfig, mine_parallel
from repro.gthinker.tracing import Tracer

TARGET_OVERHEAD = 0.05
SMOKE_OVERHEAD = 0.15
REPEATS = 3

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _best_of(fn, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _cases():
    # Mining work must dominate: span cost is per scheduling event, so a
    # trivially easy instance measures the tracer, not the contract.
    if SMOKE:
        pg = planted_quasicliques(
            n=300, avg_degree=9, num_plants=2, plant_size=22, gamma=0.78,
            seed=11,
        )
        return [("smoke_serial", pg.graph, 0.78, 18, EngineConfig())]
    pg = planted_quasicliques(
        n=400, avg_degree=10, num_plants=3, plant_size=24, gamma=0.75,
        seed=11,
    )
    serial = EngineConfig()
    threaded = EngineConfig(
        backend="threaded", num_machines=2, threads_per_machine=2,
        tau_split=16, tau_time=5_000, time_unit="ops", decompose="timed",
    )
    return [
        ("serial", pg.graph, 0.75, 20, serial),
        ("threaded_2x2", pg.graph, 0.75, 20, threaded),
    ]


def _compare(graph, gamma, min_size, config):
    # One untimed warm-up so cold-start costs (imports, allocator, JIT-y
    # dict sizing) don't bias whichever arm runs first.
    mine_parallel(graph, gamma, min_size, config)
    off_s, off_out = _best_of(
        lambda: mine_parallel(graph, gamma, min_size, config)
    )

    def traced():
        tracer = Tracer()
        out = mine_parallel(graph, gamma, min_size, config, tracer=tracer)
        return out, tracer

    on_s, (on_out, tracer) = _best_of(traced)
    assert on_out.maximal == off_out.maximal, (
        "tracing must not change the mined result set"
    )
    spans = sum(1 for e in tracer.events() if e.kind == "span_begin")
    return off_s, on_s, len(tracer.events()), spans


def test_obs_overhead(benchmark):
    cases = _cases()
    measurements = benchmark.pedantic(
        lambda: [
            (name, *_compare(graph, gamma, min_size, config))
            for name, graph, gamma, min_size, config in cases
        ],
        rounds=1, iterations=1,
    )

    bound = SMOKE_OVERHEAD if SMOKE else TARGET_OVERHEAD
    rows = []
    json_rows = []
    overheads = {}
    for name, off_s, on_s, events, spans in measurements:
        overhead = (on_s - off_s) / off_s if off_s > 0 else 0.0
        overheads[name] = overhead
        rows.append([
            name, f"{off_s:.3f}", f"{on_s:.3f}",
            f"{overhead * 100:+.1f}%", events, spans,
        ])
        json_rows.append({
            "dataset": name, "backend": "untraced", "workers": 1,
            "wall_seconds": off_s, "speedup_vs_serial": 1.0,
            "results": events,
        })
        json_rows.append({
            "dataset": name, "backend": "traced", "workers": 1,
            "wall_seconds": on_s,
            "speedup_vs_serial": off_s / on_s if on_s > 0 else float("inf"),
            "results": events,
        })

    report(
        "Observability overhead — identical run, tracing off vs on",
        ["case", "untraced s", "traced s", "overhead", "events", "spans"],
        rows,
        notes=(
            "Tracing on captures the full event stream (scheduling events "
            "+ retroactive span pairs); tracing off is the NullTracer "
            "fast path with zero clock reads. Contract: overhead "
            f"< {TARGET_OVERHEAD:.0%} (smoke bound {SMOKE_OVERHEAD:.0%})."
        ),
        out_name="obs_overhead",
    )

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "instance": {
            "corpus": "smoke_planted" if SMOKE else "planted_500",
            "cases": [c[0] for c in cases],
            "repeats": REPEATS,
            "timing": "best_of",
        },
        "cpu_count": os.cpu_count(),
        "rows": json_rows,
        "target_overhead": bound,
        "target_met": all(o < bound for o in overheads.values()),
    }
    with open(os.path.join(out_dir, "obs_overhead.json"), "w") as f:
        json.dump(payload, f, indent=2)

    for name, o in overheads.items():
        assert o < bound, (
            f"tracing overhead on {name} is {o:.1%}, bound {bound:.0%}"
        )
