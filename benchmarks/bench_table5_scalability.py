"""Table 5 — vertical and horizontal scalability on Enron.

Paper setting: (a) 16 machines, threads/machine ∈ {4, 8, 16, 32};
(b) 32 threads/machine, machines ∈ {2, 4, 8, 16}. "The time keeps
decreasing significantly as the count doubles."

Measured analog: the same sweeps on the discrete-event simulated
cluster over the enron analog. Virtual makespans are deterministic and
the task set is identical across configurations, so the speedup curve
is pure scheduling.
"""

import pytest

from repro.bench import report
from conftest import sim_run

# The paper sweeps 16 machines x {4..32} threads and {2..16} machines x 32
# threads; the analog workload is ~1/100 scale, so the sweep is scaled
# down accordingly (saturation would otherwise hit at the first point).
VERTICAL = [1, 2, 4, 8]  # threads/machine at 4 machines
HORIZONTAL = [1, 2, 4, 8]  # machines at 4 threads

_vertical: dict[int, float] = {}
_horizontal: dict[int, object] = {}


@pytest.mark.parametrize("threads", VERTICAL)
def test_table5a_vertical(benchmark, dataset, threads):
    spec, pg = dataset("enron")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, machines=4, threads=threads),
        rounds=1, iterations=1,
    )
    _vertical[threads] = out.makespan


@pytest.mark.parametrize("machines", HORIZONTAL)
def test_table5b_horizontal(benchmark, dataset, machines):
    spec, pg = dataset("enron")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, machines=machines, threads=4),
        rounds=1, iterations=1,
    )
    _horizontal[machines] = out


def test_table5_report(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec, pg = dataset("enron")
    solo = sim_run(pg.graph, spec, machines=1, threads=1)

    rows = [
        [4, t, f"{_vertical[t]:,.0f}", f"{solo.makespan / _vertical[t]:.1f}x"]
        for t in VERTICAL
    ]
    report(
        "Table 5(a) — vertical scalability (4 machines, enron analog)",
        ["machines", "threads", "virtual makespan", "speedup vs 1x1"],
        rows,
        notes="Paper shape: time keeps decreasing as threads double (739→172s).",
        out_name="table5a_vertical",
    )

    rows = [
        [m, 4, f"{_horizontal[m].makespan:,.0f}",
         f"{solo.makespan / _horizontal[m].makespan:.1f}x",
         _horizontal[m].metrics.steals]
        for m in HORIZONTAL
    ]
    report(
        "Table 5(b) — horizontal scalability (4 threads/machine, enron analog)",
        ["machines", "threads", "virtual makespan", "speedup vs 1x1", "steals"],
        rows,
        notes="Paper shape: time keeps decreasing as machines double (1035→172s).",
        out_name="table5b_horizontal",
    )

    # Shape assertions: monotone non-increasing makespans along each sweep.
    for a, b in zip(VERTICAL, VERTICAL[1:]):
        assert _vertical[b] <= _vertical[a] * 1.02
    for a, b in zip(HORIZONTAL, HORIZONTAL[1:]):
        assert _horizontal[b].makespan <= _horizontal[a].makespan * 1.02
    assert solo.makespan / _vertical[VERTICAL[-1]] > 4.0, (
        "the codesign must show substantial parallel speedup"
    )
