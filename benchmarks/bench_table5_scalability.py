"""Table 5 — vertical and horizontal scalability on Enron.

Paper setting: (a) 16 machines, threads/machine ∈ {4, 8, 16, 32};
(b) 32 threads/machine, machines ∈ {2, 4, 8, 16}. "The time keeps
decreasing significantly as the count doubles."

Measured analog: the same sweeps on the discrete-event simulated
cluster over the enron analog. Virtual makespans are deterministic and
the task set is identical across configurations, so the speedup curve
is pure scheduling.

With ``--real-cluster`` the horizontal sweep additionally runs on the
real TCP master/worker runtime (localhost worker processes) and emits
honest wall-clock numbers in the same JSON report schema as
benchmarks/out/backend_scaling.json.
"""

import json
import os
import time

import pytest

from repro.bench import report
from repro.gthinker import EngineConfig
from repro.gthinker.engine import mine_parallel
from conftest import cluster_run, sim_run

# The paper sweeps 16 machines x {4..32} threads and {2..16} machines x 32
# threads; the analog workload is ~1/100 scale, so the sweep is scaled
# down accordingly (saturation would otherwise hit at the first point).
VERTICAL = [1, 2, 4, 8]  # threads/machine at 4 machines
HORIZONTAL = [1, 2, 4, 8]  # machines at 4 threads

_vertical: dict[int, float] = {}
_horizontal: dict[int, object] = {}


@pytest.mark.parametrize("threads", VERTICAL)
def test_table5a_vertical(benchmark, dataset, threads):
    spec, pg = dataset("enron")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, machines=4, threads=threads),
        rounds=1, iterations=1,
    )
    _vertical[threads] = out.makespan


@pytest.mark.parametrize("machines", HORIZONTAL)
def test_table5b_horizontal(benchmark, dataset, machines):
    spec, pg = dataset("enron")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, machines=machines, threads=4),
        rounds=1, iterations=1,
    )
    _horizontal[machines] = out


def test_table5_report(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec, pg = dataset("enron")
    solo = sim_run(pg.graph, spec, machines=1, threads=1)

    rows = [
        [4, t, f"{_vertical[t]:,.0f}", f"{solo.makespan / _vertical[t]:.1f}x"]
        for t in VERTICAL
    ]
    report(
        "Table 5(a) — vertical scalability (4 machines, enron analog)",
        ["machines", "threads", "virtual makespan", "speedup vs 1x1"],
        rows,
        notes="Paper shape: time keeps decreasing as threads double (739→172s).",
        out_name="table5a_vertical",
    )

    rows = [
        [m, 4, f"{_horizontal[m].makespan:,.0f}",
         f"{solo.makespan / _horizontal[m].makespan:.1f}x",
         _horizontal[m].metrics.steals]
        for m in HORIZONTAL
    ]
    report(
        "Table 5(b) — horizontal scalability (4 threads/machine, enron analog)",
        ["machines", "threads", "virtual makespan", "speedup vs 1x1", "steals"],
        rows,
        notes="Paper shape: time keeps decreasing as machines double (1035→172s).",
        out_name="table5b_horizontal",
    )

    # Shape assertions: monotone non-increasing makespans along each sweep.
    for a, b in zip(VERTICAL, VERTICAL[1:]):
        assert _vertical[b] <= _vertical[a] * 1.02
    for a, b in zip(HORIZONTAL, HORIZONTAL[1:]):
        assert _horizontal[b].makespan <= _horizontal[a].makespan * 1.02
    assert solo.makespan / _vertical[VERTICAL[-1]] > 4.0, (
        "the codesign must show substantial parallel speedup"
    )


# Worker counts for the --real-cluster sweep: real processes are far
# more expensive per point than virtual machines, so the sweep is short.
REAL_CLUSTER_WORKERS = [1, 2, 4]


def test_table5c_real_cluster(benchmark, dataset, real_cluster):
    """Table 5(b)'s horizontal sweep on the real TCP cluster runtime.

    Opt-in (``--real-cluster``): spawns 1/2/4 localhost worker
    processes per point and reports honest wall-clock seconds next to a
    serial baseline, cross-checked for result equality. Emits
    benchmarks/out/table5c_real_cluster.json in the same schema as
    backend_scaling.json (rows of backend/workers/wall_seconds/
    speedup_vs_serial/results/tasks_executed).
    """
    if not real_cluster:
        pytest.skip("real-cluster sweep is opt-in: pass --real-cluster")
    spec, pg = dataset("enron")

    def _sweep():
        t0 = time.perf_counter()
        serial = mine_parallel(
            pg.graph, spec.gamma, spec.min_size,
            EngineConfig(
                decompose="timed", tau_time=spec.tau_time_ops,
                time_unit="ops", tau_split=spec.tau_split,
            ),
        )
        serial_seconds = time.perf_counter() - t0
        points = []
        for workers in REAL_CLUSTER_WORKERS:
            t0 = time.perf_counter()
            out = cluster_run(pg.graph, spec, workers=workers)
            wall = time.perf_counter() - t0
            assert out.maximal == serial.maximal, (
                f"real cluster at {workers} workers diverges from serial"
            )
            points.append((workers, wall, out))
        return serial, serial_seconds, points

    serial, serial_seconds, points = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )

    rows = [["serial", 1, f"{serial_seconds:.3f}", "1.0x", "-", "-"]]
    for workers, wall, out in points:
        rows.append([
            "cluster", workers, f"{wall:.3f}",
            f"{serial_seconds / wall:.2f}x",
            out.metrics.tasks_executed, out.metrics.stolen_tasks,
        ])
    report(
        "Table 5(c) — horizontal scalability on the real TCP cluster "
        "(localhost workers, enron analog)",
        ["backend", "workers", "seconds", "speedup vs serial",
         "tasks", "stolen"],
        rows,
        notes=(
            "Wall clock includes worker spawn + graph shipping; the "
            "virtual sweeps above isolate pure scheduling."
        ),
        out_name="table5c_real_cluster",
    )

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "instance": {
            "dataset": "enron", "gamma": spec.gamma,
            "min_size": spec.min_size, "tau_split": spec.tau_split,
            "tau_time_ops": spec.tau_time_ops,
        },
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "rows": [
            {
                "backend": "cluster",
                "workers": workers,
                "wall_seconds": wall,
                "speedup_vs_serial": serial_seconds / wall,
                "results": out.metrics.results,
                "stolen_tasks": out.metrics.stolen_tasks,
                "tasks_executed": out.metrics.tasks_executed,
            }
            for workers, wall, out in points
        ],
    }
    with open(os.path.join(out_dir, "table5c_real_cluster.json"), "w") as f:
        json.dump(payload, f, indent=2)
