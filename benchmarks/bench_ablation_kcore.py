"""Ablation — Theorem 2 k-core preprocessing (paper T1).

The paper: Quick "somehow does not use this pruning rule, leading to a
very poor scalability"; shrinking to the ceil(γ(τ_size−1))-core "is
actually a dominating factor to scale beyond a small graph".

Measured: serial mining work with and without the k-core shrink on the
ca_grqc analog, plus how much of the graph the shrink removes.
"""

from repro.bench import report
from repro.core.miner import mine_maximal_quasicliques
from repro.core.options import MinerOptions
from repro.core.quasiclique import kcore_threshold
from repro.graph.kcore import k_core

_state = {}


def test_ablation_kcore_on(benchmark, dataset):
    spec, pg = dataset("ca_grqc")
    result = benchmark.pedantic(
        lambda: mine_maximal_quasicliques(
            pg.graph, spec.gamma, spec.min_size, mode="global"
        ),
        rounds=1, iterations=1,
    )
    _state["on"] = result


def test_ablation_kcore_off(benchmark, dataset):
    spec, pg = dataset("ca_grqc")
    opts = MinerOptions(kcore_preprocess=False)
    result = benchmark.pedantic(
        lambda: mine_maximal_quasicliques(
            pg.graph, spec.gamma, spec.min_size, options=opts, mode="global"
        ),
        rounds=1, iterations=1,
    )
    _state["off"] = result


def test_ablation_kcore_report(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec, pg = dataset("ca_grqc")
    k = kcore_threshold(spec.gamma, spec.min_size)
    core = k_core(pg.graph, k)
    on, off = _state["on"], _state["off"]
    rows = [
        ["graph |V| / k-core |V|", f"{pg.graph.num_vertices:,}", f"{core.num_vertices:,}"],
        ["mining ops", f"{on.stats.mining_ops:,}", f"{off.stats.mining_ops:,}"],
        ["nodes expanded", f"{on.stats.nodes_expanded:,}", f"{off.stats.nodes_expanded:,}"],
        ["results", len(on.maximal), len(off.maximal)],
    ]
    report(
        f"Ablation — k-core preprocessing (ca_grqc analog, k={k})",
        ["metric", "k-core ON", "k-core OFF"],
        rows,
        notes="Paper (T1): the shrink is a dominating scalability factor.",
        out_name="ablation_kcore",
    )
    assert on.maximal == off.maximal, "preprocessing must not change results"
    assert on.stats.mining_ops < off.stats.mining_ops, (
        "k-core preprocessing must reduce mining work"
    )
