"""Ablation — decomposition strategy: none vs size-threshold vs time-delayed.

The paper's Challenge 3: size-threshold splitting under-partitions some
tasks and over-partitions others; time-delayed decomposition spends
τ_time mining before splitting, so cheap tasks never pay overhead and
expensive tasks split exactly where the time goes.

Measured on the hyves analog (simulated 4×4): virtual makespan, total
work, and materialization overhead per strategy.
"""

import pytest

from repro.bench import report
from conftest import sim_run

ARMS = {
    "none": dict(decompose="none", tau_time=float("inf")),
    "size-threshold": dict(decompose="size", tau_split=20),
    "time-delayed": dict(decompose="timed"),
}

_state = {}


@pytest.mark.parametrize("arm", list(ARMS))
def test_ablation_decompose_arm(benchmark, dataset, arm):
    spec, pg = dataset("hyves")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, machines=4, threads=4, **ARMS[arm]),
        rounds=1, iterations=1,
    )
    _state[arm] = out


def test_ablation_decompose_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for arm, out in _state.items():
        m = out.metrics
        rows.append([
            arm, f"{out.makespan:,.0f}", f"{out.total_work:,.0f}",
            f"{m.total_materialize_ops:,}", m.subtasks_created,
            len(out.maximal),
        ])
    report(
        "Ablation — decomposition strategy (hyves analog, 4x4)",
        ["strategy", "virtual makespan", "total work", "materialize ops",
         "subtasks", "results"],
        rows,
        notes=(
            "Paper Challenge 3: time-delayed decomposition balances load\n"
            "without the over-partitioning cost of small size thresholds."
        ),
        out_name="ablation_decompose",
    )
    none, timed = _state["none"], _state["time-delayed"]
    assert timed.maximal == none.maximal
    assert timed.makespan <= none.makespan * 1.02, (
        "time-delayed decomposition must not lose to no decomposition"
    )
