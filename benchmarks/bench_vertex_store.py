"""Distributed vertex store — partition shipping vs the full-ship baseline.

The tentpole claim of the remote vertex store (paper Section 6, the
G-thinker data layer): a cluster worker holds its *partition* of the
vertex table plus a bounded cache, never the whole graph. Two measured
analogs on one planted instance, workers ∈ {1, 2, 4}:

1. **Wire bytes** — the encoded `Welcome` frame each worker receives.
   Protocol v3 ships `table_blob` (one partition); the baseline is the
   same frame carrying every adjacency entry, which is what the v2
   `graph_blob` protocol shipped to every worker. The per-worker frame
   must shrink ≈ 1/num_workers.
2. **Resident adjacency entries** — a real TCP master with in-thread
   workers (inspectable reactors) mines the instance; at quiescence
   each worker's `RemoteGraphAccess.resident_entries()` is recorded
   against the `|partition| + cache_capacity` bound and the full-graph
   baseline, alongside the run's `remote_vertex_hits/misses/evictions`.

Oracle equality is asserted for every cell — the partitioned store must
produce exactly the serial miner's result set while staying bounded.

Smoke mode (``REPRO_BENCH_SMOKE=1``, the CI perf-smoke job) shrinks the
instance; the bound assertions are identical.

Artifacts: benchmarks/out/vertex_store.txt (table) and
benchmarks/out/vertex_store.json (backend_scaling report shape).
"""

import json
import os
import pickle
import threading
import time

from repro.bench import report
from repro.graph.generators import planted_quasicliques
from repro.gthinker import EngineConfig, mine_parallel
from repro.gthinker.cluster.master import ClusterMaster
from repro.gthinker.cluster.protocol import Welcome, encode_frame
from repro.gthinker.cluster.worker import ClusterWorker
from repro.core.options import DEFAULT_OPTIONS, ResultSink
from repro.gthinker.app_quasiclique import QuasiCliqueApp
from repro.gthinker.partition import make_partitioner

WORKER_COUNTS = [1, 2, 4]
GAMMA, MIN_SIZE = 0.75, 3
CACHE_CAPACITY = 32
JOB_TIMEOUT = 120.0

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _instance():
    # Small enough that a 2-worker TCP job finishes in seconds, big
    # enough that partitions dominate the cache (|V|/4 >> capacity).
    n = 120 if SMOKE else 300
    return planted_quasicliques(
        n=n, avg_degree=6, num_plants=2, plant_size=8, gamma=GAMMA, seed=7
    )


def _config(workers: int) -> EngineConfig:
    return EngineConfig(
        backend="cluster", num_procs=workers,
        decompose="timed", tau_time=10, time_unit="ops", tau_split=3,
        queue_capacity=4, batch_size=2,
        heartbeat_period=0.02, heartbeat_timeout=10.0,
        cache_capacity=CACHE_CAPACITY,
    )


def _app():
    return QuasiCliqueApp(
        gamma=GAMMA, min_size=MIN_SIZE, sink=ResultSink(),
        options=DEFAULT_OPTIONS,
    )


def _welcome_bytes(graph, workers: int) -> tuple[int, int]:
    """(max per-worker partitioned frame, full-ship frame) in bytes,
    built exactly like the master reactor builds Welcome."""
    app_blob = pickle.dumps(_app(), protocol=pickle.HIGHEST_PROTOCOL)
    config = _config(workers)
    parts = make_partitioner(config.partition, graph, workers).parts()

    def frame(entries: dict) -> int:
        return len(encode_frame(Welcome(
            worker_id=0, config=config, app_blob=app_blob,
            table_blob=pickle.dumps(
                entries, protocol=pickle.HIGHEST_PROTOCOL
            ),
            partition_id=0, num_partitions=workers,
            partition_strategy=config.partition, trace=False,
        )))

    partitioned = max(
        frame({v: tuple(graph.neighbors(v)) for v in part})
        for part in parts
    )
    full = frame({v: tuple(graph.neighbors(v)) for v in graph.vertices()})
    return partitioned, full


def _mine_cell(graph, workers: int):
    """One real TCP run with in-thread workers; returns the job result
    plus each worker's post-run resident-entry count."""
    master = ClusterMaster(
        graph, _app(), _config(workers),
        host="127.0.0.1", port=0, num_workers=workers,
    )
    host, port = master.start()
    result: dict = {}

    def drive():
        try:
            result["out"] = master.run(timeout=JOB_TIMEOUT)
        except Exception as exc:  # surfaced by the caller's assert
            result["error"] = exc

    master_thread = threading.Thread(target=drive, daemon=True)
    master_thread.start()
    cluster_workers = [ClusterWorker(host, port) for _ in range(workers)]
    threads = [
        threading.Thread(target=w.run, daemon=True) for w in cluster_workers
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    master_thread.join(JOB_TIMEOUT)
    wall = time.perf_counter() - t0
    for t in threads:
        t.join(10.0)
    assert "error" not in result, result.get("error")
    resident = []
    for w in cluster_workers:
        access = w.reactor.access
        assert access is not None, "worker fell back to a full graph"
        assert len(access.cache) <= access.cache.capacity
        resident.append(access.resident_entries())
    return result["out"], resident, wall


def test_vertex_store(benchmark):
    pg = _instance()
    graph = pg.graph
    n = graph.num_vertices
    serial = mine_parallel(
        graph, GAMMA, MIN_SIZE,
        EngineConfig(backend="serial", num_procs=0,
                     decompose="timed", tau_time=10, time_unit="ops",
                     tau_split=3),
    )

    rows = []
    json_rows = []
    for workers in WORKER_COUNTS:
        part_bytes, full_bytes = _welcome_bytes(graph, workers)
        out, resident, wall = benchmark.pedantic(
            lambda w=workers: _mine_cell(graph, w), rounds=1, iterations=1,
        ) if workers == WORKER_COUNTS[-1] else _mine_cell(graph, workers)
        assert out.maximal == serial.maximal, f"oracle mismatch at {workers}"
        worst = max(resident)
        bound = -(-n // workers) + CACHE_CAPACITY  # ceil + capacity
        if workers > 1:
            assert worst < n, (
                f"{workers} workers: a worker held the whole graph "
                f"({worst} >= {n} entries)"
            )
            assert worst <= bound, f"resident {worst} > bound {bound}"
        m = out.metrics
        rows.append([
            workers, f"{part_bytes}", f"{full_bytes}",
            f"{part_bytes / full_bytes:.2f}", worst, f"{worst / n:.2f}",
            m.remote_vertex_hits, m.remote_vertex_misses,
            m.remote_vertex_evictions,
        ])
        json_rows.append({
            "workers": workers,
            "welcome_bytes_partitioned": part_bytes,
            "welcome_bytes_full_ship": full_bytes,
            "wire_fraction": part_bytes / full_bytes,
            "resident_entries_max": worst,
            "resident_fraction": worst / n,
            "resident_bound": bound,
            "remote_vertex_hits": m.remote_vertex_hits,
            "remote_vertex_misses": m.remote_vertex_misses,
            "remote_vertex_evictions": m.remote_vertex_evictions,
            "wall_seconds": wall,
            "results": len(out.maximal),
        })

    wire4 = json_rows[-1]["wire_fraction"]
    resident4 = json_rows[-1]["resident_fraction"]
    report(
        "Vertex store — partition shipping vs full-ship baseline",
        ["workers", "welcome B", "full-ship B", "wire frac",
         "resident max", "resident frac", "rv hits", "rv misses",
         "rv evict"],
        rows,
        notes=(
            f"|V|={n}, cache_capacity={CACHE_CAPACITY}. At 4 workers the "
            f"Welcome frame is {wire4:.2f}x the full-ship baseline and the "
            f"worst worker holds {resident4:.2f}x of the graph's adjacency "
            "entries — resident ≈ |V|/workers + cache, never the whole "
            "graph. Every cell's result set equals the serial oracle."
        ),
        out_name="vertex_store",
    )

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "instance": {
            "n": n, "avg_degree": 6, "num_plants": 2, "plant_size": 8,
            "gamma": GAMMA, "min_size": MIN_SIZE,
            "cache_capacity": CACHE_CAPACITY,
        },
        "cpu_count": os.cpu_count(),
        "rows": json_rows,
        # Headline targets: at 4 workers the wire frame and resident
        # set must both fall under half the full-graph baseline.
        "target_wire_fraction": 0.5,
        "target_resident_fraction": 0.5,
        "target_met": wire4 <= 0.5 and resident4 <= 0.5,
    }
    with open(os.path.join(out_dir, "vertex_store.json"), "w") as f:
        json.dump(payload, f, indent=2)

    assert payload["target_met"], (
        f"partitioned store not bounded: wire {wire4:.2f}, "
        f"resident {resident4:.2f} (targets <= 0.5)"
    )
