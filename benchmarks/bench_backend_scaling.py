"""Backend scaling — wall-clock comparison of the real executors.

The paper's premise (Section 5) is that mining compers must occupy
whole cores: quasi-clique mining is CPU-bound, so an executor whose
workers share one interpreter lock cannot scale. The threaded driver
reproduces the *scheduling* faithfully but runs under the GIL; the
process backend gives each comper a real core.

Measured analog: serial / threaded / process on one CPU-bound planted
instance, workers ∈ {1, 2, 4}. Unlike the virtual-makespan tables these
are honest wall-clock numbers, so the emitted JSON records `cpu_count`;
the ≥1.5× process-over-threaded expectation at 4 workers is asserted
only where the machine has 4 cores to give (on fewer cores every
backend is time-sliced onto the same silicon and the process pool can
only add IPC overhead).

Artifacts: benchmarks/out/backend_scaling.txt (table) and
benchmarks/out/backend_scaling.json (machine-readable report).
"""

import json
import os

from repro.bench import backend_comparison, report
from repro.graph.generators import planted_quasicliques
from repro.gthinker import EngineConfig

WORKER_COUNTS = [1, 2, 4]

# Six planted 0.75-quasi-cliques of 16 vertices in a 500-vertex
# heavy-tailed background: ~0.7 s of pure set-enumeration per serial
# run, decomposing into ~500 tasks — enough parallel slack for 4
# workers, small enough to rerun per backend cell.
GAMMA, MIN_SIZE = 0.75, 11


def _instance():
    return planted_quasicliques(
        n=500, avg_degree=8, num_plants=6, plant_size=16, gamma=GAMMA, seed=3
    )


def _config():
    return EngineConfig(
        decompose="timed", tau_time=1500, time_unit="ops", tau_split=24
    )


def test_backend_scaling(benchmark):
    pg = _instance()
    comparison = benchmark.pedantic(
        lambda: backend_comparison(
            pg.graph, GAMMA, MIN_SIZE, WORKER_COUNTS,
            base_config=_config(), repeats=2,
        ),
        rounds=1, iterations=1,
    )

    rows = [["serial", 1, f"{comparison.serial_seconds:.3f}", "1.0x", "-"]]
    for p in comparison.points:
        rows.append([
            p.backend, p.workers, f"{p.wall_seconds:.3f}",
            f"{p.speedup_vs_serial:.2f}x", p.tasks_executed,
        ])
    threaded4 = comparison.point("threaded", 4)
    process4 = comparison.point("process", 4)
    process_vs_threaded = threaded4.wall_seconds / process4.wall_seconds
    report(
        "Backend scaling — wall clock on a CPU-bound planted instance",
        ["backend", "workers", "seconds", "speedup vs serial", "tasks"],
        rows,
        notes=(
            f"cpu_count={comparison.cpu_count}; process vs threaded at 4 "
            f"workers: {process_vs_threaded:.2f}x. The GIL caps the threaded "
            "driver at ~1x regardless of workers; the process backend "
            "scales with real cores."
        ),
        out_name="backend_scaling",
    )

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "instance": {
            "n": 500, "avg_degree": 8, "num_plants": 6, "plant_size": 16,
            "gamma": GAMMA, "min_size": MIN_SIZE,
        },
        "cpu_count": comparison.cpu_count,
        "serial_seconds": comparison.serial_seconds,
        "rows": [
            {
                "backend": p.backend,
                "workers": p.workers,
                "wall_seconds": p.wall_seconds,
                "speedup_vs_serial": p.speedup_vs_serial,
                "results": p.results,
                "tasks_executed": p.tasks_executed,
            }
            for p in comparison.points
        ],
        "process_vs_threaded_at_4": process_vs_threaded,
        "target_speedup": 1.5,
        "target_met": (
            process_vs_threaded >= 1.5 if comparison.cpu_count >= 4 else None
        ),
    }
    with open(os.path.join(out_dir, "backend_scaling.json"), "w") as f:
        json.dump(payload, f, indent=2)

    # Correctness is asserted inside backend_comparison (all backends
    # must agree with serial). The scaling claim needs real cores.
    if comparison.cpu_count >= 4:
        assert process_vs_threaded >= 1.5, (
            f"process backend at 4 workers should beat the GIL-bound "
            f"threaded driver by >=1.5x on {comparison.cpu_count} cores, "
            f"got {process_vs_threaded:.2f}x"
        )
