"""Extension — query-driven search vs global mining (paper §2 related work).

[25, 17, 19] narrow the search to quasi-cliques containing a query
vertex. The claim to verify: the query mode is far cheaper than global
mining (its space is one 2-hop ball) while returning exactly the
globally-maximal quasi-cliques that contain the query.
"""

from repro.bench import report
from repro.core.miner import mine_maximal_quasicliques
from repro.core.query import mine_containing, query_candidates

_state = {}


def _query_vertex(pg):
    """A member of the largest planted core — the interesting query."""
    return min(max(pg.planted, key=len))


def test_extension_query_global(benchmark, dataset):
    spec, pg = dataset("hyves")
    result = benchmark.pedantic(
        lambda: mine_maximal_quasicliques(pg.graph, spec.gamma, spec.min_size),
        rounds=1, iterations=1,
    )
    _state["global"] = result


def test_extension_query_driven(benchmark, dataset):
    spec, pg = dataset("hyves")
    q = _query_vertex(pg)
    result = benchmark.pedantic(
        lambda: mine_containing(pg.graph, [q], spec.gamma, spec.min_size),
        rounds=1, iterations=1,
    )
    _state["query"] = result
    _state["q"] = q


def test_extension_query_report(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec, pg = dataset("hyves")
    q = _state["q"]
    glob = _state["global"]
    quer = _state["query"]
    ball = len(query_candidates(pg.graph, {q}))
    rows = [
        ["search space", f"|V|={pg.graph.num_vertices:,}", f"2-hop ball={ball}"],
        ["mining ops", f"{glob.stats.mining_ops:,}", f"{quer.stats.mining_ops:,}"],
        ["speedup", "1.00x",
         f"{glob.stats.mining_ops / max(1, quer.stats.mining_ops):.1f}x"],
        ["results", len(glob.maximal), len(quer.maximal)],
    ]
    report(
        f"Extension — query-driven search (hyves analog, query={q})",
        ["metric", "global mining", "query-driven"],
        rows,
        notes=(
            "Paper §2 on [25, 17, 19]: query-driven methods narrow the search\n"
            "space dramatically but 'sacrifice result diversity' — they return\n"
            "only the communities around the query."
        ),
        out_name="extension_query",
    )
    # Exactness: the query mode returns exactly the global results
    # containing the query vertex.
    containing = {s for s in glob.maximal if q in s}
    assert quer.maximal == containing
    assert quer.stats.mining_ops < glob.stats.mining_ops