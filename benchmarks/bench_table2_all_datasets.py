"""Table 2 — end-to-end results on all datasets.

Paper columns: τ_size, γ, τ_split, τ_time, Time, RAM, Disk, Result #.
Here: the analog is mined on the real (in-process) engine with the
registered parameters; RAM is proxied by the peak count of pending
tasks, disk by peak spilled bytes. Absolute times are not comparable
(Python on 1 core vs C++ on 512 threads) — the shape that must hold is
the *relative* dataset ordering: the coexpression/collaboration graphs
are cheap, the overlapping-core social graphs (hyves/youtube analogs)
dominate.
"""

import time

import pytest

from repro.bench import report
from repro.datasets import dataset_names
from repro.gthinker import EngineConfig, mine_parallel

_rows = []


@pytest.mark.parametrize("name", dataset_names())
def test_table2_dataset(benchmark, dataset, name):
    spec, pg = dataset(name)
    graph = pg.graph
    config = EngineConfig(
        tau_split=spec.tau_split,
        tau_time=spec.tau_time_ops,
        time_unit="ops",
        decompose="timed",
        queue_capacity=64,
        batch_size=8,
    )

    out = benchmark.pedantic(
        lambda: mine_parallel(graph, spec.gamma, spec.min_size, config),
        rounds=1, iterations=1,
    )
    m = out.metrics
    _rows.append([
        name, spec.min_size, spec.gamma, spec.tau_split,
        f"{spec.tau_time_ops:g}",
        f"{m.wall_seconds:.2f}s",
        m.peak_pending_tasks,
        f"{m.spill_bytes_peak:,}B",
        len(out.maximal),
        spec.paper_result_count,
        f"{spec.paper_time_seconds:,.0f}s",
    ])


def test_table2_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    order = {n: i for i, n in enumerate(dataset_names())}
    _rows.sort(key=lambda r: order.get(r[0], 99))
    report(
        "Table 2 — results on all datasets (analog scale)",
        ["dataset", "tau_size", "gamma", "tau_split", "tau_time(ops)",
         "time", "peak tasks", "peak disk", "result #",
         "paper result #", "paper time"],
        _rows,
        notes=(
            "Result counts differ from the paper (synthetic analogs at ~1/100\n"
            "scale); the preserved shape is the cost ordering — easy gene/\n"
            "collaboration graphs vs expensive overlapping-core social graphs."
        ),
        out_name="table2_all_datasets",
    )
