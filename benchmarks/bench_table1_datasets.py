"""Table 1 — graph datasets: paper originals vs synthetic analogs."""

from repro.bench import report
from repro.datasets import dataset_names


def test_table1_dataset_inventory(benchmark, dataset):
    # Benchmark the cost of materializing one mid-sized analog.
    spec, _ = dataset("enron")
    benchmark.pedantic(lambda: spec.build(), rounds=1, iterations=1)

    rows = []
    for name in dataset_names():
        spec, pg = dataset(name)
        g = pg.graph
        rows.append([
            name,
            f"{spec.paper_vertices:,}",
            f"{spec.paper_edges:,}",
            f"{g.num_vertices:,}",
            f"{g.num_edges:,}",
            len(pg.planted),
        ])
    report(
        "Table 1 — datasets (paper original vs synthetic analog)",
        ["dataset", "paper |V|", "paper |E|", "analog |V|", "analog |E|", "plants"],
        rows,
        notes=(
            "Analogs are scaled down ~100-500x in |V| so Python-speed mining is\n"
            "tractable; they preserve heavy-tailed degrees plus planted dense\n"
            "modules (the mined quasi-cliques)."
        ),
        out_name="table1_datasets",
    )
