"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (Section 7) on the synthetic dataset analogs, printing the
paper's reported values next to the measured ones. Run with::

    pytest benchmarks/ --benchmark-only -s

Rendered tables are also written to benchmarks/out/.
"""

from __future__ import annotations

import pytest

from repro.datasets import build_dataset, get_dataset
from repro.gthinker import EngineConfig
from repro.gthinker.cluster import mine_cluster
from repro.gthinker.simulation import simulate_cluster


def pytest_addoption(parser):
    parser.addoption(
        "--real-cluster",
        action="store_true",
        default=False,
        help="also run the scalability sweeps on the real TCP "
        "master/worker cluster backend (localhost worker processes; "
        "wall-clock numbers next to the virtual makespans)",
    )


@pytest.fixture(scope="session")
def real_cluster(request) -> bool:
    return request.config.getoption("--real-cluster")


@pytest.fixture(scope="session")
def dataset():
    """Factory fixture: dataset name → (spec, PlantedGraph), memoized."""

    def _get(name: str):
        return get_dataset(name), build_dataset(name)

    return _get


def sim_run(graph, spec, machines=1, threads=1, **overrides):
    """One simulated-cluster run with a dataset's registered parameters."""
    params = dict(
        num_machines=machines,
        threads_per_machine=threads,
        tau_split=spec.tau_split,
        tau_time=spec.tau_time_ops,
        time_unit="ops",
        decompose="timed",
    )
    params.update(overrides)
    config = EngineConfig(**params)
    return simulate_cluster(graph, spec.gamma, spec.min_size, config)


def cluster_run(graph, spec, workers=2, **overrides):
    """One real TCP-cluster run with a dataset's registered parameters."""
    params = dict(
        backend="cluster",
        num_procs=workers,
        tau_split=spec.tau_split,
        tau_time=spec.tau_time_ops,
        time_unit="ops",
        decompose="timed",
        heartbeat_period=0.05,
        heartbeat_timeout=30.0,
    )
    params.update(overrides)
    config = EngineConfig(**params)
    return mine_cluster(
        graph, spec.gamma, spec.min_size, config=config, timeout=600.0
    )
