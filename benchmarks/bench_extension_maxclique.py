"""Extension — maximum clique on the engine (G-thinker's flagship app).

The paper motivates G-thinker with its maximum-clique run on Friendster
(65.6 M vertices, 252 s in a small cluster). This benchmark runs our
second engine application on the social-graph analogs and checks the
engine machinery (spawn → build → branch-and-bound → size-threshold
decomposition with a shared incumbent) end to end.
"""

import pytest

from repro.bench import report
from repro.core.maxclique import is_clique, max_clique
from repro.gthinker.app_maxclique import find_max_clique_parallel
from repro.gthinker.config import EngineConfig

DATASETS = ["amazon", "hyves", "youtube"]

_state = {}


@pytest.mark.parametrize("name", DATASETS)
def test_extension_maxclique(benchmark, dataset, name):
    spec, pg = dataset(name)
    config = EngineConfig(decompose="size", tau_split=32)
    clique, metrics = benchmark.pedantic(
        lambda: find_max_clique_parallel(pg.graph, config),
        rounds=1, iterations=1,
    )
    assert is_clique(pg.graph, clique)
    _state[name] = (clique, metrics, pg)


def test_extension_maxclique_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in DATASETS:
        clique, metrics, pg = _state[name]
        serial, serial_stats = max_clique(pg.graph)
        assert len(serial) == len(clique), (
            f"engine and serial max-clique disagree on {name}"
        )
        rows.append([
            name, pg.graph.num_vertices, len(clique),
            metrics.tasks_spawned, f"{metrics.mining_stats.mining_ops:,}",
            f"{serial_stats.ops:,}",
        ])
    report(
        "Extension — maximum clique via the engine (social analogs)",
        ["dataset", "|V|", "max clique", "tasks", "engine ops", "serial ops"],
        rows,
        notes=(
            "Engine result must equal the serial branch-and-bound on every\n"
            "graph; the task decomposition shares the incumbent bound."
        ),
        out_name="extension_maxclique",
    )
