"""Table 3 — effect of (τ_time, τ_split) on CX_GSE10158.

Paper shape: on this *easy* dataset, shrinking τ_time only hurts —
more tasks lose the Tfound-based non-maximal suppression (Alg. 10
line 28), so (a) the raw result count grows and (b) total work rises
from the extra candidate checks. The τ_split axis barely matters.

Measured analog: total serial work (ops) and raw candidate count over a
τ_time × τ_split grid on the simulated engine (1 thread, so "time" is
total work — the serial-cost view the paper's Table 3 takes).
"""

import pytest

from repro.bench import report
from conftest import sim_run

TAU_TIMES = [100_000, 2_000, 200]  # analog of the paper's 20s … 0.01s sweep
TAU_SPLITS = [500, 200, 50]

_cells: dict[tuple[int, int], tuple[float, int, int]] = {}


@pytest.mark.parametrize("tau_time", TAU_TIMES)
@pytest.mark.parametrize("tau_split", TAU_SPLITS)
def test_table3_cell(benchmark, dataset, tau_time, tau_split):
    spec, pg = dataset("cx_gse10158")

    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, tau_time=tau_time, tau_split=tau_split),
        rounds=1, iterations=1,
    )
    _cells[(tau_time, tau_split)] = (
        out.total_work, len(out.candidates), len(out.maximal)
    )


def test_table3_report(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec, _ = dataset("cx_gse10158")
    work_rows = []
    count_rows = []
    for tau_time in TAU_TIMES:
        work_rows.append(
            [f"{tau_time:,}"] + [
                f"{_cells[(tau_time, ts)][0]:,.0f}" for ts in TAU_SPLITS
            ]
        )
        count_rows.append(
            [f"{tau_time:,}"] + [
                f"{_cells[(tau_time, ts)][1]} ({_cells[(tau_time, ts)][2]})"
                for ts in TAU_SPLITS
            ]
        )
    headers = ["tau_time(ops) \\ tau_split"] + [str(t) for t in TAU_SPLITS]
    report(
        "Table 3a — total work (ops) on cx_gse10158 analog",
        headers, work_rows,
        notes="Paper shape: easy dataset → smaller tau_time only adds overhead.",
        out_name="table3a_gse_work",
    )
    report(
        "Table 3b — raw candidates (maximal) on cx_gse10158 analog",
        headers, count_rows,
        notes=(
            "Paper shape: result count (pre-postprocessing) grows as tau_time\n"
            "shrinks — wrapped subtasks lose the non-maximal suppression of\n"
            "Algorithm 10 line 28. The maximal count (parenthesized) is stable."
        ),
        out_name="table3b_gse_counts",
    )
    # Shape assertions (the paper's qualitative claims).
    for ts in TAU_SPLITS:
        big = _cells[(TAU_TIMES[0], ts)]
        small = _cells[(TAU_TIMES[-1], ts)]
        assert small[1] >= big[1], "candidate count must not shrink with tau_time"
        assert small[2] == big[2], "maximal results must be invariant"
