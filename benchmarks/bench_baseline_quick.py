"""Baseline — original Quick vs the paper's corrected algorithm (Section 4).

Two claims from the paper's algorithm half:

* (T1) Quick skips the k-core preprocessing, "leading to a very poor
  scalability in our preliminary test";
* Quick misses maximal results (the critical-vertex and empty-ext
  checks) — our corrected algorithm must find a superset.

Measured on the coexpression and collaboration analogs (where both
algorithms finish fast enough to compare).
"""

import pytest

from repro.bench import report
from repro.core.miner import mine_maximal_quasicliques
from repro.core.quick import mine_quick, mine_quick_with_kcore

DATASETS = ["cx_gse1730", "cx_gse10158", "ca_grqc"]

_state = {}


@pytest.mark.parametrize("name", DATASETS)
def test_baseline_full(benchmark, dataset, name):
    spec, pg = dataset(name)
    result = benchmark.pedantic(
        lambda: mine_maximal_quasicliques(
            pg.graph, spec.gamma, spec.min_size, mode="global"
        ),
        rounds=1, iterations=1,
    )
    _state[(name, "full")] = result


@pytest.mark.parametrize("name", DATASETS)
def test_baseline_quick_with_kcore(benchmark, dataset, name):
    # Quick's missing checks but WITH the k-core shrink, so the work
    # comparison isolates the output-check differences (the raw Quick
    # without k-core is measured by bench_ablation_kcore).
    spec, pg = dataset(name)
    result = benchmark.pedantic(
        lambda: mine_quick_with_kcore(pg.graph, spec.gamma, spec.min_size),
        rounds=1, iterations=1,
    )
    _state[(name, "quick")] = result


def test_baseline_misses_on_adversarial_instances(benchmark):
    """Quick's result misses are corner cases; count them over a random
    instance family (the paper proves existence; we measure frequency)."""
    import itertools
    import random

    from repro.core.naive import enumerate_maximal_quasicliques

    def scan():
        rng = random.Random(2020)
        missed_instances = 0
        trials = 150
        for _ in range(trials):
            n = rng.randint(5, 9)
            p = rng.uniform(0.3, 0.8)
            edges = [
                (u, v)
                for u, v in itertools.combinations(range(n), 2)
                if rng.random() < p
            ]
            from repro.graph.adjacency import Graph

            g = Graph.from_edges(edges, vertices=range(n))
            gamma = rng.choice([0.5, 0.6, 0.75, 0.9])
            ms = rng.randint(2, 4)
            want = enumerate_maximal_quasicliques(g, gamma, ms)
            got = mine_quick(g, gamma, ms).maximal
            assert got <= want
            if got != want:
                missed_instances += 1
        return trials, missed_instances

    trials, missed = benchmark.pedantic(scan, rounds=1, iterations=1)
    _state["adversarial"] = (trials, missed)
    assert missed > 0, "expected Quick to miss results on some instances"


def test_baseline_report(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in DATASETS:
        full = _state[(name, "full")]
        quick = _state[(name, "quick")]
        missed = full.maximal - quick.maximal
        rows.append([
            name,
            f"{full.stats.mining_ops:,}",
            f"{quick.stats.mining_ops:,}",
            len(full.maximal),
            len(quick.maximal),
            len(missed),
        ])
        assert quick.maximal <= full.maximal, (
            f"Quick invented results on {name}"
        )
    trials, missed = _state["adversarial"]
    rows.append([
        f"random family ({trials} instances)", "-", "-", "-", "-",
        f"{missed} instances",
    ])
    report(
        "Baseline — corrected algorithm vs original Quick (+k-core)",
        ["dataset", "full ops", "quick ops", "full results",
         "quick results", "missed by quick"],
        rows,
        notes=(
            "Paper Section 4: Quick's output checks miss results; the\n"
            "corrected algorithm never returns less. (Work is comparable\n"
            "once Quick is granted the k-core shrink it lacks — the shrink\n"
            "itself is the dominating factor, see ablation_kcore.)"
        ),
        out_name="baseline_quick",
    )
