"""Ablation — the reforge: global big-task queue on/off.

The paper's Challenge 2: with only per-thread local queues, an
expensive task causes head-of-line blocking and most cores idle. The
reforged engine adds a per-machine global queue for big tasks that all
threads drain with priority.

Measured: virtual makespan on the youtube analog with the global queue
enabled vs disabled (simulated 1×8; decomposition active in both arms,
so the difference isolates queue routing).
"""

from repro.bench import report
from conftest import sim_run

_state = {}


def test_ablation_global_queue_on(benchmark, dataset):
    spec, pg = dataset("youtube")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, threads=8, use_global_queue=True),
        rounds=1, iterations=1,
    )
    _state["on"] = out


def test_ablation_global_queue_off(benchmark, dataset):
    spec, pg = dataset("youtube")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, threads=8, use_global_queue=False),
        rounds=1, iterations=1,
    )
    _state["off"] = out


def test_ablation_global_queue_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    on, off = _state["on"], _state["off"]
    rows = [
        ["virtual makespan", f"{on.makespan:,.0f}", f"{off.makespan:,.0f}"],
        ["utilization", f"{on.utilization:.2f}", f"{off.utilization:.2f}"],
        ["results", len(on.maximal), len(off.maximal)],
    ]
    report(
        "Ablation — global big-task queue (youtube analog, 1x8)",
        ["metric", "reforged (ON)", "original (OFF)"],
        rows,
        notes=(
            "Paper Challenge 2: without shared big-task scheduling, expensive\n"
            "tasks head-of-line block their local queue and cores idle."
        ),
        out_name="ablation_global_queue",
    )
    assert on.maximal == off.maximal
    assert on.makespan <= off.makespan * 1.02, (
        "the reforged scheduler must not be slower"
    )
