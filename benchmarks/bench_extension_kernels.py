"""Extension — kernel-expansion top-k vs exact mining (paper §8, [32]).

The paper's planned extension: mine strict-γ′ kernels first, then grow
them to γ-quasi-cliques. The claims to verify at analog scale: kernel
mining is substantially cheaper than exact mining, and the heuristic's
top-k sizes are close to the exact top-k (small error, per [32]).
"""

from repro.bench import report
from repro.core.kernels import top_k_quasicliques
from repro.core.miner import mine_maximal_quasicliques

_state = {}
K = 5


def test_extension_kernels_exact(benchmark, dataset):
    spec, pg = dataset("youtube")
    result = benchmark.pedantic(
        lambda: mine_maximal_quasicliques(pg.graph, spec.gamma, spec.min_size),
        rounds=1, iterations=1,
    )
    _state["exact"] = result


def test_extension_kernels_heuristic(benchmark, dataset):
    spec, pg = dataset("youtube")
    result = benchmark.pedantic(
        lambda: top_k_quasicliques(
            pg.graph, spec.gamma, k=K, min_size=spec.min_size
        ),
        rounds=1, iterations=1,
    )
    _state["heuristic"] = result


def test_extension_kernels_report(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec, _ = dataset("youtube")
    exact = _state["exact"]
    heur = _state["heuristic"]
    exact_top = sorted(exact.maximal, key=len, reverse=True)[:K]
    rows = [
        ["mining ops", f"{exact.stats.mining_ops:,}", f"{heur.stats.mining_ops:,}"],
        ["speedup", "1.00x",
         f"{exact.stats.mining_ops / max(1, heur.stats.mining_ops):.2f}x"],
        ["total results", len(exact.maximal), len(heur.expanded)],
        ["top-k sizes",
         " ".join(str(len(s)) for s in exact_top),
         " ".join(str(len(s)) for s in heur.top_k)],
        ["kernel gamma", f"{spec.gamma}", f"{heur.kernel_gamma:.2f}"],
    ]
    report(
        f"Extension — kernel expansion vs exact (youtube analog, k={K})",
        ["metric", "exact miner", "kernel heuristic"],
        rows,
        notes=(
            "[32]'s claim at analog scale: strict-gamma kernel mining is much\n"
            "cheaper, and the heuristic top-k sizes track the exact top-k."
        ),
        out_name="extension_kernels",
    )
    assert heur.stats.mining_ops < exact.stats.mining_ops, (
        "kernel mining must be cheaper than exact mining"
    )
    if exact_top and heur.top_k:
        assert len(heur.top_k[0]) >= len(exact_top[0]) - 2, (
            "heuristic top-1 must be within 2 vertices of the exact top-1"
        )
