"""Figure 3 — task time vs subgraph size: time is unpredictable from size.

Paper shape: tasks with subgraphs of comparable size differ in running
time by orders of magnitude (two side-by-side tables, ~15k-vertex
subgraphs at 5,000s vs 300,000s). This unpredictability is why
regression models failed and why the paper resorts to the pay-as-you-go
time-delayed decomposition.

Measured analog: per-task (|V(g)|, mining ops) pairs on the youtube
analog; within same-size bands we report the max/min time spread, plus
a rank-correlation summary.
"""

from repro.bench import report
from conftest import sim_run

_state = {}


def spearman_rank_correlation(xs, ys):
    def ranks(vals):
        order = sorted(range(len(vals)), key=lambda i: vals[i])
        r = [0.0] * len(vals)
        for rank, i in enumerate(order):
            r[i] = float(rank)
        return r

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy) ** 0.5


def test_fig3_collect(benchmark, dataset):
    spec, pg = dataset("youtube")
    out = benchmark.pedantic(
        lambda: sim_run(pg.graph, spec, tau_time=float("inf"), decompose="none"),
        rounds=1, iterations=1,
    )
    _state["pairs"] = [
        (r.subgraph_vertices, max(1, r.mining_ops))
        for r in out.metrics.task_records
        if r.subgraph_vertices > 0
    ]


def test_fig3_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pairs = _state["pairs"]
    assert pairs
    # Band tasks by subgraph size and measure within-band time spread.
    bands: dict[int, list[int]] = {}
    for size, ops in pairs:
        bands.setdefault(size // 5, []).append(ops)
    rows = []
    spreads = []
    for band, opses in sorted(bands.items()):
        if len(opses) < 2:
            continue
        spread = max(opses) / min(opses)
        spreads.append(spread)
        rows.append([
            f"{band * 5}..{band * 5 + 4}", len(opses),
            f"{min(opses):,}", f"{max(opses):,}", f"{spread:,.1f}x",
        ])
    rho = spearman_rank_correlation(
        [s for s, _ in pairs], [t for _, t in pairs]
    )
    sizes_sorted = sorted(s for s, _ in pairs)
    median_size = sizes_sorted[len(sizes_sorted) // 2]
    big = [(s, t) for s, t in pairs if s >= median_size]
    rho_big = spearman_rank_correlation([s for s, _ in big], [t for _, t in big])
    rows.append(["-- summary --", "", "", "", ""])
    rows.append(["rank corr (all tasks)", f"{rho:.2f}", "", "", ""])
    rows.append(["rank corr (big half)", f"{rho_big:.2f}", "", "", ""])
    report(
        "Figure 3 — task time vs subgraph size (youtube analog)",
        ["|V(g)| band", "tasks", "min ops", "max ops", "spread"],
        rows,
        notes=(
            "Paper shape: comparable-size subgraphs differ in mining time by\n"
            "orders of magnitude — size does not predict time, motivating\n"
            "time-delayed (pay-as-you-go) decomposition over size thresholds."
        ),
        out_name="fig3_time_vs_size",
    )
    assert max(spreads, default=1.0) >= 10, (
        "expected same-size tasks with >=10x time spread"
    )
    assert rho_big < 0.7, (
        "size must be a weak predictor of time among the tasks that matter"
    )
