"""Service query throughput — the ResultStore against re-mining.

The mining service's read path exists because a mined job should be
*queried*, not re-mined: "which communities contain vertex v" over a
completed job is a posting-list intersection in the ResultStore,
versus a fresh `mine_containing` run on the graph. This benchmark
measures that gap on one planted instance (the backend_scaling
instance, mined once up front):

* ``re-mine``      — `repro.core.query.mine_containing` per query, the
                     no-service baseline;
* ``store cold``   — first pass over the workload: index built once,
                     every query a cache miss;
* ``store warm``   — second pass: the LRU query cache answers
                     everything (the daemon's steady state for popular
                     vertices).

Smoke mode (``REPRO_BENCH_SMOKE=1``, the CI perf-smoke job): a smaller
instance and the assertion relaxed to warm >= cold — shared runners
cannot support a stable multiplier claim. The committed
benchmarks/out/service_throughput.json records the full numbers.

Artifacts: benchmarks/out/service_throughput.txt and .json
(backend_scaling-style schema: instance / rows / target_met).
"""

import json
import os
import tempfile
import time

from repro.bench import report
from repro.core.miner import mine_maximal_quasicliques
from repro.core.query import mine_containing
from repro.core.resultsio import write_results
from repro.graph.generators import planted_quasicliques
from repro.service.store import ResultStore

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

GAMMA, MIN_SIZE = 0.75, 11
#: Full target: serving a community query from the store must beat
#: re-mining the answer by >= 50x. Real runs land far above this.
TARGET_SPEEDUP = 50.0
REMINE_SAMPLES = 3 if SMOKE else 8


def _instance():
    if SMOKE:
        return planted_quasicliques(
            n=150, avg_degree=6, num_plants=2, plant_size=12,
            gamma=GAMMA, seed=3,
        )
    return planted_quasicliques(
        n=500, avg_degree=8, num_plants=6, plant_size=16,
        gamma=GAMMA, seed=3,
    )


def _workload(maximal, graph):
    """A mixed query batch: members, co-members, absentees, top-k."""
    queries = []
    communities = sorted(maximal, key=lambda s: (-len(s), sorted(s)))
    for comm in communities:
        members = sorted(comm)
        queries.append((tuple(members[:1]), None))       # single vertex
        queries.append((tuple(members[:2]), None))       # co-membership pair
        queries.append((tuple(members[:1]), 5))          # top-k variant
    in_any = set().union(*communities) if communities else set()
    outsiders = [v for v in sorted(graph.vertices()) if v not in in_any]
    for v in outsiders[:10]:
        queries.append(((v,), None))                     # matches nothing
    queries.append(((), 10))                             # top-10 of all
    # Communities sharing their smallest members produce duplicate
    # queries; keep one of each so the cold pass is all cache misses.
    seen, unique = set(), []
    for q in queries:
        if q not in seen:
            seen.add(q)
            unique.append(q)
    return unique


def _run_workload(store, queries):
    t0 = time.perf_counter()
    for query, top in queries:
        store.communities("job-000001", query, top)
    return time.perf_counter() - t0


def test_service_query_throughput(benchmark):
    pg = _instance()
    mined = mine_maximal_quasicliques(pg.graph, GAMMA, MIN_SIZE)
    queries = _workload(mined.maximal, pg.graph)

    with tempfile.TemporaryDirectory() as jobs_dir:
        os.makedirs(os.path.join(jobs_dir, "job-000001"))
        write_results(
            mined.maximal, os.path.join(jobs_dir, "job-000001", "result.txt")
        )
        store = ResultStore(jobs_dir)
        cold_seconds = _run_workload(store, queries)
        assert store.counters()["cache_misses"] == len(queries)
        # Steady state: every query answered from the LRU cache.
        warm_seconds = benchmark.pedantic(
            lambda: _run_workload(store, queries), rounds=3, iterations=1
        )
        assert store.counters()["cache_hits"] >= len(queries)

    remine_queries = [q for q, _ in queries if q][:REMINE_SAMPLES]
    t0 = time.perf_counter()
    for query in remine_queries:
        mine_containing(pg.graph, query, GAMMA, MIN_SIZE)
    remine_per_query = (time.perf_counter() - t0) / len(remine_queries)

    cold_qps = len(queries) / cold_seconds
    warm_qps = len(queries) / warm_seconds
    remine_qps = 1.0 / remine_per_query
    speedup = warm_qps / remine_qps

    rows = [
        ["re-mine (mine_containing)", f"{remine_qps:.1f}", "1.0x"],
        ["store cold (index build + misses)", f"{cold_qps:.0f}",
         f"{cold_qps / remine_qps:.0f}x"],
        ["store warm (LRU cache)", f"{warm_qps:.0f}", f"{speedup:.0f}x"],
    ]
    report(
        "Service query throughput — ResultStore vs re-mining per query",
        ["path", "queries/sec", "vs re-mine"],
        rows,
        notes=(
            f"{len(queries)} mixed queries (members, pairs, absentees, "
            f"top-k) over {len(mined.maximal)} mined communities; re-mine "
            f"baseline averaged over {len(remine_queries)} queries."
            + (" SMOKE mode." if SMOKE else "")
        ),
        out_name="service_throughput",
    )

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "instance": {
            "n": 150 if SMOKE else 500,
            "avg_degree": 6 if SMOKE else 8,
            "num_plants": 2 if SMOKE else 6,
            "plant_size": 12 if SMOKE else 16,
            "gamma": GAMMA, "min_size": MIN_SIZE,
        },
        "smoke": SMOKE,
        "communities": len(mined.maximal),
        "queries": len(queries),
        "rows": [
            {"path": "remine", "queries_per_second": remine_qps},
            {"path": "store_cold", "queries_per_second": cold_qps},
            {"path": "store_warm", "queries_per_second": warm_qps},
        ],
        "warm_speedup_vs_remine": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "target_met": None if SMOKE else speedup >= TARGET_SPEEDUP,
    }
    with open(os.path.join(out_dir, "service_throughput.json"), "w") as f:
        json.dump(payload, f, indent=2)

    if SMOKE:
        assert warm_qps >= cold_qps * 0.8, (
            "cached queries should not be slower than cold ones "
            f"(warm {warm_qps:.0f} qps vs cold {cold_qps:.0f} qps)"
        )
    else:
        assert speedup >= TARGET_SPEEDUP, (
            f"serving from the store should beat re-mining by >= "
            f"{TARGET_SPEEDUP}x, got {speedup:.1f}x"
        )
