"""Temporal community patterns — the Yang et al. [42] extension.

Simulates an interaction network over 6 time steps where one community
forms, persists, and dissolves while another emerges later; mines all
maximal temporal γ-quasi-clique patterns (vertex set + the interval it
stays dense) and picks a diversified top-k.

Run:  python examples/temporal_communities.py
"""

import itertools
import random

from repro.core.temporal import (
    TemporalGraph,
    diversified_top_k,
    mine_temporal_patterns,
)

SNAPSHOTS = 6
GAMMA = 0.8
MIN_SIZE = 4
MIN_DURATION = 2


def build_temporal_network(rng: random.Random) -> TemporalGraph:
    tg = TemporalGraph(num_snapshots=SNAPSHOTS)
    # Community A: vertices 0..5, dense during t = 0..3.
    for u, v in itertools.combinations(range(6), 2):
        times = [t for t in range(0, 4) if rng.random() < 0.9]
        if times:
            tg.add_edge(u, v, times)
    # Community B: vertices 10..15, dense during t = 3..5.
    for u, v in itertools.combinations(range(10, 16), 2):
        times = [t for t in range(3, 6) if rng.random() < 0.9]
        if times:
            tg.add_edge(u, v, times)
    # Background noise across the horizon.
    for _ in range(40):
        u, v = rng.sample(range(20), 2)
        tg.add_edge(u, v, [rng.randrange(SNAPSHOTS)])
    return tg


def main() -> None:
    rng = random.Random(42)
    tg = build_temporal_network(rng)
    print(f"temporal network: {tg.num_vertices} vertices, "
          f"{SNAPSHOTS} snapshots")

    result = mine_temporal_patterns(
        tg, gamma=GAMMA, min_size=MIN_SIZE, min_duration=MIN_DURATION
    )
    print(f"\n{len(result.patterns)} maximal temporal patterns "
          f"(gamma={GAMMA}, min_size={MIN_SIZE}, min_duration={MIN_DURATION}; "
          f"{result.windows_mined} windows mined)")
    for p in sorted(result.patterns, key=lambda p: (p.start, -len(p.vertices)))[:8]:
        print(f"  t=[{p.start}..{p.end}] size {len(p.vertices):2d}: "
              f"{sorted(p.vertices)}")

    top = diversified_top_k(result.patterns, k=3)
    print("\ndiversified top-3 (greedy max vertex-time coverage):")
    for i, p in enumerate(top):
        print(f"  #{i + 1}: t=[{p.start}..{p.end}] {sorted(p.vertices)} "
              f"({len(p.cells())} cells)")


if __name__ == "__main__":
    main()
