"""Quickstart: mine maximal quasi-cliques from a small planted graph.

Run:  python examples/quickstart.py
"""

from repro import mine_maximal_quasicliques
from repro.graph.generators import planted_quasicliques

GAMMA = 0.9  # every member adjacent to ≥ 90% of the others
MIN_SIZE = 8  # ignore quasi-cliques smaller than 8 vertices


def main() -> None:
    # A 300-vertex scale-free background with three planted 9-vertex
    # 0.9-quasi-cliques — the ground truth we expect to recover.
    pg = planted_quasicliques(
        n=300, avg_degree=5, num_plants=3, plant_size=9, gamma=GAMMA, seed=7
    )
    graph = pg.graph
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(f"planted: {[sorted(p) for p in pg.planted]}")

    result = mine_maximal_quasicliques(graph, gamma=GAMMA, min_size=MIN_SIZE)

    print(f"\nfound {len(result.maximal)} maximal {GAMMA}-quasi-cliques "
          f"(|S| >= {MIN_SIZE}):")
    for qc in sorted(result.maximal, key=len, reverse=True):
        planted = any(p <= qc for p in pg.planted)
        marker = " (planted)" if planted else ""
        print(f"  size {len(qc):2d}: {sorted(qc)}{marker}")

    s = result.stats
    print(f"\nsearch stats: {s.nodes_expanded} nodes expanded, "
          f"{s.type1_pruned} ext-vertices pruned, "
          f"{s.type2_pruned} subtrees pruned, "
          f"{s.lookahead_hits} lookahead hits")


if __name__ == "__main__":
    main()
