"""Top-k largest communities via kernel expansion (paper §8 future work).

The paper's conclusion plans to layer Sanei-Mehri et al.'s kernel
expansion on top of the codesign: mine strict-γ′ kernels (cheap), grow
each into a large γ-quasi-clique, and keep the k largest. This example
compares the heuristic against exact mining on the youtube analog.

Run:  python examples/top_communities.py
"""

import time

from repro.core.kernels import top_k_quasicliques
from repro.core.miner import mine_maximal_quasicliques
from repro.datasets import build_dataset, get_dataset

DATASET = "youtube"
K = 5


def main() -> None:
    spec = get_dataset(DATASET)
    graph = build_dataset(DATASET).graph
    print(f"{DATASET} analog: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"(gamma={spec.gamma}, min_size={spec.min_size})")

    t0 = time.perf_counter()
    exact = mine_maximal_quasicliques(graph, spec.gamma, spec.min_size)
    exact_time = time.perf_counter() - t0
    exact_top = sorted(exact.maximal, key=len, reverse=True)[:K]

    t0 = time.perf_counter()
    heur = top_k_quasicliques(graph, spec.gamma, k=K, min_size=spec.min_size)
    heur_time = time.perf_counter() - t0

    print(f"\nexact miner    : {exact_time:6.2f}s, "
          f"{exact.stats.mining_ops:,} ops, {len(exact.maximal)} maximal results")
    print(f"kernel heuristic: {heur_time:6.2f}s, "
          f"{heur.stats.mining_ops:,} ops (kernel gamma' = {heur.kernel_gamma:.2f})")

    print(f"\ntop-{K} community sizes:")
    print(f"  exact    : {[len(s) for s in exact_top]}")
    print(f"  heuristic: {[len(s) for s in heur.top_k]}")
    for i, qc in enumerate(heur.top_k):
        exact_match = any(qc == e for e in exact_top)
        print(f"  #{i + 1} size {len(qc):2d} "
              f"({'exact match' if exact_match else 'heuristic'}): "
              f"{sorted(qc)[:10]}{' ...' if len(qc) > 10 else ''}")


if __name__ == "__main__":
    main()
