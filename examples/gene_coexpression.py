"""Gene coexpression module discovery — the paper's biology use case.

The paper's two smallest datasets (CX_GSE1730, CX_GSE10158) are gene
coexpression graphs: vertices are genes, edges connect genes whose
expression profiles correlate above a threshold, and quasi-cliques mark
co-expressed functional modules. This example builds the full pipeline
from raw (synthetic) expression data:

1. simulate an expression matrix with planted co-regulated modules;
2. threshold pairwise Pearson correlation into a graph;
3. mine maximal γ-quasi-cliques = candidate modules;
4. score recovery of the planted modules.

Run:  python examples/gene_coexpression.py
"""

import random

from repro import Graph, mine_maximal_quasicliques

N_GENES = 300
N_SAMPLES = 40
N_MODULES = 4
MODULE_SIZE = 10
CORRELATION_THRESHOLD = 0.6
GAMMA = 0.85
MIN_SIZE = 8


def simulate_expression(rng):
    """Expression matrix with co-regulated modules over noise.

    Genes in a module follow a shared latent profile plus noise; the
    rest are independent noise. Pure-Python (no numpy needed here).
    """
    modules = []
    next_gene = 0
    assignments = {}
    for m in range(N_MODULES):
        members = list(range(next_gene, next_gene + MODULE_SIZE))
        next_gene += MODULE_SIZE
        modules.append(set(members))
        for g in members:
            assignments[g] = m
    latent = [
        [rng.gauss(0, 1) for _ in range(N_SAMPLES)] for _ in range(N_MODULES)
    ]
    matrix = []
    for g in range(N_GENES):
        if g in assignments:
            base = latent[assignments[g]]
            row = [x + rng.gauss(0, 0.45) for x in base]
        else:
            row = [rng.gauss(0, 1) for _ in range(N_SAMPLES)]
        matrix.append(row)
    return matrix, modules


def pearson(x, y):
    n = len(x)
    mx = sum(x) / n
    my = sum(y) / n
    sxy = sum((a - mx) * (b - my) for a, b in zip(x, y))
    sxx = sum((a - mx) ** 2 for a in x)
    syy = sum((b - my) ** 2 for b in y)
    if sxx == 0 or syy == 0:
        return 0.0
    return sxy / (sxx * syy) ** 0.5


def build_coexpression_graph(matrix):
    g = Graph()
    for gene in range(len(matrix)):
        g.add_vertex(gene)
    for a in range(len(matrix)):
        for b in range(a + 1, len(matrix)):
            if abs(pearson(matrix[a], matrix[b])) >= CORRELATION_THRESHOLD:
                g.add_edge(a, b)
    return g


def jaccard(a, b):
    return len(a & b) / len(a | b)


def main() -> None:
    rng = random.Random(2020)
    matrix, modules = simulate_expression(rng)
    graph = build_coexpression_graph(matrix)
    print(f"coexpression graph: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"(threshold |r| >= {CORRELATION_THRESHOLD})")

    result = mine_maximal_quasicliques(graph, gamma=GAMMA, min_size=MIN_SIZE)
    found = sorted(result.maximal, key=len, reverse=True)
    print(f"\n{len(found)} candidate modules "
          f"(gamma={GAMMA}, min_size={MIN_SIZE}):")
    for qc in found[:8]:
        print(f"  size {len(qc):2d}: genes {sorted(qc)}")

    print("\nplanted-module recovery (best Jaccard per module):")
    for i, module in enumerate(modules):
        best = max((jaccard(module, set(qc)) for qc in found), default=0.0)
        print(f"  module {i} ({sorted(module)[0]}..{sorted(module)[-1]}): "
              f"Jaccard {best:.2f}")


if __name__ == "__main__":
    main()
