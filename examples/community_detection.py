"""Community detection on a social-network analog with the parallel engine.

Mirrors the paper's motivating use case: γ-quasi-cliques as tightly-knit
communities in a large online social network (Hyves / YouTube in the
paper). Runs the reforged G-thinker engine with time-delayed task
decomposition and reports both the communities and the system-side
metrics (task counts, decomposition activity, spills, cache behaviour).

Run:  python examples/community_detection.py
"""

import time

from repro.datasets import build_dataset, get_dataset
from repro.gthinker import EngineConfig, mine_parallel

DATASET = "hyves"


def main() -> None:
    spec = get_dataset(DATASET)
    pg = build_dataset(DATASET)
    graph = pg.graph
    print(f"{DATASET} analog: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"(paper original: |V|={spec.paper_vertices:,} |E|={spec.paper_edges:,})")

    config = EngineConfig(
        num_machines=1,
        threads_per_machine=2,
        tau_split=spec.tau_split,
        tau_time=spec.tau_time_ops,
        time_unit="ops",
        decompose="timed",
    )
    start = time.perf_counter()
    out = mine_parallel(graph, spec.gamma, spec.min_size, config)
    elapsed = time.perf_counter() - start

    print(f"\n{len(out.maximal)} communities "
          f"(gamma={spec.gamma}, min_size={spec.min_size}) in {elapsed:.2f}s")
    for qc in sorted(out.maximal, key=len, reverse=True)[:10]:
        print(f"  size {len(qc):2d}: {sorted(qc)[:12]}{' ...' if len(qc) > 12 else ''}")
    if len(out.maximal) > 10:
        print(f"  ... and {len(out.maximal) - 10} more")

    m = out.metrics
    print("\nengine metrics:")
    print(f"  tasks spawned / executed : {m.tasks_spawned} / {m.tasks_executed}")
    print(f"  decomposed tasks         : {m.tasks_decomposed} "
          f"(created {m.subtasks_created} subtasks)")
    print(f"  mining vs materialization: {m.total_mining_ops} vs "
          f"{m.total_materialize_ops} ops "
          f"(ratio {m.mining_vs_materialization_ratio():.0f}x)")
    print(f"  remote messages / cache  : {m.remote_messages} msgs, "
          f"{m.remote_vertex_hits} hits / {m.remote_vertex_misses} misses")
    print(f"  disk spills              : {m.spill_batches} batches, "
          f"{m.spill_bytes} bytes")


if __name__ == "__main__":
    main()
