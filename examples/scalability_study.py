"""Scalability study on the simulated cluster (paper Table 5 in miniature).

Sweeps virtual thread and machine counts over one mining job and prints
speedup/utilization — deterministic because every task cost is an
operation count, so all configurations schedule the identical task set.

Run:  python examples/scalability_study.py
"""

from repro.bench import report
from repro.datasets import build_dataset, get_dataset
from repro.gthinker import EngineConfig
from repro.gthinker.simulation import simulate_cluster

DATASET = "enron"


def main() -> None:
    spec = get_dataset(DATASET)
    graph = build_dataset(DATASET).graph
    print(f"{DATASET} analog: |V|={graph.num_vertices} |E|={graph.num_edges}")

    def run(machines: int, threads: int):
        config = EngineConfig(
            num_machines=machines,
            threads_per_machine=threads,
            tau_split=spec.tau_split,
            tau_time=spec.tau_time_ops,
            time_unit="ops",
            decompose="timed",
        )
        return simulate_cluster(graph, spec.gamma, spec.min_size, config)

    base = run(1, 1)
    rows = []
    for threads in (1, 2, 4, 8, 16, 32):
        out = run(1, threads)
        rows.append([
            1, threads, f"{out.makespan:,.0f}",
            f"{base.makespan / out.makespan:.2f}x",
            f"{out.utilization:.2f}", len(out.maximal),
        ])
    report(
        "Vertical scalability (1 machine, thread sweep)",
        ["machines", "threads", "virtual makespan", "speedup", "util", "results"],
        rows,
    )

    rows = []
    for machines in (1, 2, 4, 8, 16):
        out = run(machines, 4)
        rows.append([
            machines, 4, f"{out.makespan:,.0f}",
            f"{base.makespan / out.makespan:.2f}x",
            out.metrics.steals, len(out.maximal),
        ])
    report(
        "Horizontal scalability (4 threads/machine, machine sweep)",
        ["machines", "threads", "virtual makespan", "speedup", "steals", "results"],
        rows,
    )


if __name__ == "__main__":
    main()
