"""Query-driven community search around a vertex of interest.

The related-work mode the paper contrasts with ([25, 17, 19]): given a
query vertex (a suspect account, a gene), find the maximal
γ-quasi-cliques containing it — much cheaper than global mining since
the search space shrinks to the query's 2-hop ball.

Run:  python examples/query_vertex.py
"""

import time

from repro.core.query import best_community, mine_containing, query_candidates
from repro.datasets import build_dataset, get_dataset

DATASET = "hyves"


def main() -> None:
    spec = get_dataset(DATASET)
    pg = build_dataset(DATASET)
    graph = pg.graph
    # Use a member of a planted community as the "suspect".
    query = min(min(plant) for plant in pg.planted)
    print(f"{DATASET} analog: |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(f"query vertex: {query} "
          f"(2-hop ball: {len(query_candidates(graph, {query}))} candidates)")

    t0 = time.perf_counter()
    result = mine_containing(graph, [query], spec.gamma, spec.min_size)
    elapsed = time.perf_counter() - t0
    print(f"\n{len(result.maximal)} maximal communities containing {query} "
          f"(gamma={spec.gamma}, min_size={spec.min_size}) in {elapsed:.2f}s")
    for s in sorted(result.maximal, key=len, reverse=True)[:5]:
        print(f"  size {len(s):2d}: {sorted(s)[:12]}{' ...' if len(s) > 12 else ''}")

    best = best_community(graph, [query], spec.gamma, spec.min_size)
    if best:
        plant_hits = [i for i, p in enumerate(pg.planted) if query in p]
        print(f"\nbest community: size {len(best)}"
              + (f" (query belongs to planted core #{plant_hits[0]})"
                 if plant_hits else ""))


if __name__ == "__main__":
    main()
