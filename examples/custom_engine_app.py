"""Tutorial: writing your own G-thinker application.

The engine is generic over applications with two UDFs — exactly the
programming model of the paper's Section 5:

* ``spawn(vertex, adjacency, task_id)`` → Task | None
* ``compute(task, frontier, ctx)`` → ComputeOutcome

This walkthrough runs the bundled triangle-counting app (the paper's
introduction workload) and the max-clique app (G-thinker's flagship)
on the same dataset analog, then sketches the anatomy of a new app.

Run:  python examples/custom_engine_app.py
"""

import time

from repro.datasets import build_dataset, get_dataset
from repro.graph.stats import triangle_count
from repro.gthinker import EngineConfig
from repro.gthinker.app_maxclique import find_max_clique_parallel
from repro.gthinker.app_triangles import count_triangles_parallel

DATASET = "amazon"


def main() -> None:
    spec = get_dataset(DATASET)
    graph = build_dataset(DATASET).graph
    print(f"{DATASET} analog: |V|={graph.num_vertices} |E|={graph.num_edges}\n")

    # App 1: triangle counting — one cheap task per vertex, a job-wide
    # SumAggregator, no decomposition needed.
    t0 = time.perf_counter()
    count, metrics = count_triangles_parallel(graph, EngineConfig())
    print(f"triangles        : {count:,} in {time.perf_counter() - t0:.2f}s "
          f"({metrics.tasks_spawned} tasks)")
    assert count == triangle_count(graph)  # serial cross-check

    # App 2: maximum clique — branch and bound with a shared incumbent
    # and size-threshold decomposition of big candidate sets.
    t0 = time.perf_counter()
    clique, metrics = find_max_clique_parallel(
        graph, EngineConfig(decompose="size", tau_split=32)
    )
    print(f"maximum clique   : size {len(clique)} in {time.perf_counter() - t0:.2f}s "
          f"({metrics.tasks_spawned} tasks) → {sorted(clique)}")

    print("""
anatomy of a new app
--------------------
class MyApp:
    sink  = ResultSink()     # engine collects .results() at job end
    stats = MiningStats()    # merged into EngineMetrics

    def spawn(self, vertex, adjacency, task_id):
        # Decide whether this vertex seeds a task; list the vertex IDs
        # whose adjacency you need in task.pulls. Return None to skip.
        ...

    def compute(self, task, frontier, ctx):
        # frontier maps each pulled ID -> adjacency list. Either finish
        # (ComputeOutcome(finished=True, new_tasks=[...])) or set
        # task.pulls for another round. ctx.next_task_id() mints IDs
        # for decomposed subtasks; ComputeOutcome.cost_ops feeds the
        # simulated cluster's virtual clock.
        ...

run it with GThinkerEngine(graph, MyApp(), EngineConfig(...)).run()
""")


if __name__ == "__main__":
    main()
