"""Tests for the programmatic experiment harness."""

import pytest

from repro.bench.harness import (
    config_for,
    hyperparameter_grid,
    run_dataset,
    scalability_sweep,
)
from repro.datasets import get_dataset
from repro.gthinker.config import EngineConfig

from conftest import make_random_graph


class TestConfigFor:
    def test_carries_registered_params(self):
        spec = get_dataset("hyves")
        cfg = config_for(spec, machines=2, threads=4)
        assert cfg.tau_split == spec.tau_split
        assert cfg.tau_time == spec.tau_time_ops
        assert cfg.num_machines == 2
        assert cfg.threads_per_machine == 4

    def test_overrides(self):
        spec = get_dataset("hyves")
        cfg = config_for(spec, tau_time=123, decompose="none")
        assert cfg.tau_time == 123
        assert cfg.decompose == "none"


class TestRunDataset:
    def test_runs_small_analog(self):
        out = run_dataset("ca_grqc")
        assert len(out.maximal) > 0
        assert out.makespan > 0


class TestSweep:
    def test_scalability_sweep_shape(self):
        g = make_random_graph(40, 0.35, seed=9)
        base = EngineConfig(decompose="timed", tau_time=50, time_unit="ops", tau_split=4)
        sweep = scalability_sweep(g, 0.6, 3, [(1, 1), (1, 2), (2, 2)], base)
        assert len(sweep.points) == 3
        assert sweep.points[0].speedup == pytest.approx(1.0)
        results = {p.results for p in sweep.points}
        assert len(results) == 1, "results must be invariant across the sweep"
        for p in sweep.points[1:]:
            assert p.speedup >= 0.99  # never slower than 1x1


class TestGrid:
    def test_hyperparameter_grid_keys(self):
        grid = hyperparameter_grid(
            "cx_gse1730", tau_times=[1000.0], tau_splits=[10, 50],
            machines=1, threads=2,
        )
        assert set(grid) == {(1000.0, 10), (1000.0, 50)}
        counts = {len(v.maximal) for v in grid.values()}
        assert len(counts) == 1
