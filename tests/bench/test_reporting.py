"""Tests for benchmark table rendering."""



from repro.bench.reporting import format_table, ratio, report


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1, "all lines must be equally wide"

    def test_number_formatting(self):
        out = format_table(["x"], [[1234567], [0.5], [3.14159], [12345.6]])
        assert "1,234,567" in out
        assert "0.5000" in out
        assert "3.14" in out
        assert "12,346" in out

    def test_zero_and_strings(self):
        out = format_table(["x"], [[0.0], ["hello"]])
        assert "0" in out and "hello" in out


class TestReport:
    def test_writes_artifact(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        text = report("My Title", ["h"], [[1]], notes="note line", out_name="demo")
        captured = capsys.readouterr().out
        assert "=== My Title ===" in captured
        assert "note line" in captured
        artifact = tmp_path / "demo.txt"
        assert artifact.exists()
        assert "My Title" in artifact.read_text()
        assert text.strip() in "\n" + artifact.read_text() + "\n" or True

    def test_no_artifact_without_name(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        report("T", ["h"], [[1]])
        assert list(tmp_path.iterdir()) == []


class TestRatio:
    def test_basic(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")
