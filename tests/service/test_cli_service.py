"""serve/submit/jobs/communities CLI subcommands against a live daemon."""

import pytest

from repro.cli import main

import svc_common


@pytest.fixture
def served(tmp_path):
    """A serve subprocess plus a graph file; yields (url, graph, graph_path)."""
    g = svc_common.make_random_graph(16, 0.5, seed=5)
    graph_path = svc_common.write_edge_file(g, tmp_path / "graph.txt")
    proc = svc_common.spawn_server(tmp_path / "state", tmp_path / "svc.port")
    try:
        port = svc_common.wait_for_port(tmp_path / "svc.port")
        yield f"http://127.0.0.1:{port}", g, graph_path
    finally:
        proc.kill()
        proc.communicate(timeout=10)


class TestServiceCli:
    def test_full_session(self, served, capsys):
        url, g, graph_path = served
        want = svc_common.oracle(g, 0.75, 3)

        rc = main(["submit", "--url", url, graph_path, "--gamma", "0.75",
                   "--min-size", "3", "--label", "cli-smoke", "--wait"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "submitted job-000001" in out
        assert "state=completed" in out
        assert f"results={len(want)}" in out
        assert "label=cli-smoke" in out

        rc = main(["jobs", "--url", url])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job-000001 state=completed" in out

        rc = main(["jobs", "--url", url, "job-000001"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "progress: " in out
        assert "pending=0" in out

        rc = main(["communities", "--url", url, "job-000001"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("job-000001 query=[] count=")
        got = {frozenset(int(tok) for tok in line.split()) for line in lines[1:]}
        assert got == want

        # --vertex filters; --quiet keeps just the summary.
        some_vertex = min(min(s) for s in want)
        rc = main(["communities", "--url", url, "job-000001",
                   "--vertex", str(some_vertex), "--quiet"])
        out = capsys.readouterr().out
        assert rc == 0
        assert len(out.strip().splitlines()) == 1
        assert f"query=[{some_vertex}]" in out

    def test_submit_failure_exits_nonzero(self, served, capsys):
        url, _, _ = served
        rc = main(["submit", "--url", url, "/no/such/graph.txt",
                   "--gamma", "0.75", "--min-size", "3", "--wait"])
        assert rc == 1
        assert "state=failed" in capsys.readouterr().out

    def test_error_paths(self, served, capsys):
        url, _, _ = served
        rc = main(["communities", "--url", url, "job-000404"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "error:" in captured.err
        assert "no such job" in captured.err

    def test_unreachable_server(self, capsys):
        rc = main(["jobs", "--url", "http://127.0.0.1:1"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "error: cannot reach" in captured.err
