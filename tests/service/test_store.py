"""ResultStore: query semantics, cache behavior, index LRU."""

import os

import pytest

from repro.core.resultsio import write_results
from repro.service.store import CommunityIndex, ResultStore

COMMUNITIES = {
    frozenset({1, 2, 3, 4, 5}),
    frozenset({1, 2, 3, 6, 7}),
    frozenset({2, 3, 8}),
    frozenset({9, 10, 11}),
}


def put_result(jobs_dir, job_id, communities=COMMUNITIES):
    work_dir = os.path.join(jobs_dir, job_id)
    os.makedirs(work_dir, exist_ok=True)
    write_results(communities, os.path.join(work_dir, "result.txt"))


@pytest.fixture
def store(tmp_path):
    jobs_dir = str(tmp_path / "jobs")
    put_result(jobs_dir, "job-000001")
    return ResultStore(jobs_dir)


class TestCommunityIndex:
    def test_sorted_size_desc_then_lexicographic(self):
        idx = CommunityIndex(COMMUNITIES)
        assert idx.communities == [
            frozenset({1, 2, 3, 4, 5}),
            frozenset({1, 2, 3, 6, 7}),
            frozenset({2, 3, 8}),
            frozenset({9, 10, 11}),
        ]

    def test_containing_matches_filter(self):
        idx = CommunityIndex(COMMUNITIES)
        for query in [(), (1,), (2, 3), (1, 6), (8,), (1, 9), (99,)]:
            want = [c for c in idx.communities if set(query) <= c]
            assert idx.containing(tuple(query)) == want

    def test_duplicates_collapsed(self):
        idx = CommunityIndex(list(COMMUNITIES) * 3)
        assert len(idx.communities) == len(COMMUNITIES)


class TestResultStore:
    def test_query_and_top(self, store):
        out, hit = store.communities("job-000001", [2, 3])
        assert not hit
        assert out == [
            frozenset({1, 2, 3, 4, 5}),
            frozenset({1, 2, 3, 6, 7}),
            frozenset({2, 3, 8}),
        ]
        top, _ = store.communities("job-000001", [2, 3], top=2)
        assert top == out[:2]

    def test_absent_vertex_matches_nothing(self, store):
        out, _ = store.communities("job-000001", [12345])
        assert out == []

    def test_best(self, store):
        assert store.best("job-000001", [2, 3]) == frozenset({1, 2, 3, 4, 5})
        assert store.best("job-000001", [9]) == frozenset({9, 10, 11})
        assert store.best("job-000001", [12345]) is None

    def test_cache_hits(self, store):
        _, hit1 = store.communities("job-000001", [1], top=3)
        _, hit2 = store.communities("job-000001", [1], top=3)
        # Same query, different order/duplicates — same cache key.
        _, hit3 = store.communities("job-000001", [1, 1], top=3)
        assert (hit1, hit2, hit3) == (False, True, True)
        counters = store.counters()
        assert counters["cache_hits"] == 2
        assert counters["cache_misses"] == 1
        assert counters["index_loads"] == 1

    def test_missing_job_raises(self, store):
        with pytest.raises(KeyError):
            store.communities("job-000099")

    def test_index_lru_eviction(self, tmp_path):
        jobs_dir = str(tmp_path / "jobs")
        put_result(jobs_dir, "job-000001")
        put_result(jobs_dir, "job-000002", {frozenset({1, 2})})
        store = ResultStore(jobs_dir, max_indexes=1)
        store.communities("job-000001")
        store.communities("job-000002")  # evicts job 1's index
        assert store.counters()["index_evictions"] == 1
        assert store.counters()["indexes_loaded"] == 1
        # Evicted indexes reload transparently; their cached queries died
        # with them, so this is a fresh miss after a reload.
        out, hit = store.communities("job-000001")
        assert not hit
        assert len(out) == len(COMMUNITIES)
        assert store.counters()["index_loads"] == 3

    def test_invalidate_forces_reload(self, store):
        store.communities("job-000001", [1])
        store.invalidate("job-000001")
        _, hit = store.communities("job-000001", [1])
        assert not hit
        assert store.counters()["index_loads"] == 2

    def test_cache_disabled(self, tmp_path):
        jobs_dir = str(tmp_path / "jobs")
        put_result(jobs_dir, "job-000001")
        store = ResultStore(jobs_dir, cache_size=0)
        _, hit1 = store.communities("job-000001", [1])
        _, hit2 = store.communities("job-000001", [1])
        assert (hit1, hit2) == (False, False)
        assert store.counters()["cached_queries"] == 0

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(str(tmp_path), max_indexes=0)
