"""Shared helpers for the mining-service test suite.

Not a conftest: tests import these explicitly (``import svc_common``
resolves because pytest puts this directory on ``sys.path`` when
collecting the neighboring test modules). The top-level fixtures from
``tests/conftest.py`` still apply.
"""

from __future__ import annotations

import contextlib
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.miner import mine_maximal_quasicliques
from repro.graph.adjacency import Graph
from repro.service.client import ServiceClient
from repro.service.server import MiningService, build_server

from conftest import make_random_graph

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def edges_payload(g: Graph) -> dict:
    """Inline-edges submit fields for `g` (isolated vertices included)."""
    return {
        "edges": [[u, v] for u, v in g.edges()],
        "vertices": sorted(g.vertices()),
    }


def small_job(seed: int = 5, gamma: float = 0.75, min_size: int = 3,
              n: int = 14, p: float = 0.5, **extra) -> tuple[Graph, dict]:
    """A small deterministic graph plus its inline submit payload."""
    g = make_random_graph(n, p, seed)
    spec = {"gamma": gamma, "min_size": min_size, **edges_payload(g), **extra}
    return g, spec


def oracle(g: Graph, gamma: float, min_size: int) -> set[frozenset[int]]:
    """Serial single-process ground truth for a job over `g`."""
    return mine_maximal_quasicliques(g, gamma, min_size).maximal


def as_sets(communities: list[list[int]]) -> set[frozenset[int]]:
    """JSON community rows → comparable set-of-frozensets."""
    return {frozenset(c) for c in communities}


def write_edge_file(g: Graph, path) -> str:
    """Persist `g` as the whitespace edge-list format the CLI reads."""
    with open(path, "w") as f:
        f.write("# test graph\n")
        for u, v in sorted(g.edges()):
            f.write(f"{u} {v}\n")
    return str(path)


def spawn_server(root, port_file, *extra_args) -> subprocess.Popen:
    """``quasiclique-mine serve`` in a killable child process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--root", str(root),
         "--port", "0", "--port-file", str(port_file), *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def wait_for_port(port_file, timeout: float = 30.0) -> int:
    """Block until the serve subprocess publishes its bound port."""
    deadline = time.monotonic() + timeout
    path = Path(port_file)
    while time.monotonic() < deadline:
        if path.is_file():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.02)
    raise AssertionError(f"port file {port_file} never appeared")


@contextlib.contextmanager
def live_service(root, **kwargs):
    """An in-process daemon on an ephemeral port, torn down on exit."""
    service = MiningService(str(root), **kwargs)
    service.recover_and_start()
    httpd = build_server(service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        port = httpd.server_address[1]
        yield service, ServiceClient(f"http://127.0.0.1:{port}")
    finally:
        httpd.shutdown()
        service.shutdown()
        thread.join(timeout=10)
