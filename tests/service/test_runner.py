"""run_checkpointed: oracle parity at every chunk size, resume, backends."""

import pytest

from repro.core.miner import mine_maximal_quasicliques
from repro.graph.adjacency import Graph
from repro.gthinker.config import EngineConfig
from repro.service.runner import run_checkpointed

from conftest import make_random_graph


class TestOracleParity:
    @pytest.mark.parametrize("chunk_roots", [1, 3, 100])
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_serial_oracle(self, tmp_path, seed, chunk_roots):
        g = make_random_graph(12, 0.5, seed=seed)
        out = run_checkpointed(
            g, 0.75, 3, work_dir=str(tmp_path), chunk_roots=chunk_roots
        )
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert out.completed
        assert out.maximal == want
        assert out.roots_done == out.roots_total
        assert out.roots_recovered == 0

    def test_min_size_one_keeps_isolated_vertices(self, tmp_path):
        g = Graph.from_edges([(0, 1)], vertices=range(3))
        out = run_checkpointed(g, 1.0, 1, work_dir=str(tmp_path), chunk_roots=1)
        assert out.maximal == {frozenset({0, 1}), frozenset({2})}

    def test_threaded_backend(self, tmp_path):
        g = make_random_graph(14, 0.5, seed=4)
        config = EngineConfig.from_payload(
            {"backend": "threaded", "threads_per_machine": 2}
        )
        out = run_checkpointed(
            g, 0.75, 3, config, work_dir=str(tmp_path), chunk_roots=4
        )
        assert out.maximal == mine_maximal_quasicliques(g, 0.75, 3).maximal


class TestResume:
    def test_stop_then_resume(self, tmp_path):
        g = make_random_graph(16, 0.5, seed=3)
        calls = {"n": 0}

        def stop_after_two_chunks():
            calls["n"] += 1
            return calls["n"] > 2

        first = run_checkpointed(
            g, 0.75, 3, work_dir=str(tmp_path), chunk_roots=2,
            should_stop=stop_after_two_chunks,
        )
        assert not first.completed
        assert 0 < first.roots_done < first.roots_total
        assert first.maximal == set()  # partial runs never claim results

        second = run_checkpointed(
            g, 0.75, 3, work_dir=str(tmp_path), chunk_roots=2
        )
        assert second.completed
        assert second.roots_recovered == first.roots_done
        assert second.roots_done == second.roots_total
        assert second.maximal == mine_maximal_quasicliques(g, 0.75, 3).maximal

    def test_rerun_after_completion_is_noop(self, tmp_path):
        g = make_random_graph(12, 0.5, seed=6)
        first = run_checkpointed(g, 0.75, 3, work_dir=str(tmp_path))
        again = run_checkpointed(g, 0.75, 3, work_dir=str(tmp_path))
        assert again.completed
        assert again.roots_recovered == again.roots_total == first.roots_total
        assert again.metrics.tasks_executed == 0  # nothing re-mined
        assert again.maximal == first.maximal

    def test_no_duplicate_candidates_across_resume(self, tmp_path):
        g = make_random_graph(14, 0.55, seed=7)
        run_checkpointed(
            g, 0.75, 3, work_dir=str(tmp_path), chunk_roots=2,
            should_stop=lambda c=iter([False, False, True, True, True]): next(c),
        )
        run_checkpointed(g, 0.75, 3, work_dir=str(tmp_path), chunk_roots=2)
        lines = (tmp_path / "candidates.txt").read_text().splitlines()
        assert len(lines) == len(set(lines))


class TestProgressAndValidation:
    def test_progress_snapshots(self, tmp_path):
        g = make_random_graph(12, 0.5, seed=2)
        snaps = []
        out = run_checkpointed(
            g, 0.75, 3, work_dir=str(tmp_path), chunk_roots=2,
            on_progress=snaps.append,
        )
        assert snaps[0].tasks_done == 0
        assert snaps[-1].tasks_done == out.roots_total
        assert snaps[-1].tasks_pending == snaps[-1].tasks_leased == 0
        dones = [s.tasks_done for s in snaps]
        assert dones == sorted(dones)
        for s in snaps:
            assert s.tasks_done + s.tasks_pending + s.tasks_leased == out.roots_total

    def test_chunk_roots_validated(self, tmp_path):
        g = make_random_graph(6, 0.5, seed=1)
        with pytest.raises(ValueError, match="chunk_roots"):
            run_checkpointed(g, 0.75, 3, work_dir=str(tmp_path), chunk_roots=0)
