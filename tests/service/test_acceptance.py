"""The issue's end-to-end acceptance scenario.

Four concurrent clients submit jobs and issue community queries
against a live server subprocess; the server is then SIGKILLed while a
long job is mid-run and restarted on the same state directory. The
restarted daemon must resume the interrupted job from its checkpoint,
and every completed job's result set must equal the serial oracle
exactly — including the jobs completed before the crash, whose results
are served from disk by the fresh process.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.miner import mine_maximal_quasicliques
from repro.graph.generators import planted_quasicliques
from repro.service.client import ServiceClient, ServiceError

import svc_common

#: The long job: big enough that mining takes seconds (169 spawn roots
#: at ~35 ms each), so the kill lands mid-run with wide margin.
BIG = dict(n=600, avg_degree=10.0, num_plants=8, plant_size=16, gamma=0.8, seed=7)
BIG_GAMMA, BIG_MIN_SIZE = 0.8, 11


def poll_until(fn, timeout=60.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        out = fn()
        if out:
            return out
        time.sleep(poll)
    raise AssertionError("condition never became true")


@pytest.mark.slow
class TestServiceAcceptance:
    def test_concurrent_clients_kill_nine_resume_oracle(self, tmp_path):
        big_graph = planted_quasicliques(**BIG).graph
        big_path = svc_common.write_edge_file(big_graph, tmp_path / "big.txt")
        big_want = mine_maximal_quasicliques(
            big_graph, BIG_GAMMA, BIG_MIN_SIZE
        ).maximal
        assert big_want, "acceptance instance must have communities"

        root = tmp_path / "state"
        proc = svc_common.spawn_server(root, tmp_path / "port1")
        port = svc_common.wait_for_port(tmp_path / "port1")
        url = f"http://127.0.0.1:{port}"

        # --- Phase 1: 4 concurrent clients submit + query ----------------
        outcomes: dict[int, tuple] = {}
        failures: list[BaseException] = []

        def client_session(i: int) -> None:
            try:
                client = ServiceClient(url)
                g, spec = svc_common.small_job(seed=20 + i, n=13,
                                               label=f"client-{i}")
                doc = client.wait(client.submit(spec)["id"], timeout=120)
                assert doc["state"] == "completed", doc
                want = svc_common.oracle(g, 0.75, 3)
                got = client.communities(doc["id"])
                assert svc_common.as_sets(got["communities"]) == want
                if want:
                    v = min(min(s) for s in want)
                    best = client.best(doc["id"], [v])
                    assert frozenset(best) in want
                outcomes[i] = (doc["id"], want)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=client_session, args=(i,))
                   for i in range(4)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not failures, failures
            assert len(outcomes) == 4

            # --- Phase 2: kill -9 mid-job --------------------------------
            client = ServiceClient(url)
            big_id = client.submit({
                "gamma": BIG_GAMMA, "min_size": BIG_MIN_SIZE,
                "graph_path": big_path, "chunk_roots": 2, "label": "big",
            })["id"]
            doc = poll_until(lambda: (
                lambda d: d if 0 < d["roots_done"] < d["roots_total"] else None
            )(client.job(big_id)))
            assert doc["state"] == "running"
            os.kill(proc.pid, signal.SIGKILL)
            proc.communicate(timeout=30)
            assert proc.returncode == -signal.SIGKILL
            with pytest.raises(ServiceError) as err:
                client.job(big_id)
            assert err.value.status == 0  # connection-level failure
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        # --- Phase 3: restart on the same root, resume, verify -----------
        proc2 = svc_common.spawn_server(root, tmp_path / "port2")
        try:
            port2 = svc_common.wait_for_port(tmp_path / "port2")
            client = ServiceClient(f"http://127.0.0.1:{port2}")
            doc = client.wait(big_id, timeout=180, poll=0.1)
            assert doc["state"] == "completed", doc
            assert doc["resumed"] is True
            assert doc["roots_done"] == doc["roots_total"]

            # The serve banner reported the requeued job.
            banner = proc2.stdout.readline()
            assert "resumed=1" in banner

            # The interrupted job's results equal the serial oracle.
            got = client.communities(big_id)
            assert svc_common.as_sets(got["communities"]) == big_want
            assert doc["results"] == len(big_want)

            # Pre-crash jobs survive the restart byte-for-byte: the new
            # process serves their results from disk.
            for job_id, want in outcomes.values():
                doc = client.job(job_id)
                assert doc["state"] == "completed"
                got = client.communities(job_id)
                assert svc_common.as_sets(got["communities"]) == want

            health = client.healthz()
            assert health["jobs"]["completed"] == 5
            assert health["jobs"]["failed"] == 0
        finally:
            proc2.kill()
            proc2.communicate(timeout=10)
