"""JobManager: admission, lifecycle, cancellation, crash recovery."""

import json
import os
import time

import pytest

from repro.core.resultsio import read_results
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    JobManager,
    JobSpec,
    ServiceError,
)

import svc_common


@pytest.fixture
def make_manager(tmp_path):
    managers = []

    def make(root=None, start=True, **kwargs):
        m = JobManager(str(root or tmp_path / "svc"), **kwargs)
        managers.append(m)
        if start:
            m.start()
        return m

    yield make
    for m in managers:
        m.shutdown(wait=True, timeout=5)


@pytest.fixture
def slow_roots(monkeypatch):
    """Throttle root expansion so jobs stay observable mid-run."""
    import repro.service.runner as runner_mod

    real = runner_mod.spawn_subgraph

    def slow(base, root, k):
        time.sleep(0.03)
        return real(base, root, k)

    monkeypatch.setattr(runner_mod, "spawn_subgraph", slow)


def wait_for(predicate, timeout=20.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition never became true")


class TestJobSpecValidation:
    BAD = [
        (["not", "a", "dict"], "JSON object"),
        ({"gamma": 0.9, "min_size": 3, "bogus": 1, "edges": [[0, 1]]}, "unknown job fields: bogus"),
        ({"min_size": 3, "edges": [[0, 1]]}, "missing required field 'gamma'"),
        ({"gamma": 0.9, "edges": [[0, 1]]}, "missing required field 'min_size'"),
        ({"gamma": 0.0, "min_size": 3, "edges": [[0, 1]]}, "gamma must be in"),
        ({"gamma": 1.5, "min_size": 3, "edges": [[0, 1]]}, "gamma must be in"),
        ({"gamma": 0.9, "min_size": 0, "edges": [[0, 1]]}, "min_size must be"),
        ({"gamma": 0.9, "min_size": 3}, "exactly one graph source"),
        ({"gamma": 0.9, "min_size": 3, "edges": [[0, 1]], "dataset": "gse"},
         "exactly one graph source"),
        ({"gamma": 0.9, "min_size": 3, "dataset": "no-such-set"}, "unknown dataset"),
        ({"gamma": 0.9, "min_size": 3, "edges": [[0, 1, 2]]}, "integer pairs"),
        ({"gamma": 0.9, "min_size": 3, "edges": "0 1"}, "integer pairs"),
        ({"gamma": 0.9, "min_size": 3, "graph_path": "/g", "vertices": [0]},
         "only valid with inline edges"),
        ({"gamma": 0.9, "min_size": 3, "edges": [[0, 1]],
          "engine": {"no_such_knob": 1}}, "bad engine config"),
        ({"gamma": 0.9, "min_size": 3, "edges": [[0, 1]], "chunk_roots": 0},
         "chunk_roots must be"),
    ]

    @pytest.mark.parametrize("payload,match", BAD)
    def test_rejected(self, payload, match):
        with pytest.raises(ServiceError, match=match) as err:
            JobSpec.parse(payload)
        assert err.value.status == 400

    def test_roundtrip(self):
        payload = {
            "gamma": 0.8, "min_size": 4, "edges": [[0, 1], [1, 2]],
            "vertices": [0, 1, 2, 3], "engine": {"backend": "threaded"},
            "chunk_roots": 7, "label": "x",
        }
        spec = JobSpec.parse(payload)
        assert JobSpec.parse(spec.to_payload()) == spec
        g = spec.build_graph()
        assert set(g.vertices()) == {0, 1, 2, 3}


class TestExecution:
    def test_submit_completes_and_persists(self, make_manager):
        manager = make_manager()
        g, spec = svc_common.small_job(seed=5)
        doc = manager.submit(spec)
        assert doc["id"] == "job-000001"
        assert doc["state"] == PENDING
        doc = manager.wait(doc["id"])
        want = svc_common.oracle(g, 0.75, 3)
        assert doc["state"] == COMPLETED
        assert doc["results"] == len(want)
        assert doc["roots_done"] == doc["roots_total"]

        work_dir = os.path.join(manager.jobs_dir, doc["id"])
        assert read_results(os.path.join(work_dir, "result.txt")) == want
        with open(os.path.join(work_dir, "job.json")) as f:
            durable = json.load(f)
        assert durable["state"] == COMPLETED
        with open(os.path.join(work_dir, "metrics.json")) as f:
            metrics = json.load(f)
        assert metrics["results"] == len(want)
        assert "task_records" not in metrics

    def test_fifo_single_slot(self, make_manager, slow_roots):
        manager = make_manager(max_running=1, chunk_roots=4)
        ids = [manager.submit(svc_common.small_job(seed=s)[1])["id"]
               for s in (1, 2, 3)]
        docs = [manager.wait(j, timeout=60) for j in ids]
        assert all(d["state"] == COMPLETED for d in docs)
        # One slot: each job starts only after its predecessor finished.
        for prev, nxt in zip(docs, docs[1:]):
            assert nxt["started"] >= prev["finished"] - 1e-6

    def test_cancel_pending(self, make_manager, slow_roots):
        manager = make_manager(max_running=1, chunk_roots=1)
        blocker = manager.submit(svc_common.small_job(seed=1)[1])
        queued = manager.submit(svc_common.small_job(seed=2)[1])
        doc = manager.cancel(queued["id"])
        assert doc["state"] == CANCELLED
        assert manager.wait(blocker["id"], timeout=60)["state"] == COMPLETED
        assert manager.get(queued["id"])["state"] == CANCELLED

    def test_cancel_running_at_chunk_boundary(self, make_manager, slow_roots):
        manager = make_manager(max_running=1, chunk_roots=1)
        job_id = manager.submit(svc_common.small_job(seed=3, n=16)[1])["id"]
        wait_for(lambda: manager.get(job_id)["roots_done"] >= 1)
        assert manager.get(job_id)["state"] == RUNNING
        manager.cancel(job_id)
        doc = manager.wait(job_id, timeout=60)
        assert doc["state"] == CANCELLED
        assert doc["roots_done"] < doc["roots_total"]
        # The checkpoint survives a cancellation.
        work_dir = os.path.join(manager.jobs_dir, job_id)
        assert os.path.isfile(os.path.join(work_dir, "roots.journal"))

    def test_failed_job_captures_error(self, make_manager, tmp_path):
        manager = make_manager()
        doc = manager.submit({
            "gamma": 0.9, "min_size": 3,
            "graph_path": str(tmp_path / "does-not-exist.txt"),
        })
        doc = manager.wait(doc["id"])
        assert doc["state"] == FAILED
        assert "graph file not found" in doc["error"]

    def test_unknown_job(self, make_manager):
        manager = make_manager()
        with pytest.raises(ServiceError) as err:
            manager.get("job-999999")
        assert err.value.status == 404

    def test_merged_metrics_aggregates(self, make_manager):
        manager = make_manager()
        g, spec = svc_common.small_job(seed=8)
        manager.wait(manager.submit(spec)["id"])
        merged = manager.merged_metrics()
        assert merged["results"] == len(svc_common.oracle(g, 0.75, 3))
        assert "task_records" not in merged


class TestRecovery:
    def test_pending_job_requeued_on_restart(self, make_manager, tmp_path):
        root = tmp_path / "svc"
        first = make_manager(root=root, start=False)
        g, spec = svc_common.small_job(seed=9)
        job_id = first.submit(spec)["id"]
        # Daemon "dies" before any worker picks the job up.
        second = make_manager(root=root, start=False)
        assert second.recover() == [job_id]
        second.start()
        doc = second.wait(job_id, timeout=60)
        assert doc["state"] == COMPLETED
        work_dir = os.path.join(second.jobs_dir, job_id)
        assert read_results(os.path.join(work_dir, "result.txt")) == \
            svc_common.oracle(g, 0.75, 3)
        # IDs keep counting up after recovery — no reuse.
        assert second.submit(svc_common.small_job(seed=10)[1])["id"] == "job-000002"

    def test_interrupted_running_job_resumes(self, make_manager, slow_roots, tmp_path):
        root = tmp_path / "svc"
        first = make_manager(root=root, chunk_roots=1)
        g, spec = svc_common.small_job(seed=11, n=16)
        job_id = first.submit(spec)["id"]
        wait_for(lambda: first.get(job_id)["roots_done"] >= 2)
        # Simulated crash: stop the workers; the durable state stays
        # "running", exactly what a kill -9 leaves behind.
        first.shutdown(wait=True, timeout=30)
        with open(os.path.join(first.jobs_dir, job_id, "job.json")) as f:
            assert json.load(f)["state"] == RUNNING

        second = make_manager(root=root, chunk_roots=1)
        assert second.recover() == [job_id]
        doc = second.wait(job_id, timeout=60)
        assert doc["state"] == COMPLETED
        assert doc["resumed"] is True
        assert read_results(os.path.join(second.jobs_dir, job_id, "result.txt")) == \
            svc_common.oracle(g, 0.75, 3)

    def test_terminal_jobs_not_requeued(self, make_manager, tmp_path):
        root = tmp_path / "svc"
        first = make_manager(root=root)
        job_id = first.submit(svc_common.small_job(seed=12)[1])["id"]
        first.wait(job_id)
        first.shutdown(wait=True, timeout=5)
        second = make_manager(root=root, start=False)
        assert second.recover() == []
        assert second.get(job_id)["state"] == COMPLETED
