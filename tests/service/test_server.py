"""HTTP API round trips, error envelopes, and query parity."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.query import best_community, mine_containing
from repro.service.client import ServiceError

import svc_common


@pytest.fixture
def live(tmp_path):
    with svc_common.live_service(tmp_path / "state") as (service, client):
        yield service, client


def submit_and_wait(client, spec, timeout=60.0):
    doc = client.submit(spec)
    return client.wait(doc["id"], timeout=timeout)


class TestJobEndpoints:
    def test_submit_poll_complete(self, live):
        _, client = live
        g, spec = svc_common.small_job(seed=5, label="round-trip")
        doc = client.submit(spec)
        assert doc["state"] in ("pending", "running")
        doc = client.wait(doc["id"])
        want = svc_common.oracle(g, 0.75, 3)
        assert doc["state"] == "completed"
        assert doc["results"] == len(want)
        assert doc["label"] == "round-trip"
        # The progress block follows the obs ProgressSnapshot contract.
        progress = doc["progress"]
        assert progress["tasks_done"] == doc["roots_total"]
        assert progress["tasks_pending"] == 0
        assert progress["workers_alive"] == 1

    def test_list_jobs(self, live):
        _, client = live
        ids = {submit_and_wait(client, svc_common.small_job(seed=s)[1])["id"]
               for s in (1, 2)}
        assert {d["id"] for d in client.jobs()} == ids

    def test_cancel_pending_job(self, live, monkeypatch):
        _, client = live
        import repro.service.runner as runner_mod
        real = runner_mod.spawn_subgraph

        def slow(base, root, k):
            time.sleep(0.03)
            return real(base, root, k)

        monkeypatch.setattr(runner_mod, "spawn_subgraph", slow)
        # Fill both worker slots, then queue a third job and cancel it.
        blockers = [client.submit(svc_common.small_job(seed=s, n=16,
                                                       chunk_roots=1)[1])
                    for s in (1, 2)]
        queued = client.submit(svc_common.small_job(seed=3)[1])
        doc = client.cancel(queued["id"])
        assert doc["state"] == "cancelled"
        for b in blockers:
            client.cancel(b["id"])
            client.wait(b["id"])


class TestResultEndpoints:
    def test_communities_parity_with_query_module(self, live):
        _, client = live
        g, spec = svc_common.small_job(seed=6, n=12)
        job_id = submit_and_wait(client, spec)["id"]
        want_all = svc_common.oracle(g, 0.75, 3)

        doc = client.communities(job_id)
        assert svc_common.as_sets(doc["communities"]) == want_all
        assert doc["count"] == len(want_all)

        # Per-vertex parity with mine_containing / best_community.
        for v in sorted(g.vertices())[:6]:
            doc = client.communities(job_id, [v])
            want = {s for s in want_all if v in s}
            assert svc_common.as_sets(doc["communities"]) == want
            got_best = client.best(job_id, [v])
            if want:
                assert mine_containing(g, [v], 0.75, 3).maximal == want
                assert frozenset(got_best) == best_community(g, [v], 0.75, 3)
            else:
                assert got_best is None

    def test_top_k_is_size_ordered(self, live):
        _, client = live
        g, spec = svc_common.small_job(seed=7)
        job_id = submit_and_wait(client, spec)["id"]
        doc = client.communities(job_id, top=3)
        sizes = [len(c) for c in doc["communities"]]
        assert sizes == sorted(sizes, reverse=True)
        assert doc["count"] <= 3

    def test_cache_hit_on_repeat(self, live):
        _, client = live
        job_id = submit_and_wait(client, svc_common.small_job(seed=8)[1])["id"]
        first = client.communities(job_id, [0], top=2)
        second = client.communities(job_id, [0], top=2)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["communities"] == second["communities"]

    def test_query_before_completion_conflicts(self, live, monkeypatch):
        _, client = live
        import repro.service.runner as runner_mod
        real = runner_mod.spawn_subgraph

        def slow(base, root, k):
            time.sleep(0.03)
            return real(base, root, k)

        monkeypatch.setattr(runner_mod, "spawn_subgraph", slow)
        doc = client.submit(svc_common.small_job(seed=9, n=16, chunk_roots=1)[1])
        with pytest.raises(ServiceError) as err:
            client.communities(doc["id"])
        assert err.value.status == 409
        client.cancel(doc["id"])
        client.wait(doc["id"])


class TestErrors:
    def test_unknown_job_404(self, live):
        _, client = live
        for call in (lambda: client.job("job-000404"),
                     lambda: client.cancel("job-000404"),
                     lambda: client.communities("job-000404")):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == 404

    def test_unknown_route_404(self, live):
        _, client = live
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/no/such/route")
        assert err.value.status == 404
        assert "no route" in err.value.message

    def test_bad_submit_body_400(self, live):
        _, client = live
        with pytest.raises(ServiceError) as err:
            client.submit({"gamma": 0.9})
        assert err.value.status == 400
        req = urllib.request.Request(
            client.base_url + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as http_err:
            urllib.request.urlopen(req, timeout=10)
        envelope = json.loads(http_err.value.read())
        assert envelope["error"]["status"] == 400
        assert "bad JSON body" in envelope["error"]["message"]

    def test_bad_query_param_400(self, live):
        _, client = live
        job_id = submit_and_wait(client, svc_common.small_job(seed=4)[1])["id"]
        with pytest.raises(ServiceError) as err:
            client._request("GET", f"/results/{job_id}/communities?vertex=abc")
        assert err.value.status == 400

    def test_unreachable_server(self):
        from repro.service.client import ServiceClient
        client = ServiceClient("http://127.0.0.1:1", timeout=2.0)
        with pytest.raises(ServiceError) as err:
            client.healthz()
        assert err.value.status == 0


class TestIntrospection:
    def test_healthz(self, live):
        _, client = live
        submit_and_wait(client, svc_common.small_job(seed=2)[1])
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["uptime_seconds"] >= 0
        assert doc["jobs"]["completed"] == 1
        assert set(doc["jobs"]) == {
            "pending", "running", "completed", "failed", "cancelled"
        }

    def test_metricsz(self, live):
        _, client = live
        g, spec = svc_common.small_job(seed=3)
        job_id = submit_and_wait(client, spec)["id"]
        client.communities(job_id)
        client.communities(job_id)
        doc = client.metricsz()
        assert doc["service"]["jobs"]["completed"] == 1
        assert doc["service"]["store"]["cache_hits"] == 1
        assert doc["service"]["requests_served"] > 0
        assert doc["engine"]["results"] == len(svc_common.oracle(g, 0.75, 3))
        assert "task_records" not in doc["engine"]
