"""End-to-end engine tests: oracle equivalence across every configuration."""

import random

import pytest

from repro.core.naive import enumerate_maximal_quasicliques
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel

from conftest import GAMMAS, make_random_graph


def oracle(g, gamma, min_size):
    return enumerate_maximal_quasicliques(g, gamma, min_size)


class TestSerialEngine:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(4, 11), rng.uniform(0.3, 0.8), seed=seed + 19)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(1, 4)
        out = mine_parallel(g, gamma, min_size, EngineConfig(decompose="none"))
        assert out.maximal == oracle(g, gamma, min_size)

    def test_metrics_populated(self):
        g = make_random_graph(12, 0.5, seed=3)
        out = mine_parallel(g, 0.75, 3, EngineConfig(decompose="none"))
        m = out.metrics
        assert m.tasks_spawned > 0
        assert m.tasks_executed > 0
        assert m.total_mining_ops > 0
        assert m.wall_seconds > 0
        assert m.results == len(out.maximal)


class TestDecompositionModes:
    @pytest.mark.parametrize(
        "config",
        [
            EngineConfig(decompose="size", tau_split=2),
            EngineConfig(decompose="size", tau_split=5),
            EngineConfig(decompose="timed", tau_time=0, time_unit="ops", tau_split=2),
            EngineConfig(decompose="timed", tau_time=8, time_unit="ops", tau_split=3),
            EngineConfig(decompose="timed", tau_time=100, time_unit="ops", tau_split=8),
        ],
        ids=["size2", "size5", "timed0", "timed8", "timed100"],
    )
    @pytest.mark.parametrize("seed", range(5))
    def test_decomposition_preserves_results(self, config, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(5, 11), rng.uniform(0.35, 0.8), seed=seed + 3)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(2, 4)
        out = mine_parallel(g, gamma, min_size, config)
        assert out.maximal == oracle(g, gamma, min_size)

    def test_aggressive_decomposition_creates_subtasks(self):
        g = make_random_graph(14, 0.6, seed=7)
        out = mine_parallel(
            g, 0.6, 3, EngineConfig(decompose="timed", tau_time=0, time_unit="ops", tau_split=2)
        )
        assert out.metrics.subtasks_created > 0
        assert out.metrics.tasks_decomposed > 0


class TestThreadedEngine:
    @pytest.mark.parametrize("machines,threads", [(1, 2), (2, 1), (2, 2), (3, 2)])
    def test_matches_oracle(self, machines, threads):
        rng = random.Random(machines * 10 + threads)
        g = make_random_graph(11, 0.55, seed=machines + threads)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(2, 4)
        config = EngineConfig(
            num_machines=machines,
            threads_per_machine=threads,
            decompose="timed",
            tau_time=10,
            time_unit="ops",
            tau_split=3,
            steal_period_seconds=0.005,
        )
        out = mine_parallel(g, gamma, min_size, config)
        assert out.maximal == oracle(g, gamma, min_size)

    def test_remote_messages_counted(self):
        g = make_random_graph(16, 0.5, seed=4)
        out = mine_parallel(
            g, 0.6, 3, EngineConfig(num_machines=4, decompose="none")
        )
        assert out.metrics.remote_messages > 0


class TestSpillPath:
    def test_tiny_queues_force_spilling(self):
        g = make_random_graph(16, 0.6, seed=11)
        config = EngineConfig(
            decompose="timed",
            tau_time=0,
            time_unit="ops",
            tau_split=1,
            queue_capacity=2,
            batch_size=2,
        )
        out = mine_parallel(g, 0.6, 3, config)
        assert out.maximal == oracle(g, 0.6, 3)
        assert out.metrics.spill_batches > 0
        assert out.metrics.spill_bytes > 0


class TestReforgeAblation:
    def test_no_global_queue_still_correct(self):
        g = make_random_graph(12, 0.55, seed=9)
        config = EngineConfig(
            decompose="timed", tau_time=5, time_unit="ops", tau_split=2,
            use_global_queue=False,
        )
        out = mine_parallel(g, 0.75, 3, config)
        assert out.maximal == oracle(g, 0.75, 3)


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.graph.adjacency import Graph

        out = mine_parallel(Graph(), 0.9, 3, EngineConfig())
        assert out.maximal == set()

    def test_min_size_one(self):
        from repro.graph.adjacency import Graph

        g = Graph.from_edges([(0, 1)], vertices=range(3))
        out = mine_parallel(g, 1.0, 1, EngineConfig())
        assert out.maximal == {frozenset({0, 1}), frozenset({2})}

    def test_wall_clock_budget_mode(self):
        g = make_random_graph(12, 0.5, seed=6)
        config = EngineConfig(decompose="timed", tau_time=0.001, time_unit="wall")
        out = mine_parallel(g, 0.75, 3, config)
        assert out.maximal == oracle(g, 0.75, 3)
