"""Failure-injection tests: the engine must fail loudly, never silently."""

import pickle

import pytest

from repro.gthinker.spill import SpillFileList
from repro.gthinker.task import Task


def make_tasks(n):
    return [Task(task_id=i, root=i, iteration=3) for i in range(n)]


def frame(payload: bytes) -> bytes:
    """Wrap raw bytes in the spill files' length header."""
    import struct

    return struct.pack("<Q", len(payload)) + payload


class TestSpillCorruption:
    def test_truncated_file_skipped_with_warning(self, tmp_path):
        # A writer dying mid-write (killed worker process, full disk)
        # leaves a payload shorter than its header claims; that batch is
        # lost but the run must continue — loudly, not silently.
        spill = SpillFileList(str(tmp_path), "x")
        path = spill.spill(make_tasks(3))
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.warns(RuntimeWarning, match="truncated"):
            assert spill.load_batch() == []
        assert spill.batches_skipped == 1

    def test_garbage_file_raises(self, tmp_path):
        # A complete-per-its-header but unpicklable payload is real
        # corruption, not a torn write: still fatal.
        spill = SpillFileList(str(tmp_path), "x")
        path = spill.spill(make_tasks(2))
        open(path, "wb").write(frame(b"not a pickle at all"))
        with pytest.raises(RuntimeError, match="corrupted"):
            spill.load_batch()

    def test_wrong_payload_raises(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "x")
        path = spill.spill(make_tasks(2))
        open(path, "wb").write(frame(pickle.dumps({"not": "tasks"})))
        with pytest.raises(RuntimeError, match="did not decode"):
            spill.load_batch()

    def test_deleted_file_skipped_with_warning(self, tmp_path):
        import os

        spill = SpillFileList(str(tmp_path), "x")
        path = spill.spill(make_tasks(2))
        os.remove(path)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert spill.load_batch() == []
        assert spill.batches_skipped == 1

    def test_healthy_file_still_loads(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "x")
        spill.spill(make_tasks(4))
        assert len(spill.load_batch()) == 4
