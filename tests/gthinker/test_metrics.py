"""Tests for engine metrics accounting and evaluation-facing views."""

import pytest

from repro.gthinker.metrics import EngineMetrics, TaskRecord


def record(task_id=0, root=0, gen=0, nv=10, ne=20, mine_s=1.0, mine_ops=100,
           mat_s=0.1, mat_ops=10, subs=0):
    return TaskRecord(
        task_id=task_id, root=root, generation=gen,
        subgraph_vertices=nv, subgraph_edges=ne,
        mining_seconds=mine_s, mining_ops=mine_ops,
        materialize_seconds=mat_s, materialize_ops=mat_ops,
        subtasks_created=subs,
    )


class TestRecordTask:
    def test_accumulates(self):
        m = EngineMetrics()
        m.record_task(record(mine_ops=100, mat_ops=10, subs=2))
        m.record_task(record(task_id=1, mine_ops=50, mat_ops=0, subs=0))
        assert m.tasks_executed == 2
        assert m.total_mining_ops == 150
        assert m.total_materialize_ops == 10
        assert m.subtasks_created == 2
        assert m.tasks_decomposed == 1

    def test_ratio(self):
        m = EngineMetrics()
        m.record_task(record(mine_ops=280, mat_ops=1))
        assert m.mining_vs_materialization_ratio() == pytest.approx(280.0)
        empty = EngineMetrics()
        assert empty.mining_vs_materialization_ratio() == float("inf")


class TestViews:
    def test_per_root_times(self):
        m = EngineMetrics()
        m.record_task(record(task_id=0, root=5, mine_s=1.0))
        m.record_task(record(task_id=1, root=5, mine_s=0.5))
        m.record_task(record(task_id=2, root=7, mine_s=2.0))
        times = m.per_root_times()
        assert times[5] == pytest.approx(1.5)
        assert times[7] == pytest.approx(2.0)

    def test_top_task_times(self):
        m = EngineMetrics()
        for i, s in enumerate([0.1, 5.0, 2.0, 0.3]):
            m.record_task(record(task_id=i, mine_s=s))
        assert m.top_task_times(2) == [5.0, 2.0]
        assert m.top_task_times(10) == [5.0, 2.0, 0.3, 0.1]

    def test_size_time_pairs(self):
        m = EngineMetrics()
        m.record_task(record(nv=12, mine_s=3.0))
        assert m.size_time_pairs() == [(12, 3.0)]


class TestMerge:
    def test_merge_sums_and_maxes(self):
        a = EngineMetrics(tasks_spawned=2, spill_bytes_peak=100, peak_pending_tasks=5)
        b = EngineMetrics(tasks_spawned=3, spill_bytes_peak=400, peak_pending_tasks=2)
        b.record_task(record())
        a.merge(b)
        assert a.tasks_spawned == 5
        assert a.spill_bytes_peak == 400
        assert a.peak_pending_tasks == 5
        assert a.tasks_executed == 1
        assert len(a.task_records) == 1
