"""The GraphAccess seam: one interface from TaskDomain to the wire.

Three properties pin the distributed vertex store's foundation:

1. **exactly-one-owner** — every partitioning strategy assigns each
   vertex to exactly one partition, for any worker count;
2. **owner stability** — `owner_of` is a pure function of (vertex,
   num_partitions): re-partitioning with the same count reassigns
   nothing, which is what lets a rejoining worker reuse a partition;
3. **access equivalence** — a `RemoteGraphAccess` whose fetches are
   served faithfully (fault-free `admit` of whatever `unresolved`
   lists) answers every read exactly like `InMemoryGraphAccess` over
   the whole graph. This is the property the cluster's oracle-equality
   tests inherit.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.access import GraphAccess, InMemoryGraphAccess
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.gthinker.partition import make_partitioner
from repro.gthinker.vertex_store import (
    DataService,
    LocalVertexTable,
    RemoteGraphAccess,
    RemoteVertexCache,
    SharedGraphAccess,
    owner_of,
)

from conftest import make_random_graph

STRATEGIES = ("hash", "range", "balanced_degree")


class TestProtocolConformance:
    def test_all_implementations_satisfy_graph_access(self):
        g = make_random_graph(8, 0.5, seed=1)
        tables = LocalVertexTable.partition(g, 2)
        impls = [
            InMemoryGraphAccess(g),
            InMemoryGraphAccess(CSRGraph.from_graph(g)),
            SharedGraphAccess(g, origin="shm"),
            RemoteGraphAccess(tables[0], RemoteVertexCache(4),
                              partition_id=0, num_partitions=2),
            DataService(0, tables, RemoteVertexCache(4)),
        ]
        for impl in impls:
            assert isinstance(impl, GraphAccess), type(impl).__name__


class TestExactlyOneOwner:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_every_vertex_has_exactly_one_owner(self, strategy, workers):
        g = make_random_graph(30, 0.3, seed=17)
        part = make_partitioner(strategy, g, workers)
        counts = {v: 0 for v in g.vertices()}
        for pid, members in enumerate(part.parts()):
            for v in members:
                assert part.owner(v) == pid
                counts[v] += 1
        assert all(c == 1 for c in counts.values()), (
            f"{strategy}/{workers}: vertices owned != once: "
            f"{[v for v, c in counts.items() if c != 1]}"
        )

    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_partition_tables_cover_graph_disjointly(self, workers):
        g = make_random_graph(25, 0.3, seed=19)
        tables = LocalVertexTable.partition(g, workers)
        seen: set[int] = set()
        for t in tables:
            vs = set(t.vertices_sorted())
            assert not (vs & seen), "vertex in two partition tables"
            seen |= vs
        assert seen == set(g.vertices())


class TestOwnerStability:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_owner_of_is_stable_across_calls(self, workers):
        for v in range(200):
            assert owner_of(v, workers) == owner_of(v, workers)
            assert 0 <= owner_of(v, workers) < workers

    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_repartitioning_reassigns_nothing(self, workers):
        # The cluster master hands partition worker_id % num_workers to
        # a rejoining worker: the tables built for the first incarnation
        # must be byte-identical on a rebuild.
        g = make_random_graph(20, 0.4, seed=23)
        first = LocalVertexTable.partition(g, workers)
        second = LocalVertexTable.partition(g, workers)
        for a, b in zip(first, second):
            assert a.vertices_sorted() == b.vertices_sorted()
            assert a.entries() == b.entries()

    def test_hash_owner_matches_partitioner_parts(self):
        # The RemoteGraphAccess absence shortcut assumes the 'hash'
        # strategy and owner_of agree exactly.
        g = make_random_graph(20, 0.4, seed=29)
        for workers in (1, 2, 3, 5, 8):
            part = make_partitioner("hash", g, workers)
            for v in g.vertices():
                assert part.owner(v) == owner_of(v, workers)


@st.composite
def graph_and_partitioning(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n)
        if rng.random() < 0.5
    ]
    graph = Graph.from_edges(edges, vertices=range(n))
    workers = draw(st.integers(min_value=1, max_value=4))
    pid = draw(st.integers(min_value=0, max_value=workers - 1))
    capacity = draw(st.sampled_from([1, 2, 4, 1 << 16]))
    return graph, workers, pid, capacity


class TestAccessEquivalence:
    @given(graph_and_partitioning())
    @settings(max_examples=60, deadline=None)
    def test_remote_access_equals_in_memory_when_served_faithfully(self, case):
        graph, workers, pid, capacity = case
        reference = InMemoryGraphAccess(graph)
        tables = LocalVertexTable.partition(graph, workers)
        access = RemoteGraphAccess(
            tables[pid], RemoteVertexCache(capacity),
            partition_id=pid, num_partitions=workers,
        )
        members = sorted(graph.vertices())
        # Fault-free fetch, with the worker's park discipline: pin the
        # pull set, then admit (pinned) exactly what unresolved listed —
        # one faithful VertexRequest/VertexReply round trip. Pins keep
        # the entries resident even when capacity < the pull count.
        missing = access.unresolved(members)
        access.pin(members)
        access.admit(((v, reference.neighbors(v)) for v in missing), pin=True)
        assert access.unresolved(members) == []
        for v in members:
            assert tuple(access.neighbors(v)) == tuple(reference.neighbors(v))
            assert access.degree(v) == reference.degree(v)
            assert access.adjacency_mask(v, members) == (
                reference.adjacency_mask(v, members)
            )
        resolved = access.resolve(members)
        assert {v: tuple(adj) for v, adj in resolved.items()} == {
            v: tuple(reference.neighbors(v)) for v in members
        }
        # The memory-bound side of the bargain: once the task's pins
        # release, residency never exceeds partition + cache capacity.
        access.unpin(members)
        assert access.resident_entries() <= len(tables[pid]) + capacity

    @given(graph_and_partitioning())
    @settings(max_examples=30, deadline=None)
    def test_data_service_equals_in_memory(self, case):
        graph, workers, pid, capacity = case
        reference = InMemoryGraphAccess(graph)
        tables = LocalVertexTable.partition(graph, workers)
        svc = DataService(pid, tables, RemoteVertexCache(capacity))
        out = svc.resolve(sorted(graph.vertices()))
        assert {v: tuple(adj) for v, adj in out.items()} == {
            v: tuple(reference.neighbors(v)) for v in graph.vertices()
        }
