"""Unit tests for the shared coordination control plane.

:mod:`repro.gthinker.runtime` is the layer both distributed backends
(the process pool and the TCP cluster) drive their fault tolerance
through; these tests pin its contracts directly, below any executor.
"""

import pytest

from repro.core.options import ResultSink
from repro.gthinker.metrics import EngineMetrics
from repro.gthinker.runtime import (
    ChannelClosed,
    ResultFolder,
    RetryPolicy,
    TaskLeaseTable,
    WorkerRegistry,
    WorkerSlot,
    WorkLedger,
    backoff_delay,
    reclaim_lease,
)
from repro.gthinker.task import Task
from repro.gthinker.tracing import Tracer


def make_task(task_id: int) -> Task:
    return Task(task_id=task_id, root=task_id, iteration=3)


def make_folder(max_attempts: int = 3):
    metrics = EngineMetrics()
    tracer = Tracer()
    ledger = TaskLeaseTable(max_attempts)
    folder = ResultFolder(ResultSink(), ledger, metrics=metrics, tracer=tracer)
    return folder, ledger, metrics, tracer


class TestResultFolder:
    def test_fold_returns_new_count(self):
        folder, _, _, _ = make_folder()
        assert folder.fold([[1, 2, 3], [4, 5]]) == 2
        assert folder.fold([[6]]) == 1
        assert len(folder.sink) == 3

    def test_folding_same_batch_twice_is_idempotent(self):
        """The at-least-once regression: a presumed-dead worker's flush
        arrives again after its lease was re-mined — the sink must not
        grow and the second fold must report zero new results."""
        folder, _, _, _ = make_folder()
        batch = [[1, 2, 3], (3, 2, 1), {5, 6}]
        first = folder.fold(batch)
        assert first == 2  # [1,2,3] and (3,2,1) are the same candidate
        assert folder.fold(batch) == 0
        assert folder.sink.results() == {frozenset({1, 2, 3}), frozenset({5, 6})}

    def test_fold_normalizes_to_frozenset(self):
        folder, _, _, _ = make_folder()
        folder.fold([[7, 8]])
        (only,) = folder.sink.results()
        assert isinstance(only, frozenset)

    def test_complete_counts_stale_drops(self):
        folder, ledger, metrics, _ = make_folder()
        ledger.grant(0, 1, [make_task(0)], now=0.0, timeout=5.0)
        assert folder.complete(0) is not None
        assert metrics.stale_results_dropped == 0
        # Unknown lease → stale.
        assert folder.complete(0) is None
        assert metrics.stale_results_dropped == 1
        # Owner mismatch → stale.
        ledger.grant(1, 1, [make_task(1)], now=0.0, timeout=5.0)
        assert folder.complete(1, worker_id=2) is None
        assert metrics.stale_results_dropped == 2
        assert folder.complete(1, worker_id=1) is not None

    def test_forward_events_attribution(self):
        """Worker-origin events get machine=worker id on every backend
        (the unified worker_attribution rule): 3-tuple pool events carry
        no thread (-1), 4-tuple cluster events carry their worker-local
        thread. machine=-1 is reserved for control-plane events."""
        folder, _, _, tracer = make_folder()
        folder.forward_events(4, [("execute", 7, "d")])
        folder.forward_events(4, [("finish", 7, 2, "d")])
        by_kind = {e.kind: e for e in tracer.events()}
        assert (by_kind["execute"].machine, by_kind["execute"].thread) == (4, -1)
        assert (by_kind["finish"].machine, by_kind["finish"].thread) == (4, 2)

    def test_forward_events_allow_list(self):
        folder, _, _, tracer = make_folder()
        folder.forward_events(
            0,
            [("execute", 1, ""), ("spawn", 2, "")],
            allowed={"spawn"},
        )
        assert [e.kind for e in tracer.events()] == ["spawn"]


class TestRetryPolicy:
    def test_backoff_doubles_per_attempt(self):
        assert backoff_delay(0.05, 1) == pytest.approx(0.05)
        assert backoff_delay(0.05, 2) == pytest.approx(0.10)
        assert backoff_delay(0.05, 3) == pytest.approx(0.20)
        with pytest.raises(ValueError):
            backoff_delay(0.05, 0)

    def test_pop_due_respects_backoff(self):
        policy: RetryPolicy[str] = RetryPolicy(1.0)
        policy.schedule(0, "first", 1, now=0.0)  # due at 1.0
        policy.schedule(1, "second", 2, now=0.0)  # due at 2.0
        assert policy.pop_due(0.5) == []
        assert policy.pop_due(1.0) == [("first", 1)]
        assert policy.pop_due(10.0) == [("second", 2)]
        assert not policy
        assert policy.history == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_next_due(self):
        policy: RetryPolicy[str] = RetryPolicy(0.5)
        assert policy.next_due() is None
        policy.schedule(0, "x", 1, now=3.0)
        assert policy.next_due() == pytest.approx(3.5)


class TestReclaimLease:
    def test_splits_retry_and_quarantine_with_observability(self):
        metrics = EngineMetrics()
        tracer = Tracer()
        ledger = TaskLeaseTable(max_attempts=2)
        policy: RetryPolicy[Task] = RetryPolicy(0.05)
        poisoned: list[int] = []

        fresh, stale = make_task(0), make_task(1)
        # Drive `stale` to its attempt ceiling first.
        lease = ledger.grant(0, 0, [stale], now=0.0, timeout=5.0)
        ledger.reclaim(lease)  # attempt 1 failed; still retryable
        lease = ledger.grant(1, 0, [stale, fresh], now=0.0, timeout=5.0)
        retry, quarantine = reclaim_lease(
            ledger, lease, policy, now=0.0, metrics=metrics, tracer=tracer,
            on_quarantine=lambda task, attempts: poisoned.append(task.task_id),
        )
        assert [t.task_id for t, _ in retry] == [0]
        assert [t.task_id for t, _ in quarantine] == [1]
        assert poisoned == [1]
        assert metrics.tasks_retried == 1
        assert metrics.tasks_quarantined == 1
        assert policy.history == [(0, 1, 0.05)]
        (quarantined_event,) = tracer.events(kind="task_quarantined")
        assert quarantined_event.task_id == 1
        assert quarantined_event.detail == "attempts=2 size=1"
        (retried_event,) = tracer.events(kind="task_retried")
        assert retried_event.task_id == 0
        assert (retried_event.machine, retried_event.thread) == (-1, 0)


class TestWorkLedgerWindow:
    def test_window_enforced_and_escapable(self):
        ledger: WorkLedger[Task] = WorkLedger(
            3, key=lambda t: t.task_id, lease_window=1
        )
        ledger.grant(0, 0, [make_task(0)], now=0.0, timeout=5.0)
        with pytest.raises(ValueError):
            ledger.grant(1, 0, [make_task(1)], now=0.0, timeout=5.0)
        # The steal-forwarding escape hatch over-commits deliberately.
        ledger.grant(
            1, 0, [make_task(1)], now=0.0, timeout=5.0, enforce_window=False
        )
        assert ledger.open_count(0) == 2
        ledger.check_invariants()


class TestWorkerRegistry:
    def make(self):
        metrics = EngineMetrics()
        tracer = Tracer()
        return WorkerRegistry(metrics=metrics, tracer=tracer), metrics, tracer

    def test_fail_accounts_once(self):
        registry, metrics, tracer = self.make()
        slot = registry.add(WorkerSlot(worker_id=0))
        assert registry.fail(slot, "killed") is True
        assert registry.fail(slot, "killed again") is False
        assert metrics.workers_died == 1
        (event,) = tracer.events(kind="worker_died")
        assert (event.machine, event.thread) == (-1, 0)
        assert event.detail == "killed"

    def test_revive_bumps_generation(self):
        registry, _, _ = self.make()
        slot = registry.add(WorkerSlot(worker_id=0))
        registry.fail(slot, "gone")
        registry.revive(slot)
        assert slot.alive and slot.generation == 1
        assert registry.alive() == [slot]

    def test_stale_detection(self):
        registry, _, _ = self.make()
        slot = registry.add(WorkerSlot(worker_id=0, last_seen=0.0))
        registry.heartbeat(slot, 5.0)
        assert registry.stale(6.0, timeout=10.0) == []
        (entry,) = registry.stale(20.0, timeout=10.0)
        assert entry[0] is slot and "no heartbeat" in entry[1]

    def test_create_assigns_sequential_ids(self):
        registry, _, _ = self.make()
        a, b = registry.create(), registry.create()
        assert (a.worker_id, b.worker_id) == (0, 1)
        assert len(registry) == 2
        assert registry.get(1) is b


class TestPipeChannel:
    def test_closed_pipe_raises_channel_closed(self):
        import multiprocessing as mp

        from repro.gthinker.runtime import PipeChannel

        ctx = mp.get_context()
        task_q = ctx.Queue()
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        channel = PipeChannel(task_q, recv_conn)
        send_conn.send("payload")
        assert channel.recv() == "payload"
        send_conn.close()
        with pytest.raises(ChannelClosed):
            channel.recv()
        assert channel.closed
        channel.discard_task_queue()
        channel.close()
