"""Wire-protocol tests: framing round-trips and truncation tolerance.

The framing discipline mirrors `SpillFileList`: a peer that died
mid-write must read as a *disconnect* (None + warning), never as an
unpickling attempt on a partial stream; a complete-but-invalid frame
must raise `ProtocolError` loudly.
"""

import pickle
import socket
import struct

import pytest

from repro.gthinker.cluster.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    VERSION,
    _HEADER,
    Goodbye,
    Heartbeat,
    Hello,
    MessageStream,
    ProgressReport,
    ProtocolError,
    ResultBatch,
    Shutdown,
    SpawnRange,
    StatusReply,
    StatusRequest,
    StealGrant,
    StealRequest,
    TaskBatch,
    VertexReply,
    VertexRequest,
    Welcome,
    decode_payload,
    encode_frame,
)
from repro.gthinker.config import EngineConfig
from repro.gthinker.metrics import EngineMetrics


def stream_pair():
    a, b = socket.socketpair()
    return MessageStream(a), MessageStream(b)


SAMPLE_MESSAGES = [
    Hello(pid=123, host="node-a", needs_graph=True),
    Welcome(
        worker_id=2,
        config=EngineConfig(backend="cluster"),
        app_blob=pickle.dumps({"app": True}),
        table_blob=pickle.dumps({0: (2, 4), 2: (0,)}),
        partition_id=2,
        num_partitions=4,
        partition_strategy="hash",
        trace=True,
    ),
    SpawnRange(work_id=7, vertices=(1, 2, 3)),
    VertexRequest(worker_id=1, request_id=3, vertices=(5, 9, 13)),
    VertexReply(request_id=3, entries=((5, (1, 9)), (9, (5,)), (13, ()))),
    ResultBatch(
        worker_id=1,
        completed=(7,),
        candidates=(frozenset({1, 2, 3}),),
        remainders=(b"blob",),
        events=(("spawn", 4, 0, "root=1"),),
        active=2,
    ),
    StealRequest(request_id=9, count=4),
    StealGrant(request_id=9, worker_id=0, tasks=(b"t1", b"t2")),
    Heartbeat(worker_id=0, pending_big=11, active=13),
    TaskBatch(work_id=8, tasks=(b"t3",), origin="remainder"),
    ProgressReport(
        worker_id=1, tasks_executed=5, tasks_decomposed=1, candidates_emitted=4
    ),
    StatusRequest(),
    StatusReply(
        wall_seconds=1.5, tasks_pending=4, tasks_leased=2, tasks_done=9,
        candidates=3, workers_alive=2, workers_died=1,
    ),
    Shutdown(reason="job complete"),
    Goodbye(worker_id=0, metrics=EngineMetrics(), stats_blob=b"stats"),
]

# The sample set exercises the whole vocabulary, so a new message type
# must be added here too.
assert {type(m) for m in SAMPLE_MESSAGES} == set(MESSAGE_TYPES)


class TestFraming:
    @pytest.mark.parametrize(
        "message", SAMPLE_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_round_trip(self, message):
        left, right = stream_pair()
        try:
            left.send(message)
            assert right.recv() == message
        finally:
            left.close()
            right.close()

    def test_many_messages_one_stream(self):
        left, right = stream_pair()
        try:
            for message in SAMPLE_MESSAGES:
                left.send(message)
            for message in SAMPLE_MESSAGES:
                assert right.recv() == message
        finally:
            left.close()
            right.close()

    def test_non_message_refused_at_send(self):
        with pytest.raises(ProtocolError, match="not a protocol message"):
            encode_frame({"not": "a message"})


class TestTruncationTolerance:
    """A dying peer reads as a disconnect, exactly like a torn spill file."""

    def test_clean_eof_is_none(self):
        left, right = stream_pair()
        left.close()
        assert right.recv() is None
        right.close()

    def test_truncated_header_warns_and_disconnects(self):
        left, right = stream_pair()
        left._sock.sendall(MAGIC[:2])  # half a magic, then death
        left.close()
        with pytest.warns(RuntimeWarning, match="truncated header"):
            assert right.recv() is None
        right.close()

    def test_truncated_payload_warns_and_disconnects(self):
        left, right = stream_pair()
        frame = encode_frame(Heartbeat(worker_id=0, pending_big=5, active=1))
        left._sock.sendall(frame[:-3])  # all but the last 3 payload bytes
        left.close()
        with pytest.warns(RuntimeWarning, match="truncated payload"):
            assert right.recv() is None
        right.close()


class TestInvalidFrames:
    """Complete frames that lie must raise, not limp along."""

    def send_raw(self, raw: bytes):
        left, right = stream_pair()
        left._sock.sendall(raw)
        left.close()
        return right

    def test_bad_magic(self):
        payload = pickle.dumps(Heartbeat(worker_id=0, pending_big=0, active=0))
        right = self.send_raw(_HEADER.pack(b"NOPE", VERSION, len(payload)) + payload)
        with pytest.raises(ProtocolError, match="bad frame magic"):
            right.recv()
        right.close()

    def test_version_mismatch(self):
        payload = pickle.dumps(Heartbeat(worker_id=0, pending_big=0, active=0))
        right = self.send_raw(
            _HEADER.pack(MAGIC, VERSION + 1, len(payload)) + payload
        )
        with pytest.raises(ProtocolError, match="protocol version"):
            right.recv()
        right.close()

    def test_oversized_length(self):
        right = self.send_raw(_HEADER.pack(MAGIC, VERSION, MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="refusing"):
            right.recv()
        right.close()

    def test_well_framed_garbage_payload(self):
        payload = pickle.dumps({"valid": "pickle, wrong type"})
        right = self.send_raw(_HEADER.pack(MAGIC, VERSION, len(payload)) + payload)
        with pytest.raises(ProtocolError, match="not a protocol message"):
            right.recv()
        right.close()

    def test_undecodable_payload(self):
        right = self.send_raw(_HEADER.pack(MAGIC, VERSION, 4) + b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError, match="undecodable"):
            right.recv()
        right.close()

    def test_decode_payload_direct(self):
        message = Hello(pid=1, host="x")
        assert decode_payload(pickle.dumps(message)) == message
        with pytest.raises(ProtocolError):
            decode_payload(pickle.dumps([1, 2, 3]))


def test_header_layout_is_stable():
    """The on-wire header is part of the compatibility contract."""
    assert _HEADER.size == 4 + 2 + 8
    frame = encode_frame(Heartbeat(worker_id=1, pending_big=2, active=3))
    magic, version, length = struct.unpack_from("<4sHQ", frame)
    assert magic == MAGIC
    assert version == VERSION
    assert length == len(frame) - _HEADER.size
