"""Hypothesis stateful (model-based) tests for the engine's data structures.

The spillable queue and the remote vertex cache sit under every task the
engine moves; these machines compare them against trivially-correct
in-memory models under arbitrary operation interleavings.
"""

import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.gthinker.spill import SpillableQueue, SpillFileList
from repro.gthinker.task import Task
from repro.gthinker.vertex_store import RemoteVertexCache


class SpillableQueueMachine(RuleBasedStateMachine):
    """Model: the queue + its spill files behave like one FIFO list.

    Subtlety encoded by the model: a push that overflows capacity spills
    the batch at the *tail* (newest work) to disk, and a refill loads the
    most recent file back to the *front*. We model the exact task-id
    sequence the structure must eventually yield.
    """

    def __init__(self):
        super().__init__()
        self.dir = tempfile.mkdtemp(prefix="hypq-")
        self.spill = SpillFileList(self.dir, "hyp")
        self.capacity = 6
        self.batch = 2
        self.queue = SpillableQueue(self.capacity, self.batch, self.spill)
        self.model_mem: list[int] = []  # in-memory ids, front first
        self.model_disk: list[list[int]] = []  # spilled batches, oldest first
        self.next_id = 0

    @rule()
    def push(self):
        if len(self.model_mem) >= self.capacity:
            batch = self.model_mem[-self.batch :]
            del self.model_mem[-self.batch :]
            self.model_disk.append(batch)
        task = Task(task_id=self.next_id, root=self.next_id, iteration=3)
        self.model_mem.append(self.next_id)
        self.next_id += 1
        self.queue.push(task)

    @rule()
    def pop(self):
        got = self.queue.pop()
        if self.model_mem:
            assert got is not None and got.task_id == self.model_mem.pop(0)
        else:
            assert got is None

    @precondition(lambda self: True)
    @rule()
    def refill(self):
        count = self.queue.refill_from_spill()
        if self.model_disk:
            batch = self.model_disk.pop()
            self.model_mem[:0] = batch
            assert count == len(batch)
        else:
            assert count == 0

    @rule(n=st.integers(min_value=1, max_value=4))
    def pop_batch(self, n):
        got = self.queue.pop_batch(n)
        take = min(n, len(self.model_mem))
        expected = self.model_mem[len(self.model_mem) - take :] if take else []
        del self.model_mem[len(self.model_mem) - take :]
        assert [t.task_id for t in got] == expected

    @invariant()
    def lengths_agree(self):
        assert len(self.queue) == len(self.model_mem)
        assert len(self.spill) == len(self.model_disk)

    def teardown(self):
        self.spill.cleanup()


class CacheMachine(RuleBasedStateMachine):
    """Model: bounded LRU — hits refresh recency; eviction is oldest-first."""

    def __init__(self):
        super().__init__()
        self.capacity = 4
        self.cache = RemoteVertexCache(self.capacity)
        self.model: dict[int, list[int]] = {}  # insertion-ordered = LRU order

    @rule(key=st.integers(min_value=0, max_value=9))
    def put(self, key):
        value = [key, key + 1]
        self.cache.put(key, value)
        self.model.pop(key, None)
        self.model[key] = value
        while len(self.model) > self.capacity:
            oldest = next(iter(self.model))
            del self.model[oldest]

    @rule(key=st.integers(min_value=0, max_value=9))
    def get(self, key):
        got = self.cache.get(key)
        want = self.model.get(key)
        assert got == want
        if want is not None:
            # Refresh recency in the model.
            del self.model[key]
            self.model[key] = want

    @invariant()
    def size_bounded(self):
        assert len(self.cache) <= self.capacity
        assert len(self.cache) == len(self.model)


TestSpillableQueueStateful = SpillableQueueMachine.TestCase
TestSpillableQueueStateful.settings = settings(max_examples=40, deadline=None)
TestCacheStateful = CacheMachine.TestCase
TestCacheStateful.settings = settings(max_examples=40, deadline=None)
